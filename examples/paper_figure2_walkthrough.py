"""The paper's Figure 2 and Section 2 walkthrough, executed literally.

Tables A and B hold the four people records of the paper's Figure 2; the
matching function B1 is the paper's

    B1 = (p1_name AND p2_zip') OR (p_phone AND p2_name)

and we replay every observation Section 2 makes about it:

* a1b1 matches, the other pairs don't;
* early exit cuts the rudimentary baseline's 4 similarity computations
  for a2b1 down to 2;
* reordering the predicates preserves the output while changing the cost;
* evolving B1 into the stricter B2 (adding street evidence) only needs to
  re-check the pairs B1 matched — one pair, not four.

Run:  python examples/paper_figure2_walkthrough.py
"""

from repro import DynamicMemoMatcher, EarlyExitMatcher, RudimentaryMatcher
from repro.core import AddPredicate, DebugSession, Predicate, parse_function
from repro.core.rules import Feature
from repro.data import CandidateSet, Table
from repro.similarity import make_similarity


def build_tables():
    table_a = Table("A", ["name", "phone", "zip", "street"])
    table_a.add_row("a1", name="John", phone="1234", zip="53703", street="Main St")
    table_a.add_row("a2", name="Bob", phone="5678", zip="53706", street="Oak Ave")
    table_b = Table("B", ["name", "phone", "zip", "street"])
    table_b.add_row("b1", name="John", phone="1234", zip="53703", street="Main St")
    table_b.add_row("b2", name="Jon", phone="9999", zip="53703", street="Main Street")
    return table_a, table_b


B1 = """
name_rule:  jaro_winkler(name, name) >= 0.9 AND exact_match(zip, zip) >= 1
phone_rule: exact_match(phone, phone) >= 1 AND jaro_winkler(name, name) >= 0.7
"""


def main() -> None:
    table_a, table_b = build_tables()
    candidates = CandidateSet.from_id_pairs(
        table_a,
        table_b,
        [(a.record_id, b.record_id) for a in table_a for b in table_b],
    )
    function = parse_function(B1)

    print("The four candidate pairs under B1:")
    result = DynamicMemoMatcher().run(function, candidates)
    for pair in candidates:
        verdict = "MATCH" if result.labels[pair.index] else "no match"
        print(
            f"  {pair.pair_id}: {verdict}   "
            f"({pair.record_a.get('name')!r} vs {pair.record_b.get('name')!r})"
        )

    print("\nSection 2's cost observation (similarity computations):")
    rudimentary = RudimentaryMatcher().run(function, candidates)
    early_exit = EarlyExitMatcher().run(function, candidates)
    memoized = DynamicMemoMatcher().run(function, candidates)
    print(f"  rudimentary baseline : {rudimentary.stats.feature_computations}")
    print(f"  early exit           : {early_exit.stats.feature_computations}")
    print(f"  early exit + memoing : {memoized.stats.feature_computations}")

    print(
        "\nEvolving B1 -> B2: add street evidence to name_rule "
        "(the paper: 'we only need to evaluate p_street for the pairs "
        "that were matched')"
    )
    session = DebugSession(candidates, function, ordering="original")
    initial = session.run()
    street_feature = Feature(make_similarity("jaccard_ws"), "street", "street")
    outcome = session.apply(
        AddPredicate("name_rule", Predicate(street_feature, ">=", 0.5))
    )
    print(
        f"  pairs re-examined: {outcome.affected_pairs} of {len(candidates)} "
        f"(the paper predicts exactly the B1 matches)"
    )
    for pair in candidates:
        verdict = "MATCH" if session.labels()[pair.index] else "no match"
        print(f"  {pair.pair_id}: {verdict}")


if __name__ == "__main__":
    main()
