"""A full analyst debugging session on the products dataset.

Recreates the paper's Figure 1 loop end to end: run the learned rules,
inspect the errors, and iterate — tightening rules that produce false
positives, deleting hopeless rules, and adding a recall rule for the
matches the learned set misses.  After every edit the (incremental)
re-match takes milliseconds and quality is re-scored against gold.

Run:  python examples/products_debugging.py
"""

from repro import (
    AddRule,
    DebugSession,
    RemoveRule,
    TightenPredicate,
    build_workload,
)
from repro.core import parse_rule
from repro.evaluation import false_negatives, false_positives


def tighten_step(session, pair_index):
    """Tighten the cheapest predicate of the rule that matched a given
    false-positive pair (the §6.2.1 move)."""
    pair = session.candidates[pair_index]
    explanation = session.explain(*pair.pair_id)
    guilty_rules = explanation.matching_rules()
    if not guilty_rules:
        return None
    rule = session.function.rule(guilty_rules[0])
    predicate = rule.predicates[0]
    stricter = (
        min(1.0, predicate.threshold + 0.1)
        if predicate.op in (">=", ">")
        else max(0.0, predicate.threshold - 0.1)
    )
    try:
        change = TightenPredicate(rule.name, predicate.slot, stricter)
        change.validate(session.function)
    except Exception:
        return None
    return session.apply(change)


def main() -> None:
    workload = build_workload("products", seed=7, scale=0.6, max_rules=100)
    print(workload.summary())

    session = DebugSession(
        workload.candidates,
        workload.function,
        gold=workload.gold,
        ordering="algorithm6",
    )
    initial = session.run()
    print(f"initial run : {initial.stats.summary()}")
    print(f"quality     : {session.metrics().summary()}\n")

    # ------------------------------------------------------------------
    # Round 1: attack precision — tighten rules behind false positives.
    # ------------------------------------------------------------------
    for round_number in range(1, 6):
        fps = false_positives(session.labels(), session.candidates, workload.gold)
        if not fps:
            break
        outcome = tighten_step(session, fps[0])
        if outcome is None:
            # Couldn't tighten (threshold already at the ceiling): the
            # §6.2.3 move is to drop the rule entirely.
            pair = session.candidates[fps[0]]
            guilty = session.explain(*pair.pair_id).matching_rules()
            if not guilty or len(session.function) == 1:
                break
            outcome = session.apply(RemoveRule(guilty[0]))
        print(
            f"round {round_number}: {outcome.change.describe():55s} "
            f"{outcome.elapsed_seconds * 1000:7.2f}ms  "
            f"-> {session.metrics().summary()}"
        )

    # ------------------------------------------------------------------
    # Round 2: attack recall — look at a missed match, add a rule for it.
    # ------------------------------------------------------------------
    fns = false_negatives(session.labels(), session.candidates, workload.gold)
    if fns:
        pair = session.candidates[fns[0]]
        print(f"\na missed match: {pair.pair_id}")
        print(f"  A: {pair.record_a.as_dict()}")
        print(f"  B: {pair.record_b.as_dict()}")
        recall_rule = parse_rule(
            "recover_modelno: norm_exact_match(modelno, modelno) >= 1 "
            "AND cosine_ws(title, title) >= 0.2"
        )
        outcome = session.apply(AddRule(recall_rule))
        print(
            f"added {recall_rule.name}: {outcome.elapsed_seconds * 1000:.2f}ms "
            f"-> {session.metrics().summary()}"
        )

    # ------------------------------------------------------------------
    # Wrap-up: the session's cost profile.
    # ------------------------------------------------------------------
    total_ms = session.total_incremental_seconds() * 1000
    print(f"\n{len(session.history)} incremental edits, {total_ms:.1f}ms total")
    print(
        f"(one full re-run costs ~{initial.stats.elapsed_seconds * 1000:.0f}ms; "
        f"the paper's interactivity bar is 1000ms)"
    )
    memory = session.memory_report()
    print(
        f"materialized state: memo {memory['memo'] / 1e6:.1f}MB, "
        f"bitmaps {(memory['rule_bitmaps'] + memory['predicate_bitmaps']) / 1e6:.1f}MB"
    )


if __name__ == "__main__":
    main()
