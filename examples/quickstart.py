"""Quickstart: build a matching task, run it, edit a rule interactively.

This is the 60-second tour of the library:

1. ``build_workload`` generates the synthetic Walmart/Amazon products
   dataset, blocks it to a candidate set, and learns a rule set from a
   random forest — the paper's experimental setup in one call.
2. ``DebugSession`` runs dynamic-memoing + early-exit matching once
   (ordering the rules with Algorithm 6 first), then applies rule edits
   *incrementally* in milliseconds.

Run:  python examples/quickstart.py
"""

from repro import DebugSession, TightenPredicate, build_workload


def main() -> None:
    print("Building the products workload (generate -> block -> learn)...")
    workload = build_workload("products", seed=7, scale=0.5, max_rules=60)
    print(f"  {workload.summary()}")

    session = DebugSession(
        workload.candidates,
        workload.function,
        gold=workload.gold,
        ordering="algorithm6",
    )

    print("\nInitial full matching run (the slow, memo-cold step):")
    result = session.run()
    print(f"  {result.stats.summary()}")
    print(f"  quality: {session.metrics().summary()}")

    # Tighten the first predicate of the first rule — a typical edit when
    # the analyst spots false positives.
    rule = session.function.rules[0]
    predicate = rule.predicates[0]
    stricter = (
        min(1.0, predicate.threshold + 0.1)
        if predicate.op in (">=", ">")
        else max(0.0, predicate.threshold - 0.1)
    )
    print(f"\nTightening {predicate.pid} -> threshold {stricter:g} ...")
    outcome = session.apply(
        TightenPredicate(rule.name, predicate.slot, stricter)
    )
    print(f"  incremental update: {outcome.summary()}")
    print(f"  quality now: {session.metrics().summary()}")

    speedup = result.stats.elapsed_seconds / max(outcome.elapsed_seconds, 1e-9)
    print(f"\nIncremental edit was {speedup:,.0f}x faster than the full run.")

    # Explain one pair end to end — the analyst's microscope.
    some_match = session.matched_ids()[0]
    print("\nWhy does this pair match?")
    print(session.explain(*some_match).render()[:800])


if __name__ == "__main__":
    main()
