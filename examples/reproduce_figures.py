"""Regenerate every figure of the paper's evaluation as CSV data files.

A library-level alternative to the pytest-benchmark suite: runs each
experiment at a configurable scale and writes one CSV per figure into
``./figures/`` (or the directory given as argv[1]).  Useful for plotting
the curves with your own tooling, or for re-running at paper scale
(raise ``scale=`` and the sweep budgets — and bring patience: this is
pure Python).

Run:  python examples/reproduce_figures.py [output_dir]
"""

import sys

from repro import build_workload
from repro.reporting import write_all


def main() -> None:
    output_dir = sys.argv[1] if len(sys.argv) > 1 else "figures"
    print("building the products workload...")
    workload = build_workload("products", seed=7, scale=0.5, max_rules=120)
    print(f"  {workload.summary()}\n")

    print(f"running all figure experiments into {output_dir}/ ...")
    written = write_all(workload, output_dir)
    for name, path in written.items():
        print(f"  {name:18s} -> {path}")

    # Show one series inline as a taste.
    from repro.reporting import run_pair_scaling

    series = run_pair_scaling(workload)
    print("\nFigure 5B (linearity in candidate pairs):")
    print(series.render())


if __name__ == "__main__":
    main()
