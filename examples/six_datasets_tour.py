"""Tour of all six datasets — the paper's Table 2 row by row.

For each synthetic twin: generate, block, learn rules, match with DM+EE,
score against gold, and print one Table 2-style line plus quality.  The
paper says "experiments with the remaining five data sets show similar
results"; this script lets you see that for yourself in about a minute.

Run:  python examples/six_datasets_tour.py
"""

import time

from repro import DynamicMemoMatcher, build_workload
from repro.blocking import blocking_recall
from repro.evaluation import confusion


def main() -> None:
    header = (
        f"{'dataset':12s} {'|A|':>5s} {'|B|':>6s} {'pairs':>7s} {'rules':>5s} "
        f"{'feat':>9s} {'block_R':>7s} {'P':>6s} {'R':>6s} {'F1':>6s} {'time':>7s}"
    )
    print(header)
    print("-" * len(header))
    for name in ("products", "restaurants", "books", "breakfast",
                 "movies", "videogames", "people"):
        started = time.perf_counter()
        workload = build_workload(name, seed=7, scale=0.4, max_rules=60)
        candidates = workload.candidates
        result = DynamicMemoMatcher().run(workload.function, candidates)
        quality = confusion(result.labels, candidates, workload.gold)
        elapsed = time.perf_counter() - started
        print(
            f"{name:12s} "
            f"{len(workload.dataset.table_a):5d} "
            f"{len(workload.dataset.table_b):6d} "
            f"{len(candidates):7d} "
            f"{len(workload.function):5d} "
            f"{workload.used_feature_count():4d}/{len(workload.space):<4d} "
            f"{blocking_recall(candidates, workload.gold):7.3f} "
            f"{quality.precision:6.3f} {quality.recall:6.3f} {quality.f1:6.3f} "
            f"{elapsed:6.1f}s"
        )
    print(
        "\nEvery dataset: near-total blocking recall, perfect-or-near rule "
        "recall,\nand the imperfect precision that makes the paper's "
        "debugging loop necessary."
    )


if __name__ == "__main__":
    main()
