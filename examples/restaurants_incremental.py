"""Hand-written rules and the paper's B1 -> B2 evolution, on restaurants.

The paper's introduction (Figure 2) shows a matching function B1 —
"names very similar, or phones equal and names similar" — evolving into a
stricter B2 by adding street/zip evidence to the name rule.  This example
replays that exact evolution on the synthetic Yelp/Foursquare restaurants
dataset using the rule DSL, with incremental re-matching at each step.

Run:  python examples/restaurants_incremental.py
"""

from repro import DebugSession, load_dataset
from repro.blocking import OverlapBlocker, UnionBlocker, AttributeEquivalenceBlocker, blocking_recall
from repro.core import AddPredicate, Predicate, TightenPredicate, parse_function
from repro.core.rules import Feature
from repro.similarity import make_similarity

#: The paper's B1, in our DSL (name-similarity rule OR phone+name rule).
B1 = """
name_rule:  jaro_winkler(name, name) >= 0.90
phone_rule: norm_exact_match(phone, phone) >= 1 AND jaro_winkler(name, name) >= 0.70
"""


def main() -> None:
    dataset = load_dataset("restaurants", seed=11, scale=0.5)
    print(dataset.summary())

    blocker = UnionBlocker(
        [
            OverlapBlocker("name", min_overlap=1, stop_fraction=0.15),
            AttributeEquivalenceBlocker("zipcode", keep_missing=False),
        ]
    )
    candidates = blocker.block(dataset.table_a, dataset.table_b)
    print(
        f"blocking: {len(candidates)} candidates, "
        f"recall {blocking_recall(candidates, dataset.gold):.3f}"
    )

    session = DebugSession(
        candidates,
        parse_function(B1),
        gold=dataset.gold,
        ordering="algorithm5",
    )
    result = session.run()
    print(f"\nB1 run    : {result.stats.summary()}")
    print(f"B1 quality: {session.metrics().summary()}")
    # name_rule alone is loose: same-name franchises at other addresses
    # (our generator plants exactly those distractors) match wrongly.

    # --- evolve B1 -> B2: make the name rule require address evidence ----
    zip_feature = Feature(make_similarity("exact_match"), "zipcode", "zipcode")
    street_feature = Feature(make_similarity("jaccard_ws"), "address", "address")
    for predicate in (
        Predicate(zip_feature, ">=", 1.0),
        Predicate(street_feature, ">=", 0.4),
    ):
        outcome = session.apply(AddPredicate("name_rule", predicate))
        print(
            f"\n+ {predicate.pid:45s} {outcome.elapsed_seconds * 1000:7.2f}ms"
        )
        print(f"  quality: {session.metrics().summary()}")

    # --- one more screw-turn on the phone rule ---------------------------
    outcome = session.apply(
        TightenPredicate(
            "phone_rule", "jaro_winkler(name,name)#lb", 0.80
        )
    )
    print(
        f"\ntighten phone_rule name-sim to 0.80        "
        f"{outcome.elapsed_seconds * 1000:7.2f}ms"
    )
    print(f"  quality: {session.metrics().summary()}")

    print(
        f"\nall {len(session.history)} edits together took "
        f"{session.total_incremental_seconds() * 1000:.1f}ms "
        f"(initial run: {result.stats.elapsed_seconds * 1000:.0f}ms)"
    )


if __name__ == "__main__":
    main()
