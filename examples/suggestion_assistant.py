"""Semi-automatic debugging: let the suggestion engine drive the loop.

The paper's analyst decides each edit by eyeballing errors.  This example
shows the natural next step (its §8 "full system" direction): generate
ranked edit proposals from the materialized state + labeled sample, apply
the best one incrementally, re-score, repeat — precision first
(tightenings), then recall (relaxations).

Run:  python examples/suggestion_assistant.py
"""

from repro import DebugSession, build_workload
from repro.evaluation import suggest_relaxations, suggest_tightenings
from repro.learning import remove_subsumed


def main() -> None:
    workload = build_workload("products", seed=7, scale=0.5, max_rules=80)

    # Tidy the learned rule set first: forest extraction leaves subsumed
    # rules that cost evaluation time but change nothing.
    simplified, removed = remove_subsumed(workload.function)
    print(
        f"{workload.summary()}\n"
        f"simplification removed {len(removed)} subsumed rules "
        f"({len(simplified)} remain)\n"
    )

    session = DebugSession(
        workload.candidates, simplified, gold=workload.gold,
        ordering="algorithm6",
    )
    initial = session.run()
    print(f"initial run: {initial.stats.summary()}")
    print(f"quality    : {session.metrics().summary()}\n")

    # ------------------------------------------------------------------
    # Phase 1: precision — apply the best tightening until none helps.
    # ------------------------------------------------------------------
    print("--- phase 1: tightenings ---")
    for step in range(1, 11):
        proposals = suggest_tightenings(session.state, workload.gold)
        proposals = [p for p in proposals if p.score > 0]
        if not proposals:
            print("no beneficial tightening left")
            break
        best = proposals[0]
        outcome = session.apply(best.change)
        print(
            f"{step:2d}. {best.describe():70s} "
            f"{outcome.elapsed_seconds * 1000:7.2f}ms  "
            f"{session.metrics().summary()}"
        )

    # ------------------------------------------------------------------
    # Phase 2: recall — recover what the rules now miss.
    # ------------------------------------------------------------------
    print("\n--- phase 2: relaxations ---")
    for step in range(1, 6):
        proposals = suggest_relaxations(session.state, workload.gold)
        proposals = [p for p in proposals if p.score > 0]
        if not proposals:
            print("no beneficial relaxation left")
            break
        best = proposals[0]
        outcome = session.apply(best.change)
        print(
            f"{step:2d}. {best.describe():70s} "
            f"{outcome.elapsed_seconds * 1000:7.2f}ms  "
            f"{session.metrics().summary()}"
        )

    final = session.metrics()
    print(
        f"\nfinal: {final.summary()}\n"
        f"{len(session.history)} edits, "
        f"{session.total_incremental_seconds() * 1000:.1f}ms of matching time "
        f"(vs {initial.stats.elapsed_seconds * 1000:.0f}ms for one full run)"
    )


if __name__ == "__main__":
    main()
