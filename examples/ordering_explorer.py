"""Explore the §5 ordering problem: cost model, greedy heuristics, optimum.

Three experiments on the products workload:

1. Order the full learned rule set with every strategy and measure real
   DM+EE runtimes plus the cost model's predictions (Figure 3C / 5A in
   miniature).
2. Brute-force the *optimal* order of a small rule subset and report how
   close Algorithms 5/6 get — the question the paper's NP-hardness proof
   says cannot be answered at scale.
3. Show the check-cache-first runtime optimization's effect.

Run:  python examples/ordering_explorer.py
"""

from repro import build_workload
from repro.core import (
    CostEstimator,
    DynamicMemoMatcher,
    brute_force_ordering,
    function_cost_with_memo,
    greedy_cost_ordering,
    greedy_reduction_ordering,
    independent_ordering,
    random_ordering,
)


def main() -> None:
    workload = build_workload("products", seed=7, scale=0.5, max_rules=120)
    candidates = workload.candidates.subset(range(min(2000, len(workload.candidates))))
    print(f"{workload.summary()}  (timing on {len(candidates)} pairs)\n")

    estimator = CostEstimator(sample_fraction=0.01, min_sample=60, seed=3)
    estimates = estimator.estimate(workload.function, candidates)
    print(
        f"estimated on a {estimates.sample_size}-pair sample; "
        f"lookup cost δ = {estimates.lookup_cost * 1e6:.3f}µs\n"
    )

    # ------------------------------------------------------------------
    # 1. All strategies on the full rule set.
    # ------------------------------------------------------------------
    strategies = {
        "random": random_ordering(workload.function, seed=4),
        "independent (Thm 1)": independent_ordering(workload.function, estimates),
        "algorithm 5": greedy_cost_ordering(workload.function, estimates),
        "algorithm 6": greedy_reduction_ordering(workload.function, estimates),
    }
    print(f"{'ordering':22s} {'model cost':>12s} {'actual time':>12s} {'computed':>9s}")
    reference_labels = None
    for name, ordered in strategies.items():
        model = function_cost_with_memo(ordered, estimates) * len(candidates)
        result = DynamicMemoMatcher().run(ordered, candidates)
        if reference_labels is None:
            reference_labels = result.labels
        assert (result.labels == reference_labels).all()  # semantics invariant
        print(
            f"{name:22s} {model:11.3f}s {result.stats.elapsed_seconds:11.3f}s "
            f"{result.stats.feature_computations:9d}"
        )

    # ------------------------------------------------------------------
    # 2. Greedy vs optimal on a brute-forceable subset.
    # ------------------------------------------------------------------
    subset = workload.function.subset(
        [rule.name for rule in workload.function.rules[:7]]
    )
    optimum = brute_force_ordering(subset, estimates)
    optimum_cost = function_cost_with_memo(optimum, estimates)
    print("\n7-rule subset, exhaustive search over all 5040 orders:")
    print(f"  optimal        : {optimum_cost * 1e6:9.3f}µs/pair")
    for name, optimizer in (
        ("algorithm 5", greedy_cost_ordering),
        ("algorithm 6", greedy_reduction_ordering),
        ("independent", independent_ordering),
    ):
        cost = function_cost_with_memo(optimizer(subset, estimates), estimates)
        gap = (cost / optimum_cost - 1) * 100
        print(f"  {name:15s}: {cost * 1e6:9.3f}µs/pair  (+{gap:.1f}% vs optimal)")

    # ------------------------------------------------------------------
    # 3. Check-cache-first.
    # ------------------------------------------------------------------
    print("\ncheck-cache-first (§5.4.3), random-ordered rules:")
    for flag in (False, True):
        result = DynamicMemoMatcher(check_cache_first=flag).run(
            strategies["random"], candidates
        )
        print(
            f"  {'on ' if flag else 'off'}: "
            f"{result.stats.elapsed_seconds:6.3f}s, "
            f"computed={result.stats.feature_computations}, "
            f"hits={result.stats.memo_hits}"
        )


if __name__ == "__main__":
    main()
