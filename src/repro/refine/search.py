"""Beam search over rule-edit sequences, scored by the incremental engine.

The refinement loop the paper leaves to the analyst, automated:

1. Checkpoint the live :class:`~repro.core.state.MatchState` (labels,
   attribution, bitmaps — *not* the memo: feature values depend only on
   the record pair, never on the matching function, so the memo stays
   warm across every candidate and scoring gets faster as the search
   runs).
2. Generate candidate edits from the current error profile
   (:mod:`repro.refine.edits` — thresholds from observed feature-value
   quantiles, predicate/rule additions and removals).
3. Score each candidate by **applying it through Algorithms 7-10**
   (:func:`repro.core.incremental.apply_change`) — never a from-scratch
   re-match — then measuring precision/recall against gold and expected
   per-pair cost via the §5 cost model, and rolling back via
   :meth:`~repro.core.state.MatchState.restore`.
4. Keep the best ``beam_width`` sequences, extend them next round, and
   report the Pareto frontier over (precision, recall, expected cost)
   with per-edit attribution of which errors each edit fixed/broke.

Everything is deterministic under a fixed :class:`RefineConfig` seed:
generation order is structural, beam ties break on edit descriptions, and
expected cost defaults to the calibrated (wall-clock-free) estimator.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.changes import Change
from ..core.cost_model import CostEstimator, Estimates, per_pair_cost
from ..core.incremental import apply_change
from ..core.rules import Feature, MatchingFunction, Rule
from ..core.state import MatchState, StateCheckpoint
from ..data.pairs import CandidateSet, PairId
from ..errors import ChangeError, EstimationError, RefinementError, StateError
from ..evaluation.metrics import Confusion
from ..observability import Observability, maybe_span
from .edits import CandidateEdit, change_key, generate_candidates
from .pareto import Objective, pareto_frontier


@dataclass(frozen=True)
class RefineConfig:
    """Knobs of the refinement search.  The defaults favour interactive
    latency; benchmarks and offline sweeps raise ``budget``/``max_depth``.
    """

    #: total candidate evaluations across all rounds (hard cap).
    budget: int = 200
    #: surviving sequences per round; 1 = greedy.
    beam_width: int = 4
    #: maximum edits per sequence (search rounds).
    max_depth: int = 2
    #: candidate pool cap per beam node per round.
    max_candidates_per_round: int = 48
    #: tighten proposals kept per (rule, slot).
    max_per_slot: int = 3
    #: relax quantiles — fraction of recoverable FNs each proposal admits.
    admit_fractions: Tuple[float, ...] = (0.25, 0.5, 1.0)
    #: prefix sample size for relaxation/addition risk replay.
    risk_sample: int = 500
    #: RNG seed for cost estimation sampling (and any future stochastic
    #: component); fixing it makes the whole search deterministic.
    seed: int = 0
    #: execution strategy priced by the cost objective.
    cost_strategy: str = "dynamic_memo"
    #: "calibrated" (deterministic tier table) or "measured" (wall clock).
    estimate_mode: str = "calibrated"
    #: example pair ids retained per edit in the attribution record.
    attribution_limit: int = 10
    #: warm-start hint (e.g. from the observability drift monitor):
    #: restrict candidate generation to edits targeting these rules.
    #: Empty = cold start, the full pool.
    focus_rules: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.budget < 1:
            raise RefinementError("budget must be >= 1")
        if self.beam_width < 1:
            raise RefinementError("beam_width must be >= 1")
        if self.max_depth < 1:
            raise RefinementError("max_depth must be >= 1")
        if not isinstance(self.focus_rules, tuple):
            object.__setattr__(
                self, "focus_rules",
                tuple(str(name) for name in self.focus_rules),
            )


@dataclass(frozen=True)
class EditOutcome:
    """What one edit did, measured (not predicted) against gold."""

    change: Change
    #: pairs whose label flipped to the correct side.
    fixed: int
    #: pairs whose label flipped to the wrong side.
    broken: int
    fixed_examples: Tuple[PairId, ...]
    broken_examples: Tuple[PairId, ...]
    newly_matched: int
    newly_unmatched: int

    def describe(self) -> str:
        return (
            f"{self.change.describe()}  (+{self.fixed} fixed, "
            f"-{self.broken} broken)"
        )


@dataclass(frozen=True)
class ScoredCandidate:
    """One edit sequence with its measured quality and cost."""

    edits: Tuple[Change, ...]
    outcomes: Tuple[EditOutcome, ...]
    confusion: Confusion
    #: expected seconds per pair under the configured strategy (§5 model).
    expected_cost: float

    @property
    def precision(self) -> float:
        return self.confusion.precision

    @property
    def recall(self) -> float:
        return self.confusion.recall

    @property
    def f1(self) -> float:
        return self.confusion.f1

    @property
    def objective(self) -> Objective:
        return (self.precision, self.recall, self.expected_cost)

    def describe(self) -> str:
        if not self.edits:
            return "(no edits)"
        return "; ".join(change.describe() for change in self.edits)

    def summary(self) -> str:
        return (
            f"P={self.precision:.3f} R={self.recall:.3f} F1={self.f1:.3f} "
            f"cost={self.expected_cost * 1e6:.2f}us/pair  [{self.describe()}]"
        )


@dataclass
class RefinementReport:
    """Everything the search learned, plus its work counters.

    ``full_rematches`` exists to make the tentpole invariant checkable:
    the search recovers from *any* mid-candidate failure by restoring a
    checkpoint, so the counter stays 0 unless the emergency
    from-scratch rebuild path ran — benchmarks assert on it.
    """

    baseline: ScoredCandidate
    frontier: List[ScoredCandidate]
    candidates_generated: int
    candidates_scored: int
    incremental_evals: int
    full_rematches: int
    rounds: int
    elapsed_seconds: float

    @property
    def best(self) -> ScoredCandidate:
        """Highest-F1 frontier point (cost, then description break ties)."""
        pool = self.frontier or [self.baseline]
        return min(
            pool, key=lambda c: (-c.f1, c.expected_cost, c.describe())
        )

    def improves_f1(self) -> bool:
        return self.best.f1 > self.baseline.f1

    def summary(self) -> str:
        lines = [
            f"baseline  {self.baseline.summary()}",
            f"scored {self.candidates_scored}/{self.candidates_generated} "
            f"candidates in {self.rounds} round(s), "
            f"{self.incremental_evals} incremental evals, "
            f"{self.full_rematches} full re-matches, "
            f"{self.elapsed_seconds:.2f}s",
            f"frontier ({len(self.frontier)} points):",
        ]
        for candidate in self.frontier:
            marker = "*" if candidate is self.best else " "
            lines.append(f"  {marker} {candidate.summary()}")
        return "\n".join(lines)


@dataclass
class _BeamNode:
    candidate: ScoredCandidate
    checkpoint: StateCheckpoint


class RefinementSearch:
    """One search run over a live state.  The state is borrowed: on return
    (or failure) it is restored to exactly its pre-search condition —
    except the memo, which keeps every feature value the search computed
    (deliberately: values are function-independent, and a warmer memo
    makes both the next search and the analyst's next edit faster)."""

    def __init__(
        self,
        state: MatchState,
        gold: Set[PairId],
        config: Optional[RefineConfig] = None,
        estimates: Optional[Estimates] = None,
        seed_rules: Sequence[Rule] = (),
        feature_universe: Sequence[Feature] = (),
        observability: Optional[Observability] = None,
        kernels=None,
        engine: str = "scalar",
    ):
        if not gold:
            raise RefinementError(
                "refinement needs gold labels (a non-empty set of matching "
                "pair ids) to score candidates against"
            )
        if engine not in ("scalar", "columnar"):
            raise RefinementError(
                f"engine must be 'scalar' or 'columnar', got {engine!r}"
            )
        self.state = state
        self.candidates: CandidateSet = state.candidates
        self.gold = gold
        self.config = config or RefineConfig()
        self.seed_rules = tuple(seed_rules)
        self.feature_universe = tuple(feature_universe)
        self.observability = observability
        self.kernels = kernels
        #: "scalar" applies candidate edits through the per-pair
        #: Algorithms 7-10; "columnar" through their set-at-a-time mirrors
        #: (repro.engine.incremental) — each scored edit becomes a handful
        #: of mask passes over the checkpointed state.  Outcomes (labels,
        #: counters, restored state) are bit-identical either way.
        self.engine = engine
        self._gold_mask = np.fromiter(
            (pair.pair_id in gold for pair in self.candidates),
            dtype=bool,
            count=len(self.candidates),
        )
        self.estimates = estimates if estimates is not None else self._estimate()
        # Work counters (mirrored into observability metrics when present).
        self.candidates_generated = 0
        self.candidates_scored = 0
        self.incremental_evals = 0
        self.full_rematches = 0

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def _estimate(self) -> Optional[Estimates]:
        """Deterministic cost estimates covering the whole edit universe.

        Built once, over the union of the current function's features, any
        extractor seed-rule features, and the extra feature universe —
        so every edited function the search can produce is priceable
        without re-estimating.  ``estimate_mode='calibrated'`` keeps the
        costs wall-clock-free, which is what makes the Pareto frontier
        reproducible under a fixed seed.
        """
        extra: Dict[str, Feature] = {}
        for rule in self.seed_rules:
            for feature in rule.features():
                extra.setdefault(feature.name, feature)
        for feature in self.feature_universe:
            extra.setdefault(feature.name, feature)
        estimator = CostEstimator(
            seed=self.config.seed, mode=self.config.estimate_mode
        )
        try:
            return estimator.estimate(
                self.state.function,
                self.candidates,
                extra_features=tuple(extra.values()),
                kernels=self.kernels,
            )
        except EstimationError:
            return None  # cost objective degrades to 0.0 for every point

    # ------------------------------------------------------------------
    # Scoring primitives
    # ------------------------------------------------------------------

    def _confusion(self, labels: np.ndarray) -> Confusion:
        predicted = labels.astype(bool)
        gold_mask = self._gold_mask
        tp = int(np.count_nonzero(predicted & gold_mask))
        fp = int(np.count_nonzero(predicted & ~gold_mask))
        fn = int(np.count_nonzero(~predicted & gold_mask))
        tn = len(labels) - tp - fp - fn
        return Confusion(tp, fp, fn, tn)

    def _expected_cost(self, function: MatchingFunction) -> float:
        if self.estimates is None:
            return 0.0
        try:
            return per_pair_cost(
                function, self.estimates, self.config.cost_strategy
            )
        except (EstimationError, KeyError):
            return 0.0

    def _outcome(
        self,
        change: Change,
        before_labels: np.ndarray,
        after_labels: np.ndarray,
    ) -> EditOutcome:
        before = before_labels.astype(bool)
        after = after_labels.astype(bool)
        flipped = before != after
        gold_mask = self._gold_mask
        fixed_mask = flipped & (after == gold_mask)
        broken_mask = flipped & (after != gold_mask)
        limit = self.config.attribution_limit
        fixed_examples = tuple(
            self.candidates[int(index)].pair_id
            for index in np.flatnonzero(fixed_mask)[:limit]
        )
        broken_examples = tuple(
            self.candidates[int(index)].pair_id
            for index in np.flatnonzero(broken_mask)[:limit]
        )
        return EditOutcome(
            change=change,
            fixed=int(np.count_nonzero(fixed_mask)),
            broken=int(np.count_nonzero(broken_mask)),
            fixed_examples=fixed_examples,
            broken_examples=broken_examples,
            newly_matched=int(np.count_nonzero(after & ~before)),
            newly_unmatched=int(np.count_nonzero(before & ~after)),
        )

    def _score_current(
        self, edits: Tuple[Change, ...], outcomes: Tuple[EditOutcome, ...]
    ) -> ScoredCandidate:
        return ScoredCandidate(
            edits=edits,
            outcomes=outcomes,
            confusion=self._confusion(self.state.labels),
            expected_cost=self._expected_cost(self.state.function),
        )

    def _recover(self) -> None:
        """Emergency rebuild after a failed restore — the one path that
        performs a from-scratch re-match, counted so callers can assert it
        never ran."""
        from ..core.matchers import DynamicMemoMatcher

        self.full_rematches += 1
        self._counter("refine.full_rematches").inc()
        state = self.state
        fresh = MatchState(
            state.function,
            self.candidates,
            state.memo,
            check_cache_first=state.check_cache_first,
            kernels=self.kernels,
        )
        matcher = DynamicMemoMatcher(
            memo=state.memo,
            check_cache_first=state.check_cache_first,
            recorder=fresh,
            kernels=self.kernels,
        )
        result = matcher.run(state.function, self.candidates)
        fresh.labels = result.labels.copy()
        self.state = fresh

    def _apply(self, change: Change) -> None:
        """Apply one candidate edit via the configured engine."""
        if self.engine == "columnar":
            from ..engine import apply_change_columnar

            apply_change_columnar(
                self.state,
                change,
                metrics=(
                    self.observability.metrics
                    if self.observability is not None
                    else None
                ),
            )
        else:
            apply_change(self.state, change)

    def _counter(self, name: str):
        if self.observability is not None:
            return self.observability.metrics.counter(name)

        class _Null:
            def inc(self, amount: float = 1) -> None:
                pass

        return _Null()

    # ------------------------------------------------------------------
    # The search
    # ------------------------------------------------------------------

    def run(self) -> RefinementReport:
        config = self.config
        state = self.state
        started = time.perf_counter()
        with maybe_span(
            self.observability,
            "refine.search",
            budget=config.budget,
            beam_width=config.beam_width,
            max_depth=config.max_depth,
            pairs=len(self.candidates),
        ):
            base_checkpoint = state.checkpoint()
            baseline = self._score_current((), ())
            beam: List[_BeamNode] = [
                _BeamNode(candidate=baseline, checkpoint=base_checkpoint)
            ]
            scored: List[ScoredCandidate] = []
            seen_sequences: Set[frozenset] = {frozenset()}
            rounds = 0
            try:
                for _ in range(config.max_depth):
                    if self.candidates_scored >= config.budget:
                        break
                    round_results = self._run_round(beam, seen_sequences)
                    if not round_results:
                        break
                    rounds += 1
                    scored.extend(candidate for candidate, _ in round_results)
                    beam = self._select_beam(round_results, base_checkpoint)
            finally:
                try:
                    state.restore(base_checkpoint)
                except StateError:
                    self._recover()
            with maybe_span(self.observability, "refine.frontier",
                            scored=len(scored)):
                frontier = pareto_frontier(
                    [baseline] + scored, lambda c: c.objective
                )
        return RefinementReport(
            baseline=baseline,
            frontier=frontier,
            candidates_generated=self.candidates_generated,
            candidates_scored=self.candidates_scored,
            incremental_evals=self.incremental_evals,
            full_rematches=self.full_rematches,
            rounds=rounds,
            elapsed_seconds=time.perf_counter() - started,
        )

    def _run_round(
        self,
        beam: List[_BeamNode],
        seen_sequences: Set[frozenset],
    ) -> List[Tuple[ScoredCandidate, _BeamNode]]:
        """Expand every beam node; returns (candidate, parent) pairs."""
        config = self.config
        state = self.state
        results: List[Tuple[ScoredCandidate, _BeamNode]] = []
        for node in beam:
            if self.candidates_scored >= config.budget:
                break
            state.restore(node.checkpoint)
            with maybe_span(
                self.observability,
                "refine.generate",
                depth=len(node.candidate.edits),
            ):
                pool = generate_candidates(
                    state,
                    self.gold,
                    max_per_slot=config.max_per_slot,
                    admit_fractions=config.admit_fractions,
                    risk_sample=config.risk_sample,
                    seed_rules=self.seed_rules,
                    feature_universe=self.feature_universe,
                    max_candidates=config.max_candidates_per_round,
                    focus_rules=config.focus_rules or None,
                )
            self.candidates_generated += len(pool)
            self._counter("refine.candidates").inc(len(pool))
            parent_keys = frozenset(
                change_key(change) for change in node.candidate.edits
            )
            with maybe_span(
                self.observability, "refine.score", pool=len(pool)
            ):
                for edit in pool:
                    if self.candidates_scored >= config.budget:
                        break
                    sequence_key = parent_keys | {change_key(edit.change)}
                    if sequence_key in seen_sequences:
                        continue
                    seen_sequences.add(sequence_key)
                    candidate = self._score_edit(node, edit)
                    if candidate is not None:
                        results.append((candidate, node))
        return results

    def _score_edit(
        self, node: _BeamNode, edit: CandidateEdit
    ) -> Optional[ScoredCandidate]:
        """Apply one edit incrementally, measure, roll back."""
        state = self.state
        try:
            edit.change.validate(state.function)
        except ChangeError:
            return None
        try:
            self._apply(edit.change)
            self.incremental_evals += 1
            self._counter("refine.incremental_evals").inc()
            self.candidates_scored += 1
            outcome = self._outcome(
                edit.change, node.checkpoint.labels, state.labels
            )
            return self._score_current(
                node.candidate.edits + (edit.change,),
                node.candidate.outcomes + (outcome,),
            )
        except ChangeError:
            return None
        finally:
            try:
                state.restore(node.checkpoint)
            except StateError:
                self._recover()

    def _select_beam(
        self,
        round_results: List[Tuple[ScoredCandidate, _BeamNode]],
        base_checkpoint: StateCheckpoint,
    ) -> List[_BeamNode]:
        """Keep the best sequences and materialize a checkpoint for each by
        replaying its last edit on its parent's checkpoint (one extra
        incremental application per survivor — still no re-match)."""
        config = self.config
        state = self.state
        ranked = sorted(
            round_results,
            key=lambda item: (
                -item[0].f1,
                item[0].expected_cost,
                item[0].describe(),
            ),
        )
        survivors: List[_BeamNode] = []
        for candidate, parent in ranked[: config.beam_width]:
            state.restore(parent.checkpoint)
            try:
                self._apply(candidate.edits[-1])
                self.incremental_evals += 1
                self._counter("refine.incremental_evals").inc()
            except ChangeError:  # cannot happen: already applied once
                continue
            survivors.append(
                _BeamNode(candidate=candidate, checkpoint=state.checkpoint())
            )
        return survivors


def refine(
    state: MatchState,
    gold: Set[PairId],
    config: Optional[RefineConfig] = None,
    **search_kwargs,
) -> RefinementReport:
    """Convenience wrapper: build a :class:`RefinementSearch` and run it."""
    return RefinementSearch(state, gold, config=config, **search_kwargs).run()
