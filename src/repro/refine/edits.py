"""Candidate-edit vocabulary — one generator feeding both suggestion paths.

This module is the single place that knows how to turn an error analysis
(current :class:`~repro.core.state.MatchState` + gold labels) into concrete
:class:`~repro.core.changes.Change` proposals.  Two consumers share it:

* :mod:`repro.evaluation.suggest` — the interactive "show me the top-5
  edits" path (thin ranking wrappers over these generators).
* :mod:`repro.refine.search` — the automated beam search, which scores
  every proposal through the incremental engine instead of trusting the
  generators' static gain/cost predictions.

Six generator families cover the paper's §6.2 edit vocabulary:

========================  =============================================
:func:`tighten_edits`     raise/lower a threshold to exclude FPs (Alg 7)
:func:`relax_edits`       move a threshold to admit FNs (Alg 8)
:func:`add_predicate_edits`  new conjunct that splits FPs from TPs (Alg 7)
:func:`drop_predicate_edits` delete the sole blocker of FNs (Alg 8)
:func:`drop_rule_edits`   delete a rule that mostly produces FPs (Alg 9)
:func:`add_rule_edits`    new rule from extractor output or FN feature
                          profiles (Alg 10)
========================  =============================================

All feature reads go through the state's memo (computing + memoizing on
miss), so generation cost is itself incremental and repeated generation
inside a search round is nearly free.  Every generator is deterministic:
iteration follows rule/predicate order and sampling is a prefix slice,
never an RNG draw.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.changes import (
    AddPredicate,
    AddRule,
    Change,
    RelaxPredicate,
    RemovePredicate,
    RemoveRule,
    TightenPredicate,
)
from ..core.rules import Feature, MatchingFunction, Predicate, Rule
from ..core.state import MatchState
from ..data.pairs import PairId


@dataclass
class CandidateEdit:
    """One proposed edit with its statically-predicted effect.

    ``predicted_gain``/``predicted_cost`` are the generator's *estimates*
    (pairs fixed / pairs broken); the refinement search replaces them with
    measured values by actually applying the edit.  The class doubles as
    the suggestion object of :mod:`repro.evaluation.suggest` (exported
    there under its historical name ``Suggestion``).
    """

    change: Change
    #: predicted newly-correct pairs (FPs removed / FNs recovered)
    predicted_gain: int
    #: predicted newly-wrong pairs (TPs lost / FPs admitted)
    predicted_cost: int
    #: generator family that proposed the edit (for attribution/debugging)
    origin: str = ""

    @property
    def score(self) -> float:
        """Gain discounted by cost; ties favour cheaper edits."""
        return self.predicted_gain - 2.0 * self.predicted_cost

    def describe(self) -> str:
        return (
            f"{self.change.describe()}  "
            f"(+{self.predicted_gain} fixed, -{self.predicted_cost} broken)"
        )

    def __repr__(self) -> str:
        return f"Suggestion({self.describe()})"


def feature_value(state: MatchState, pair_index: int, predicate: Predicate) -> float:
    """Memo-first feature read (computes + memoizes on miss)."""
    cached = state.memo.get(pair_index, predicate.feature.name)
    if cached is not None:
        return cached
    pair = state.candidates[pair_index]
    value = predicate.feature.compute(pair.record_a, pair.record_b)
    state.memo.put(pair_index, predicate.feature.name, value)
    return value


def _feature_value_raw(state: MatchState, pair_index: int, feature: Feature) -> float:
    """Memo-first read keyed by a bare feature (no predicate yet)."""
    cached = state.memo.get(pair_index, feature.name)
    if cached is not None:
        return cached
    pair = state.candidates[pair_index]
    value = feature.compute(pair.record_a, pair.record_b)
    state.memo.put(pair_index, feature.name, value)
    return value


def stricter_candidates(
    predicate: Predicate, good_values: Sequence[float], bad_values: Sequence[float]
) -> List[Tuple[float, int, int]]:
    """Candidate stricter thresholds with their (fp_removed, tp_lost).

    For a lower-bound predicate, raising the threshold to just above a
    value excludes every pair at or below it; symmetric for upper bounds.
    Candidates are the distinct bad-pair values (each is the cheapest
    threshold that excludes that pair) — i.e. the observed feature-value
    quantiles of the error population, not an arbitrary grid.
    """
    lower_bound = predicate.op in (">=", ">")
    results = []
    for pivot in sorted(set(bad_values)):
        if lower_bound:
            threshold = round(pivot + 1e-6, 6)
            if threshold <= predicate.threshold:
                continue
            removed = sum(1 for value in bad_values if value < threshold)
            lost = sum(1 for value in good_values if value < threshold)
        else:
            threshold = round(pivot - 1e-6, 6)
            if threshold >= predicate.threshold:
                continue
            removed = sum(1 for value in bad_values if value > threshold)
            lost = sum(1 for value in good_values if value > threshold)
        if removed > 0:
            results.append((threshold, removed, lost))
    return results


def rank_edits(
    edits: Iterable[CandidateEdit],
    per_slot: bool = True,
    limit: Optional[int] = None,
) -> List[CandidateEdit]:
    """Shared ranking/dedupe: sort by (-score, description), optionally keep
    only the best edit per (rule, slot), optionally truncate.

    This is the one implementation of what used to be ``_dedupe_by_slot``
    in :mod:`repro.evaluation.suggest`.
    """
    ranked = sorted(edits, key=lambda item: (-item.score, item.change.describe()))
    if per_slot:
        seen: Set[Tuple[str, str]] = set()
        kept: List[CandidateEdit] = []
        for edit in ranked:
            change = edit.change
            slot = getattr(change, "slot", None)
            if slot is None:
                kept.append(edit)
                continue
            key = (change.rule_name, slot)
            if key in seen:
                continue
            seen.add(key)
            kept.append(edit)
        ranked = kept
    return ranked if limit is None else ranked[:limit]


def change_key(change: Change) -> Tuple:
    """Structural identity of an edit, for pool-level dedupe."""
    if isinstance(change, (TightenPredicate, RelaxPredicate)):
        return (type(change).__name__, change.rule_name, change.slot,
                round(change.new_threshold, 9))
    if isinstance(change, RemovePredicate):
        return ("RemovePredicate", change.rule_name, change.slot)
    if isinstance(change, AddPredicate):
        return ("AddPredicate", change.rule_name, change.predicate.pid)
    if isinstance(change, RemoveRule):
        return ("RemoveRule", change.rule_name)
    if isinstance(change, AddRule):
        return ("AddRule", frozenset(p.pid for p in change.rule.predicates))
    return ("Change", change.describe())


def dedupe_edits(edits: Iterable[CandidateEdit]) -> List[CandidateEdit]:
    """Drop structurally-identical proposals, keeping the first occurrence."""
    seen: Set[Tuple] = set()
    kept: List[CandidateEdit] = []
    for edit in edits:
        key = change_key(edit.change)
        if key in seen:
            continue
        seen.add(key)
        kept.append(edit)
    return kept


# ---------------------------------------------------------------------------
# Error profile — the shared first pass over state + gold
# ---------------------------------------------------------------------------


@dataclass
class ErrorProfile:
    """Indices of each confusion cell, with matched pairs grouped by the
    rule the state attributes them to (exactly the set Algorithm 7 will
    re-examine on a tighten of that rule)."""

    true_positives_by_rule: Dict[str, List[int]]
    false_positives_by_rule: Dict[str, List[int]]
    false_negatives: List[int]
    unmatched_non_gold: List[int]

    @property
    def false_positive_count(self) -> int:
        return sum(len(v) for v in self.false_positives_by_rule.values())


def error_profile(state: MatchState, gold: Set[PairId]) -> ErrorProfile:
    """One scan of the state's labels/attribution against gold."""
    tp_by_rule: Dict[str, List[int]] = defaultdict(list)
    fp_by_rule: Dict[str, List[int]] = defaultdict(list)
    for pair_index in state.matched_indices():
        rule_name = state.function.rules[int(state.attribution[pair_index])].name
        if state.candidates[pair_index].pair_id in gold:
            tp_by_rule[rule_name].append(pair_index)
        else:
            fp_by_rule[rule_name].append(pair_index)
    false_negatives: List[int] = []
    unmatched_non_gold: List[int] = []
    for pair_index in state.unmatched_indices():
        if state.candidates[pair_index].pair_id in gold:
            false_negatives.append(pair_index)
        else:
            unmatched_non_gold.append(pair_index)
    return ErrorProfile(
        true_positives_by_rule=dict(tp_by_rule),
        false_positives_by_rule=dict(fp_by_rule),
        false_negatives=false_negatives,
        unmatched_non_gold=unmatched_non_gold,
    )


# ---------------------------------------------------------------------------
# Threshold edits (tighten / relax)
# ---------------------------------------------------------------------------


def tighten_edits(
    state: MatchState,
    gold: Set[PairId],
    profile: Optional[ErrorProfile] = None,
    max_per_slot: Optional[int] = None,
) -> List[CandidateEdit]:
    """Tighten proposals for every rule with attributed false positives.

    Emits one proposal per useful stricter threshold (each distinct FP
    feature value is a candidate pivot); ``max_per_slot`` keeps only the
    best few per (rule, slot) — the search uses a small cap, the
    interactive path keeps everything and ranks later.
    """
    profile = profile or error_profile(state, gold)
    edits: List[CandidateEdit] = []
    for rule_name, false_positive_pairs in profile.false_positives_by_rule.items():
        true_positive_pairs = profile.true_positives_by_rule.get(rule_name, [])
        rule = state.function.rule(rule_name)
        for predicate in rule.predicates:
            good_values = [
                feature_value(state, index, predicate)
                for index in true_positive_pairs
            ]
            bad_values = [
                feature_value(state, index, predicate)
                for index in false_positive_pairs
            ]
            slot_edits = [
                CandidateEdit(
                    change=TightenPredicate(rule_name, predicate.slot, threshold),
                    predicted_gain=removed,
                    predicted_cost=lost,
                    origin="tighten",
                )
                for threshold, removed, lost in stricter_candidates(
                    predicate, good_values, bad_values
                )
            ]
            if max_per_slot is not None and len(slot_edits) > max_per_slot:
                slot_edits.sort(
                    key=lambda item: (-item.score, item.change.describe())
                )
                slot_edits = slot_edits[:max_per_slot]
            edits.extend(slot_edits)
    return edits


def _recoverable_by_slot(
    state: MatchState,
    profile: ErrorProfile,
) -> Dict[Tuple[str, str], List[float]]:
    """(rule, slot) -> feature values of FNs blocked *only* by that slot.

    A false negative is recoverable through rule r by editing slot s iff
    s's predicate is r's only failing predicate for that pair — the shared
    premise of both relax and drop-predicate proposals.
    """
    needed: Dict[Tuple[str, str], List[float]] = defaultdict(list)
    for pair_index in profile.false_negatives:
        for rule in state.function.rules:
            failing: List[Predicate] = []
            for predicate in rule.predicates:
                value = feature_value(state, pair_index, predicate)
                if not predicate.evaluate(value):
                    failing.append(predicate)
                if len(failing) > 1:
                    break
            if len(failing) == 1:
                predicate = failing[0]
                needed[(rule.name, predicate.slot)].append(
                    feature_value(state, pair_index, predicate)
                )
    return needed


def _relaxation_risk(
    state: MatchState,
    rule: Rule,
    slot: str,
    relaxed: Predicate,
    unmatched_non_gold: Sequence[int],
) -> int:
    """Unmatched non-gold pairs the relaxed rule would newly admit."""
    predicate = rule.predicate_by_slot(slot)
    others = [p for p in rule.predicates if p.slot != slot]
    risk = 0
    for pair_index in unmatched_non_gold:
        value = feature_value(state, pair_index, predicate)
        if not relaxed.evaluate(value) or predicate.evaluate(value):
            continue
        if all(
            other.evaluate(feature_value(state, pair_index, other))
            for other in others
        ):
            risk += 1
    return risk


def relax_edits(
    state: MatchState,
    gold: Set[PairId],
    profile: Optional[ErrorProfile] = None,
    risk_sample: int = 500,
    admit_fractions: Sequence[float] = (1.0,),
) -> List[CandidateEdit]:
    """Relax proposals that recover false negatives.

    For each (rule, slot) with recoverable FNs, proposes thresholds at
    quantiles of the needed-value distribution: ``admit_fractions=(1.0,)``
    (the interactive default) relaxes just enough to admit *all* of them;
    fractions below 1.0 admit only the nearest portion — less gain, but
    usually far less risk, which gives the Pareto search intermediate
    points to work with.  Risk is replayed over (a prefix sample of) the
    unmatched non-gold pairs.
    """
    profile = profile or error_profile(state, gold)
    if not profile.false_negatives:
        return []
    needed = _recoverable_by_slot(state, profile)
    unmatched_non_gold = profile.unmatched_non_gold[:risk_sample]

    edits: List[CandidateEdit] = []
    for (rule_name, slot), values in needed.items():
        rule = state.function.rule(rule_name)
        predicate = rule.predicate_by_slot(slot)
        lower_bound = predicate.op in (">=", ">")
        # ordered[k] is the k+1'th-easiest value to admit: descending for
        # lower bounds (closest to the threshold first), ascending for
        # upper bounds.
        ordered = sorted(values, reverse=lower_bound)
        seen_thresholds: Set[float] = set()
        for fraction in admit_fractions:
            count = max(1, min(len(ordered), round(len(ordered) * fraction)))
            admitted = ordered[:count]
            target = admitted[-1]
            threshold = (
                round(target - 1e-6, 6) if lower_bound else round(target + 1e-6, 6)
            )
            if threshold in seen_thresholds:
                continue
            seen_thresholds.add(threshold)
            relaxed = predicate.with_threshold(threshold)
            if not predicate.is_stricter_than(relaxed):
                continue  # no actual relaxation possible (already at bound)
            gain = sum(1 for value in values if relaxed.evaluate(value))
            risk = _relaxation_risk(state, rule, slot, relaxed, unmatched_non_gold)
            edits.append(
                CandidateEdit(
                    change=RelaxPredicate(rule_name, slot, threshold),
                    predicted_gain=gain,
                    predicted_cost=risk,
                    origin="relax",
                )
            )
    return edits


# ---------------------------------------------------------------------------
# Structural edits (add/drop predicate, add/drop rule)
# ---------------------------------------------------------------------------


def drop_predicate_edits(
    state: MatchState,
    gold: Set[PairId],
    profile: Optional[ErrorProfile] = None,
    risk_sample: int = 500,
) -> List[CandidateEdit]:
    """RemovePredicate proposals: delete a slot that is the sole blocker of
    at least one false negative (the limit case of relaxing it to -∞)."""
    profile = profile or error_profile(state, gold)
    if not profile.false_negatives:
        return []
    needed = _recoverable_by_slot(state, profile)
    unmatched_non_gold = profile.unmatched_non_gold[:risk_sample]

    edits: List[CandidateEdit] = []
    for (rule_name, slot), values in needed.items():
        rule = state.function.rule(rule_name)
        if len(rule.predicates) == 1:
            continue  # removal would be RemoveRule; proposed separately
        predicate = rule.predicate_by_slot(slot)
        others = [p for p in rule.predicates if p.slot != slot]
        risk = 0
        for pair_index in unmatched_non_gold:
            if predicate.evaluate(feature_value(state, pair_index, predicate)):
                continue  # not newly admitted by the removal
            if all(
                other.evaluate(feature_value(state, pair_index, other))
                for other in others
            ):
                risk += 1
        edits.append(
            CandidateEdit(
                change=RemovePredicate(rule_name, slot),
                predicted_gain=len(values),
                predicted_cost=risk,
                origin="drop-predicate",
            )
        )
    return edits


def drop_rule_edits(
    state: MatchState,
    gold: Set[PairId],
    profile: Optional[ErrorProfile] = None,
) -> List[CandidateEdit]:
    """RemoveRule proposals for rules whose attributed matches are mostly
    false positives.  The cost estimate (attributed TPs) is an upper bound:
    a later rule may re-admit some of them, which the search's incremental
    scoring will discover."""
    profile = profile or error_profile(state, gold)
    edits: List[CandidateEdit] = []
    if len(state.function) <= 1:
        return edits
    for rule_name, fps in profile.false_positives_by_rule.items():
        tps = profile.true_positives_by_rule.get(rule_name, [])
        if len(fps) <= len(tps):
            continue  # removal predicted to hurt; tighten instead
        edits.append(
            CandidateEdit(
                change=RemoveRule(rule_name),
                predicted_gain=len(fps),
                predicted_cost=len(tps),
                origin="drop-rule",
            )
        )
    return edits


def add_predicate_edits(
    state: MatchState,
    gold: Set[PairId],
    profile: Optional[ErrorProfile] = None,
    feature_universe: Sequence[Feature] = (),
    max_per_rule: int = 2,
) -> List[CandidateEdit]:
    """AddPredicate proposals: a new lower-bound conjunct that separates a
    rule's false positives from its true positives.

    Candidate features are the function's own features plus any supplied
    ``feature_universe`` (e.g. the learning workload's feature space),
    skipping features already occupying the rule's lower-bound slot.
    Thresholds come from :func:`stricter_candidates` over the observed
    TP/FP value distributions — the same quantile machinery as tightening,
    with a ``>= -1`` probe predicate standing in for the paper's "empty
    predicate that always evaluates to true" (§6.2.1).
    """
    profile = profile or error_profile(state, gold)
    universe: Dict[str, Feature] = {
        feature.name: feature for feature in state.function.features()
    }
    for feature in feature_universe:
        universe.setdefault(feature.name, feature)

    edits: List[CandidateEdit] = []
    for rule_name, fps in profile.false_positives_by_rule.items():
        tps = profile.true_positives_by_rule.get(rule_name, [])
        rule = state.function.rule(rule_name)
        occupied = {predicate.slot for predicate in rule.predicates}
        rule_edits: List[CandidateEdit] = []
        for name in sorted(universe):
            feature = universe[name]
            probe = Predicate(feature, ">=", -1.0)
            if probe.slot in occupied:
                continue
            good_values = [
                _feature_value_raw(state, index, feature) for index in tps
            ]
            bad_values = [
                _feature_value_raw(state, index, feature) for index in fps
            ]
            for threshold, removed, lost in stricter_candidates(
                probe, good_values, bad_values
            ):
                rule_edits.append(
                    CandidateEdit(
                        change=AddPredicate(
                            rule_name, Predicate(feature, ">=", threshold)
                        ),
                        predicted_gain=removed,
                        predicted_cost=lost,
                        origin="add-predicate",
                    )
                )
        rule_edits.sort(key=lambda item: (-item.score, item.change.describe()))
        edits.extend(rule_edits[:max_per_rule])
    return edits


def _fresh_rule_name(function: MatchingFunction, prefix: str, start: int = 0) -> str:
    index = start
    while f"{prefix}{index}" in function:
        index += 1
    return f"{prefix}{index}"


def _rule_admits(state: MatchState, rule: Rule, pair_index: int) -> bool:
    return all(
        predicate.evaluate(feature_value(state, pair_index, predicate))
        for predicate in rule.predicates
    )


def add_rule_edits(
    state: MatchState,
    gold: Set[PairId],
    profile: Optional[ErrorProfile] = None,
    seed_rules: Sequence[Rule] = (),
    feature_universe: Sequence[Feature] = (),
    risk_sample: int = 500,
    max_profile_rules: int = 2,
    profile_quantile: float = 0.25,
    max_profile_predicates: int = 3,
    name_prefix: str = "refine_r",
) -> List[CandidateEdit]:
    """AddRule proposals from two seeding paths (Algorithm 10 applies them):

    * ``seed_rules`` — rules mined elsewhere, e.g. by
      :func:`repro.learning.rule_extraction.extract_rules` on the labeled
      sample.  Bodies already present in the function are skipped; names
      are rewritten to fresh ones so extractor output can be replayed
      against any function.
    * false-negative feature profiles — for the FN population, rank
      features by how well they separate FNs from unmatched non-gold
      pairs, then build a conjunction of lower-bound predicates at the
      ``profile_quantile`` of the FN value distribution (loose enough to
      admit most FNs, tight enough to exclude the bulk of non-matches).

    Gain = FNs the new rule admits; cost = (sampled) unmatched non-gold
    pairs it admits.
    """
    profile = profile or error_profile(state, gold)
    if not profile.false_negatives:
        return []
    unmatched_non_gold = profile.unmatched_non_gold[:risk_sample]
    existing_bodies = {
        frozenset(p.pid for p in rule.predicates) for rule in state.function.rules
    }

    def assess(rule: Rule, origin: str) -> Optional[CandidateEdit]:
        body = frozenset(p.pid for p in rule.predicates)
        if body in existing_bodies:
            return None
        gain = sum(
            1
            for index in profile.false_negatives
            if _rule_admits(state, rule, index)
        )
        if gain == 0:
            return None
        risk = sum(
            1 for index in unmatched_non_gold if _rule_admits(state, rule, index)
        )
        existing_bodies.add(body)
        return CandidateEdit(
            change=AddRule(rule),
            predicted_gain=gain,
            predicted_cost=risk,
            origin=origin,
        )

    edits: List[CandidateEdit] = []
    name_counter = 0
    for seed in seed_rules:
        name = _fresh_rule_name(state.function, name_prefix, name_counter)
        name_counter += 1
        edit = assess(Rule(name, seed.predicates), "add-rule/extractor")
        if edit is not None:
            edits.append(edit)

    # FN feature-profile rules: rank features by separation between the FN
    # population and the unmatched non-gold population.
    universe: Dict[str, Feature] = {
        feature.name: feature for feature in state.function.features()
    }
    for feature in feature_universe:
        universe.setdefault(feature.name, feature)
    scored_features: List[Tuple[float, str, Feature, List[float]]] = []
    for name in sorted(universe):
        feature = universe[name]
        fn_values = sorted(
            _feature_value_raw(state, index, feature)
            for index in profile.false_negatives
        )
        median_fn = fn_values[len(fn_values) // 2]
        if unmatched_non_gold:
            ung_values = sorted(
                _feature_value_raw(state, index, feature)
                for index in unmatched_non_gold
            )
            median_ung = ung_values[len(ung_values) // 2]
        else:
            median_ung = 0.0
        separation = median_fn - median_ung
        if separation > 0.0:
            scored_features.append((separation, name, feature, fn_values))
    scored_features.sort(key=lambda item: (-item[0], item[1]))

    top = scored_features[:max_profile_predicates]
    for width in range(len(top), 0, -1):
        if len(edits) >= len(seed_rules) + max_profile_rules:
            break
        predicates = []
        for _, _, feature, fn_values in top[:width]:
            position = min(
                len(fn_values) - 1, int(len(fn_values) * profile_quantile)
            )
            threshold = round(fn_values[position], 6)
            predicates.append(Predicate(feature, ">=", threshold))
        name = _fresh_rule_name(state.function, name_prefix, name_counter)
        name_counter += 1
        edit = assess(Rule(name, predicates), "add-rule/fn-profile")
        if edit is not None:
            edits.append(edit)
    return edits


# ---------------------------------------------------------------------------
# Combined pool — what the search consumes
# ---------------------------------------------------------------------------


def edit_targets_rules(edit: CandidateEdit, focus: Set[str]) -> bool:
    """Does this edit modify one of the ``focus`` rules?

    ``AddRule`` changes introduce a *new* rule, so they never target an
    existing one and are excluded under any focus set.
    """
    rule_name = getattr(edit.change, "rule_name", None)
    return rule_name is not None and rule_name in focus


def generate_candidates(
    state: MatchState,
    gold: Set[PairId],
    max_per_slot: int = 3,
    admit_fractions: Sequence[float] = (0.25, 0.5, 1.0),
    risk_sample: int = 500,
    seed_rules: Sequence[Rule] = (),
    feature_universe: Sequence[Feature] = (),
    max_candidates: Optional[int] = None,
    focus_rules: Optional[Sequence[str]] = None,
) -> List[CandidateEdit]:
    """The full candidate pool for one search node: every generator family,
    structurally deduped, deterministically ranked best-predicted-first.

    ``focus_rules`` (e.g. drift-monitor warm-start hints) restricts the
    pool to edits targeting those rules — applied *before* ranking and
    the ``max_candidates`` truncation, so a focused pool is a genuine
    subset of the cold-start pool, never a re-ranking of it."""
    profile = error_profile(state, gold)
    pool: List[CandidateEdit] = []
    pool.extend(tighten_edits(state, gold, profile, max_per_slot=max_per_slot))
    pool.extend(
        relax_edits(
            state,
            gold,
            profile,
            risk_sample=risk_sample,
            admit_fractions=admit_fractions,
        )
    )
    pool.extend(
        add_predicate_edits(
            state, gold, profile, feature_universe=feature_universe
        )
    )
    pool.extend(drop_predicate_edits(state, gold, profile, risk_sample=risk_sample))
    pool.extend(drop_rule_edits(state, gold, profile))
    pool.extend(
        add_rule_edits(
            state,
            gold,
            profile,
            seed_rules=seed_rules,
            feature_universe=feature_universe,
            risk_sample=risk_sample,
        )
    )
    if focus_rules:
        focus = {str(name) for name in focus_rules}
        pool = [edit for edit in pool if edit_targets_rules(edit, focus)]
    pool = dedupe_edits(pool)
    pool.sort(key=lambda item: (-item.score, item.change.describe()))
    if max_candidates is not None:
        pool = pool[:max_candidates]
    return pool
