"""Pareto dominance over (precision ↑, recall ↑, expected cost ↓).

The refinement search reports a *frontier*, not a single winner, because
the three objectives genuinely trade off: the cheapest fix for precision
usually costs recall (and vice versa), and a higher-quality function may
be more expensive to evaluate per pair.  The analyst — or a policy on
top — picks the operating point; the search's job is only to make sure
no reported candidate is strictly beaten by another.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple, TypeVar

T = TypeVar("T")

#: (precision, recall, expected_cost) — the objective vector.
Objective = Tuple[float, float, float]

#: Absolute slack when comparing objective components: per-pair costs are
#: tiny floats assembled from sums in different orders, so exact ties
#: would otherwise split on noise.
_EPSILON = 1e-12


def dominates(a: Objective, b: Objective) -> bool:
    """True iff ``a`` is at least as good as ``b`` on every objective and
    strictly better on at least one (precision/recall maximised, expected
    cost minimised)."""
    precision_a, recall_a, cost_a = a
    precision_b, recall_b, cost_b = b
    if (
        precision_a < precision_b - _EPSILON
        or recall_a < recall_b - _EPSILON
        or cost_a > cost_b + _EPSILON
    ):
        return False
    return (
        precision_a > precision_b + _EPSILON
        or recall_a > recall_b + _EPSILON
        or cost_a < cost_b - _EPSILON
    )


def pareto_frontier(
    items: Sequence[T], objective: Callable[[T], Objective]
) -> List[T]:
    """The non-dominated subset of ``items``, de-duplicated by objective.

    Of several items with an identical objective vector the first (in
    input order) survives, so callers control tie-breaks by pre-sorting —
    the search feeds candidates in deterministic discovery order, keeping
    the frontier stable under a fixed seed.  Output is sorted by
    (recall desc, precision desc, cost asc) for stable presentation.
    """
    kept: List[T] = []
    kept_objectives: List[Objective] = []
    for item in items:
        vector = objective(item)
        if any(dominates(other, vector) for other in kept_objectives):
            continue
        if any(
            not dominates(vector, other)
            and all(abs(x - y) <= _EPSILON for x, y in zip(vector, other))
            for other in kept_objectives
        ):
            continue  # exact duplicate of a survivor
        survivors = [
            (kept_item, kept_vector)
            for kept_item, kept_vector in zip(kept, kept_objectives)
            if not dominates(vector, kept_vector)
        ]
        kept = [item_ for item_, _ in survivors] + [item]
        kept_objectives = [vector_ for _, vector_ in survivors] + [vector]
    order = sorted(
        range(len(kept)),
        key=lambda i: (
            -kept_objectives[i][1],
            -kept_objectives[i][0],
            kept_objectives[i][2],
        ),
    )
    return [kept[i] for i in order]
