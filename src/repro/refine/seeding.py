"""Seed-rule mining — the bridge from :mod:`repro.learning` into refinement.

The paper's §7.1 extractor turns a fitted forest into a DNF rule set; the
refinement search reuses it at a smaller scale to propose *whole-rule*
candidates (its ``AddRule`` family, Algorithm 10): fit a modest forest on
the analyst's gold labels, extract its positive-path rules, and hand them
to :func:`repro.refine.edits.add_rule_edits`, which filters them against
the current function and measures their actual gain/risk.  Everything is
seeded, so the mined rules — and therefore the whole search — stay
deterministic.
"""

from __future__ import annotations

from typing import List, Set

from ..core.rules import Rule
from ..data.pairs import CandidateSet, PairId
from ..errors import ReproError
from ..learning.feature_space import FeatureSpace
from ..learning.random_forest import RandomForest
from ..learning.rule_extraction import extract_rules
from ..learning.vectorize import build_labeled_sample


def extractor_seed_rules(
    candidates: CandidateSet,
    gold: Set[PairId],
    space: FeatureSpace,
    max_rules: int = 8,
    n_trees: int = 16,
    max_depth: int = 4,
    negative_ratio: float = 3.0,
    seed: int = 0,
) -> List[Rule]:
    """Mine candidate rules from the gold labels via the §7.1 extractor.

    Returns at most ``max_rules`` rules (named ``r1..rN`` by the
    extractor; :func:`~repro.refine.edits.add_rule_edits` renames them to
    fresh names before proposing).  An unextractable sample — too few
    positives, no pure leaves — yields ``[]`` rather than an error: seed
    rules are an enrichment, not a requirement.
    """
    try:
        sample = build_labeled_sample(
            space, candidates, gold, negative_ratio=negative_ratio, seed=seed
        )
        forest = RandomForest(
            n_trees=n_trees,
            max_depth=max_depth,
            max_features="sqrt",
            seed=seed,
        ).fit(sample.matrix, sample.labels)
        extracted = extract_rules(forest, space, max_rules=max_rules)
    except ReproError:
        return []
    return list(extracted.rules)
