"""Automated rule-refinement search — closing the paper's debugging loop.

The paper (§8) stops at *interactive* debugging: the incremental engine
makes each human-chosen edit cheap.  This package turns the crank
automatically: enumerate candidate edits from the current error profile
(:mod:`repro.refine.edits`), score every one through Algorithms 7-10 with
checkpoint/rollback (:mod:`repro.refine.search`), and report the Pareto
frontier over (precision, recall, expected cost)
(:mod:`repro.refine.pareto`).  See ``docs/refinement.md``.
"""

from .edits import (
    CandidateEdit,
    ErrorProfile,
    add_predicate_edits,
    add_rule_edits,
    change_key,
    dedupe_edits,
    drop_predicate_edits,
    drop_rule_edits,
    error_profile,
    feature_value,
    generate_candidates,
    rank_edits,
    relax_edits,
    stricter_candidates,
    tighten_edits,
)
from .pareto import Objective, dominates, pareto_frontier
from .seeding import extractor_seed_rules
from .search import (
    EditOutcome,
    RefineConfig,
    RefinementReport,
    RefinementSearch,
    ScoredCandidate,
    refine,
)

__all__ = [
    "CandidateEdit",
    "EditOutcome",
    "ErrorProfile",
    "Objective",
    "RefineConfig",
    "RefinementReport",
    "RefinementSearch",
    "ScoredCandidate",
    "add_predicate_edits",
    "add_rule_edits",
    "change_key",
    "dedupe_edits",
    "dominates",
    "drop_predicate_edits",
    "drop_rule_edits",
    "error_profile",
    "extractor_seed_rules",
    "feature_value",
    "generate_candidates",
    "pareto_frontier",
    "rank_edits",
    "refine",
    "relax_edits",
    "stricter_candidates",
    "tighten_edits",
]
