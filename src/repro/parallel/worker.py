"""The worker-side half of the parallel engine.

:func:`run_chunk` is a module-level function (so it pickles by reference
into ``ProcessPoolExecutor``) and is deliberately **pure**: task in,
outcome out, no shared state.  That purity is what makes the executor's
robustness story simple — a retry or an in-parent serial fallback calls
exactly the same function and gets exactly the same answer.

Each worker evaluates its chunk with a fresh per-chunk
:class:`~repro.core.memo.HashMemo` (sparse — only computed entries travel
back) over *local* pair indices ``0..len(chunk)``.  Because the memo is
keyed per pair, per-pair evaluation is independent of every other pair,
so a chunk's labels, stats counters, memo contents, and trace facts are
bit-identical to what a serial run would have produced for those pairs.

Fault injection (tests only): a task may carry ``fault_failures > 0``, in
which case the worker fails up front — ``fault_kind="raise"`` raises
:class:`InjectedWorkerFault` (an ordinary remote exception),
``fault_kind="exit"`` kills the process with ``os._exit`` (simulating an
OOM-killed or segfaulted worker, which breaks the whole pool).  The
executor decrements the counter on retry, so "fail once" exercises the
retry path and "fail twice" exercises serial fallback.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from contextlib import nullcontext
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core.matchers import DynamicMemoMatcher, TraceLog
from ..core.memo import HashMemo
from ..core.stats import MatchStats
from ..data.pairs import CandidateSet
from ..data.table import Record, Table
from .payload import ChunkTask


class InjectedWorkerFault(RuntimeError):
    """Deliberate failure raised by the fault-injection hook (tests)."""


#: Shared no-op context manager for the untraced paths (stateless, safe
#: to re-enter).
_NULL_CONTEXT = nullcontext()

#: Per-process bound-plan cache: one (function, kernels, plan) triple per
#: distinct plan identity, reused across the chunks of one run.  Binding a
#: PlanSpec re-parses the DSL and re-classifies every feature against the
#: worker's kernels; a worker typically evaluates many chunks of the same
#: run, so everything derived purely from the *task shape* (not the pair
#: list) is shared.  Sharing the kernels is what makes this a real win:
#: record-level derived values (token sets, normalized strings, TF-IDF
#: vectors) survive across chunks that touch the same records.  Chunk
#: outcomes stay bit-identical — labels, stats, memo, and trace depend
#: only on feature *values*, never on cache temperature.  The key leads
#: with ``run_token`` so no state leaks across runs (records may change
#: between streaming deltas); LRU-capped since stale runs never recur.
_BIND_CACHE: "OrderedDict[tuple, tuple]" = OrderedDict()
_BIND_CACHE_LIMIT = 8


def _bind_cache_key(task: ChunkTask) -> tuple:
    spec = task.plan_spec
    return (
        task.run_token,
        task.function.dsl_text,
        tuple(sorted(task.function.pickled_features.items())),
        task.check_cache_first,
        task.use_kernels,
        task.use_bounds,
        spec.check_cache_first,
        spec.use_bounds,
        tuple(sorted(spec.annotations.items())),
    )


def _bound_plan(task: ChunkTask):
    """(function, kernels, plan, cache_hit) for a plan-carrying task."""
    key = _bind_cache_key(task)
    cached = _BIND_CACHE.get(key)
    if cached is not None:
        _BIND_CACHE.move_to_end(key)
        function, kernels, plan = cached
        return function, kernels, plan, True
    function = task.function.materialize()
    kernels = _make_kernels(task)
    plan = task.plan_spec.bind(function, kernels)
    _BIND_CACHE[key] = (function, kernels, plan)
    while len(_BIND_CACHE) > _BIND_CACHE_LIMIT:
        _BIND_CACHE.popitem(last=False)
    return function, kernels, plan, False


def _make_kernels(task: ChunkTask):
    if not task.use_kernels:
        return None
    # Imported lazily, like observability: seed tasks never need it.  The
    # cache is worker-local — built over the shard's re-hydrated records,
    # so token sets (and all derived values) are bit-identical to the
    # parent's.
    from ..kernels import FeatureKernels

    return FeatureKernels(use_bounds=task.use_bounds)


@dataclass
class ChunkOutcome:
    """What a worker sends back for one chunk."""

    chunk_id: int
    #: labels over the chunk's pairs, in chunk (local) order.
    labels: np.ndarray
    stats: MatchStats
    #: memo contents as (local_pair_index, feature_name, value) triples.
    memo_entries: List[Tuple[int, str, float]]
    #: trace facts for MatchState replay (None unless requested).
    trace: Optional[TraceLog]
    worker_pid: int
    elapsed_seconds: float
    #: worker-local span log for the parent to splice (None unless
    #: requested via ChunkTask.collect_spans).
    spans: Optional[object] = None
    #: worker-local Profiler snapshot (None unless profiling requested).
    profile: Optional[dict] = None
    #: columnar-engine counters (0 for scalar chunks); the parent folds
    #: them into its engine.* metrics.
    mask_evals: int = 0
    scalar_fallbacks: int = 0
    #: plan-bind accounting: 1 if this chunk bound the PlanSpec afresh,
    #: 1 if it reused a process-cached bound plan (both 0 for scalar
    #: tasks); folded into the parent's engine.plan_* counters.
    plan_binds: int = 0
    plan_cache_hits: int = 0


def _build_table(
    name: str,
    attributes: Tuple[str, ...],
    records: List[Tuple[str, dict]],
) -> Table:
    return Table(
        name, attributes, (Record(rid, values) for rid, values in records)
    )


def run_chunk(task: ChunkTask) -> ChunkOutcome:
    """Evaluate one chunk: rebuild, match, and package the outcome."""
    if task.fault_failures > 0:
        if task.fault_kind == "exit":
            os._exit(17)
        raise InjectedWorkerFault(
            f"injected fault on chunk {task.chunk_id} "
            f"({task.fault_failures} failures remaining)"
        )

    started = time.perf_counter()
    tracer = None
    profiler = None
    if task.collect_spans or task.profile_sample_every > 0:
        # Imported lazily: most workers never need the observability layer.
        from ..observability import Profiler, Tracer

        if task.collect_spans:
            tracer = Tracer(enabled=True)
        if task.profile_sample_every > 0:
            profiler = Profiler(sample_every=task.profile_sample_every)

    with (
        tracer.span(f"chunk:{task.chunk_id}", pairs=len(task.pair_ids))
        if tracer is not None
        else _NULL_CONTEXT
    ):
        engine = task.engine
        plan = None
        plan_binds = plan_cache_hits = 0
        with (
            tracer.span("rebuild") if tracer is not None else _NULL_CONTEXT
        ):
            if engine != "scalar" and task.plan_spec is not None:
                # Columnar/auto chunks share one bound plan (function +
                # kernels + plan) per process across the run's chunks.
                function, kernels, plan, cache_hit = _bound_plan(task)
                if cache_hit:
                    plan_cache_hits = 1
                else:
                    plan_binds = 1
            else:
                function = task.function.materialize()
                kernels = _make_kernels(task)
            table_a = _build_table(
                task.table_a_name, task.table_a_attributes, task.records_a
            )
            table_b = _build_table(
                task.table_b_name, task.table_b_attributes, task.records_b
            )
            candidates = CandidateSet.from_id_pairs(
                table_a, table_b, task.pair_ids
            )

        if engine == "auto":
            # Resolve against *this worker's* bound plan: support was
            # recomputed for its kernels, so the decision is its own.
            engine = (
                plan.decision.engine
                if plan is not None and plan.decision is not None
                else "scalar"
            )

        trace = TraceLog() if task.collect_trace else None
        executor = None
        if engine == "columnar":
            # Columnar chunks use a dense ArrayMemo (the executor's native
            # backend); entries still travel back as sparse triples via
            # items(), so the parent-side merge is backend-agnostic.
            from ..core.memo import ArrayMemo
            from ..engine import ColumnarMatcher

            names = [feature.name for feature in function.features()]
            memo = ArrayMemo(len(candidates), names)
            matcher = ColumnarMatcher(
                memo=memo,
                check_cache_first=task.check_cache_first,
                recorder=trace,
                profiler=profiler,
                kernels=kernels,
                plan=plan,
            )
        else:
            memo = HashMemo(len(candidates))
            matcher = DynamicMemoMatcher(
                memo=memo,
                check_cache_first=task.check_cache_first,
                recorder=trace,
                profiler=profiler,
                kernels=kernels,
            )
        with tracer.span("match") if tracer is not None else _NULL_CONTEXT:
            result = matcher.run(function, candidates)
        if engine == "columnar":
            executor = matcher.last_executor
    return ChunkOutcome(
        chunk_id=task.chunk_id,
        labels=result.labels,
        stats=result.stats,
        memo_entries=list(memo.items()),
        trace=trace,
        worker_pid=os.getpid(),
        elapsed_seconds=time.perf_counter() - started,
        spans=tracer.log if tracer is not None else None,
        profile=profiler.snapshot() if profiler is not None else None,
        mask_evals=executor.mask_evals if executor is not None else 0,
        scalar_fallbacks=(
            executor.scalar_fallbacks if executor is not None else 0
        ),
        plan_binds=plan_binds,
        plan_cache_hits=plan_cache_hits,
    )
