"""Picklable task payloads for worker processes.

A worker must rebuild three things: the **matching function**, the **table
slices** its chunk touches, and the **pair list** of the chunk.  Each has a
serialization subtlety:

* The function travels as DSL text via the existing parser round-trip
  (:func:`~repro.core.parser.format_function` with ``precise=True`` so
  float64 thresholds survive exactly).  Text is compact, versionless, and
  independent of pickle protocol details.
* Corpus-bound features (the TF-IDF family) cannot be rebuilt from text
  alone — a registry-fresh instance would carry empty document statistics
  and score differently.  Their :class:`~repro.core.rules.Feature` objects
  (tokenizer + corpus + name) are pickled alongside the text and take
  precedence in the worker's resolver.  The same escape hatch covers
  features with non-default names, whose memo keys must survive the trip.
* Tables ship as slim ``(record_id, values)`` lists restricted to the
  records the chunk's pairs actually reference, so payload size scales
  with the chunk, not the dataset.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.parser import FeatureResolver, format_function, parse_function, registry_resolver
from ..core.rules import Feature, MatchingFunction
from ..data.pairs import CandidateSet
from ..errors import ParallelExecutionError
from .partitioner import Chunk

#: Resolver key for an overridden feature: (sim name, attr_a, attr_b).
FeatureKey = Tuple[str, str, str]


def _default_feature_name(feature: Feature) -> str:
    return f"{feature.sim.name}({feature.attr_a},{feature.attr_b})"


@dataclass
class SerializedFunction:
    """A matching function flattened for transport.

    ``pickled_features`` maps (sim, attr_a, attr_b) keys to pickled
    :class:`Feature` objects for the features that text cannot faithfully
    rebuild (corpus-bound measures, custom names).
    """

    dsl_text: str
    pickled_features: Dict[FeatureKey, bytes] = field(default_factory=dict)

    def materialize(self) -> MatchingFunction:
        """Rebuild the function (parser round-trip + feature overrides)."""
        overrides: Dict[FeatureKey, Feature] = {
            key: pickle.loads(blob)
            for key, blob in self.pickled_features.items()
        }
        fallback = registry_resolver()

        def resolve(sim_name: str, attr_a: str, attr_b: str) -> Feature:
            override = overrides.get((sim_name, attr_a, attr_b))
            if override is not None:
                return override
            return fallback(sim_name, attr_a, attr_b)

        return parse_function(self.dsl_text, resolve)


def serialize_function(function: MatchingFunction) -> SerializedFunction:
    """Flatten ``function`` for transport to a worker process.

    Raises :class:`~repro.errors.ParallelExecutionError` when a feature
    that *requires* object transport (corpus-bound or custom-named) is not
    picklable — the executor treats that as "this function cannot go
    parallel" and falls back to serial execution.
    """
    text = format_function(function, precise=True)
    pickled: Dict[FeatureKey, bytes] = {}
    for feature in function.features():
        needs_object = (
            getattr(feature.sim, "needs_corpus", False)
            or feature.name != _default_feature_name(feature)
        )
        if not needs_object:
            continue
        key = (feature.sim.name, feature.attr_a, feature.attr_b)
        try:
            pickled[key] = pickle.dumps(feature)
        except Exception as error:
            raise ParallelExecutionError(
                f"feature {feature.name!r} must travel by object (corpus-"
                f"bound or custom-named) but is not picklable: {error!r}"
            ) from error
    return SerializedFunction(dsl_text=text, pickled_features=pickled)


@dataclass
class ChunkTask:
    """Everything one worker needs to evaluate one chunk.

    The whole object must pickle; it contains only text, primitives, and
    pre-pickled feature blobs.
    """

    chunk_id: int
    #: global index of the chunk's first pair (for error messages only —
    #: workers operate purely in local 0-based indices).
    global_start: int
    function: SerializedFunction
    #: (a_id, b_id) of each pair, in chunk order.
    pair_ids: List[Tuple[str, str]]
    #: table name, schema, and the referenced records of side A / side B.
    table_a_name: str
    table_a_attributes: Tuple[str, ...]
    records_a: List[Tuple[str, Dict[str, object]]]
    table_b_name: str
    table_b_attributes: Tuple[str, ...]
    records_b: List[Tuple[str, Dict[str, object]]]
    #: collect rule/predicate trace facts for MatchState replay?
    collect_trace: bool = False
    #: check-cache-first evaluation (paper §5.4.3) inside the worker.
    check_cache_first: bool = False
    #: record a worker-local SpanLog for the parent to splice?
    collect_spans: bool = False
    #: profiling sample rate (0 = no profiling); the worker's profile
    #: snapshot travels back in the outcome for the parent to merge.
    profile_sample_every: int = 0
    #: build a per-shard token cache + batched kernels in the worker?
    #: Only flags travel — caches are worker-local, rebuilt from the
    #: shard's re-hydrated records (values are bit-identical either way).
    use_kernels: bool = False
    #: cheap-bound predicate short-circuiting inside the worker (requires
    #: use_kernels; changes memo contents, so tasks built for bare
    #: matchers leave it off).
    use_bounds: bool = False
    #: evaluation engine inside the worker: "scalar" (PairEvaluator),
    #: "columnar" (the repro.engine plan/executor split), or "auto" (the
    #: worker binds the plan against its own kernels and follows the cost
    #: model's decision).  Labels, stats, memo contents, and trace facts
    #: are bit-identical either way.
    engine: str = "scalar"
    #: pre-compiled plan spec (repro.engine.PlanSpec) for columnar/auto
    #: tasks — picklable annotations only; kernel support is recomputed
    #: worker-side via PlanSpec.bind.  None means the worker plans locally.
    plan_spec: Optional[object] = None
    #: parent-run identifier: chunks of the same run share one worker-side
    #: bound plan (and its kernels) per process, and a fresh token fences
    #: off reuse across runs whose records may have changed.
    run_token: int = 0
    #: fault injection (tests only): number of times this chunk should
    #: still fail, and how ("raise" = exception, "exit" = kill the worker).
    fault_failures: int = 0
    fault_kind: str = "raise"

    def __len__(self) -> int:
        return len(self.pair_ids)


def build_chunk_task(
    chunk: Chunk,
    candidates: CandidateSet,
    function: SerializedFunction,
    collect_trace: bool = False,
    check_cache_first: bool = False,
    collect_spans: bool = False,
    profile_sample_every: int = 0,
    use_kernels: bool = False,
    use_bounds: bool = False,
    engine: str = "scalar",
    plan_spec: Optional[object] = None,
    run_token: int = 0,
) -> ChunkTask:
    """Slice ``candidates`` down to ``chunk`` and pack a worker task."""
    pair_ids: List[Tuple[str, str]] = []
    seen_a: Dict[str, Dict[str, object]] = {}
    seen_b: Dict[str, Dict[str, object]] = {}
    for index in chunk.indices():
        pair = candidates[index]
        pair_ids.append(pair.pair_id)
        if pair.record_a.record_id not in seen_a:
            seen_a[pair.record_a.record_id] = pair.record_a.as_dict()
        if pair.record_b.record_id not in seen_b:
            seen_b[pair.record_b.record_id] = pair.record_b.as_dict()
    return ChunkTask(
        chunk_id=chunk.chunk_id,
        global_start=chunk.start,
        function=function,
        pair_ids=pair_ids,
        table_a_name=candidates.table_a.name,
        table_a_attributes=candidates.table_a.attributes,
        records_a=list(seen_a.items()),
        table_b_name=candidates.table_b.name,
        table_b_attributes=candidates.table_b.attributes,
        records_b=list(seen_b.items()),
        collect_trace=collect_trace,
        check_cache_first=check_cache_first,
        collect_spans=collect_spans,
        profile_sample_every=profile_sample_every,
        use_kernels=use_kernels,
        use_bounds=use_bounds,
        engine=engine,
        plan_spec=plan_spec,
        run_token=run_token,
    )
