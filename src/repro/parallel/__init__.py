"""Parallel matching engine: sharded DM+EE execution with memo merge.

The debugging loop's matchers (see :mod:`repro.core.matchers`) evaluate
candidate pairs independently — the feature memo is keyed per pair — so a
matching run shards perfectly across processes.  This package executes
any matching function over a :class:`~repro.data.pairs.CandidateSet` on a
``ProcessPoolExecutor`` while keeping every observable output (labels,
memo contents, trace facts, summed stats counters) **bit-identical** to a
serial :class:`~repro.core.matchers.DynamicMemoMatcher` run:

* :mod:`~repro.parallel.partitioner` — cost-model-aware contiguous chunks
* :mod:`~repro.parallel.payload` — picklable tasks (table slices plus the
  function serialized via the parser round-trip)
* :mod:`~repro.parallel.worker` — the pure per-chunk evaluation function
* :mod:`~repro.parallel.executor` — pool driving, retry, timeout, and
  serial fallback
* :mod:`~repro.parallel.stitcher` — deterministic reassembly and memo /
  trace merge-back

Entry points: :class:`ParallelMatcher` directly, or
``DebugSession.run(workers=N)`` / the workbench ``run --workers N``.
"""

from .executor import FaultPlan, ParallelMatcher
from .partitioner import (
    DEFAULT_MIN_CHUNK_SIZE,
    DEFAULT_TARGET_CHUNK_SECONDS,
    Chunk,
    PartitionPlan,
    plan_partition,
)
from .payload import (
    ChunkTask,
    SerializedFunction,
    build_chunk_task,
    serialize_function,
)
from .stitcher import stitch_outcomes, timings_from_outcomes
from .worker import ChunkOutcome, InjectedWorkerFault, run_chunk

__all__ = [
    "ParallelMatcher",
    "FaultPlan",
    "Chunk",
    "PartitionPlan",
    "plan_partition",
    "DEFAULT_TARGET_CHUNK_SECONDS",
    "DEFAULT_MIN_CHUNK_SIZE",
    "SerializedFunction",
    "serialize_function",
    "ChunkTask",
    "build_chunk_task",
    "ChunkOutcome",
    "InjectedWorkerFault",
    "run_chunk",
    "stitch_outcomes",
    "timings_from_outcomes",
]
