"""ParallelMatcher: sharded DM+EE execution over a process pool.

The executor orchestrates the other modules: **plan** (partitioner) →
**pack** (payload) → **dispatch** (ProcessPoolExecutor running
:func:`~repro.parallel.worker.run_chunk`) → **stitch** (labels, stats,
memo, trace).  Because the worker function is pure, every recovery path
is just "call it again somewhere else":

1. A chunk that raises is retried once in the pool.
2. A chunk that fails twice (or times out twice) runs serially in the
   parent process.
3. A broken pool (worker killed mid-run) or a pool that cannot start at
   all downgrades every unfinished chunk to the in-parent serial path.
4. ``workers <= 1``, a single-chunk plan, or a function that cannot be
   serialized skips the pool entirely and runs the plain serial matcher.

Whichever path executes, labels/memo/trace are bit-identical — the
fallbacks trade speed, never correctness.
"""

from __future__ import annotations

import dataclasses
import itertools
import os
import time
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor, TimeoutError
from typing import Dict, List, Optional, Tuple

from ..core.cost_model import Estimates
from ..core.matchers import DynamicMemoMatcher, MatchResult, TraceRecorder
from ..core.memo import ArrayMemo, FeatureMemo, HashMemo
from ..core.rules import MatchingFunction
from ..data.pairs import CandidateSet
from ..errors import ParallelExecutionError
from ..observability import maybe_span
from .partitioner import (
    DEFAULT_MIN_CHUNK_SIZE,
    DEFAULT_TARGET_CHUNK_SECONDS,
    PartitionPlan,
    plan_partition,
)
from .payload import ChunkTask, build_chunk_task, serialize_function
from .stitcher import stitch_outcomes, timings_from_outcomes
from .worker import ChunkOutcome, run_chunk

#: fault_plan maps chunk_id -> (failures, kind); see worker.run_chunk.
FaultPlan = Dict[int, Tuple[int, str]]


def _default_workers() -> int:
    return os.cpu_count() or 1


#: Monotonic run stamp carried by every ChunkTask of one run.  Workers key
#: their bound-plan cache on it, so an in-parent fallback chunk of run N
#: can never reuse a plan (or kernels) bound for run N-1 — records may
#: have changed in between.
_RUN_TOKENS = itertools.count(1)


class ParallelMatcher:
    """Run a matching function over a candidate set across worker processes.

    Drop-in alongside the serial matchers: ``run(function, candidates)``
    returns a :class:`~repro.core.matchers.MatchResult` whose labels are
    bit-identical to :class:`~repro.core.matchers.DynamicMemoMatcher`.

    ``memo`` and ``recorder`` mirror the serial matcher's parameters: the
    memo receives every worker-computed feature value (merged back by
    global pair index), the recorder receives every replayed trace fact.
    ``estimates`` (from :class:`~repro.core.cost_model.CostEstimator`)
    makes chunk sizing cost-model-aware.

    Diagnostics after a run: :attr:`last_plan`, :attr:`last_memo`, and
    :attr:`fallback_reason` (None when the pool path completed cleanly).
    """

    strategy_name = "parallel_dynamic_memo"

    def __init__(
        self,
        workers: Optional[int] = None,
        memo: Optional[FeatureMemo] = None,
        memo_backend: str = "array",
        check_cache_first: bool = False,
        recorder: Optional[TraceRecorder] = None,
        estimates: Optional[Estimates] = None,
        chunk_timeout: Optional[float] = None,
        target_chunk_seconds: float = DEFAULT_TARGET_CHUNK_SECONDS,
        min_chunk_size: int = DEFAULT_MIN_CHUNK_SIZE,
        chunks_per_worker: int = 4,
        check_memo_conflicts: bool = False,
        fault_plan: Optional[FaultPlan] = None,
        observability=None,
        kernels=None,
        engine: str = "scalar",
    ):
        self.workers = workers if workers is not None else _default_workers()
        if self.workers < 1:
            raise ParallelExecutionError(
                f"workers must be >= 1, got {self.workers}"
            )
        self.memo = memo
        self.memo_backend = memo_backend
        self.check_cache_first = check_cache_first
        self.recorder = recorder
        self.estimates = estimates
        self.chunk_timeout = chunk_timeout
        self.target_chunk_seconds = target_chunk_seconds
        self.min_chunk_size = min_chunk_size
        self.chunks_per_worker = chunks_per_worker
        self.check_memo_conflicts = check_memo_conflicts
        self.fault_plan = dict(fault_plan or {})
        #: repro.observability.Observability: spans for every phase, worker
        #: span logs spliced back, worker profiles merged.  None = seed paths.
        self.observability = observability
        #: repro.kernels.FeatureKernels: token caches + batched kernels.
        #: Workers cannot share the parent's cache (records are re-hydrated
        #: per shard), so tasks carry only the *flags*; each worker builds a
        #: fresh per-shard kernel set.  The parent's instance serves the
        #: serial and in-parent fallback paths.  None = seed-exact paths.
        self.kernels = kernels
        #: "scalar", "columnar", or "auto": the evaluation engine inside
        #: each worker (and in every serial/in-parent fallback).  "auto"
        #: ships unresolved — each worker binds the plan against its own
        #: kernels and follows the cost model's decision; the serial
        #: fallback resolves against the parent's.  Chunk outcomes are
        #: bit-identical either way; columnar chunks additionally ship
        #: engine counters back for the parent's metrics.
        if engine not in ("scalar", "columnar", "auto"):
            raise ParallelExecutionError(
                f"engine must be 'scalar', 'columnar', or 'auto', got {engine!r}"
            )
        self.engine = engine
        self.last_plan: Optional[PartitionPlan] = None
        self.last_memo: Optional[FeatureMemo] = memo
        self.fallback_reason: Optional[str] = None
        self._pool_broken = False

    # ------------------------------------------------------------------ run

    def run(
        self, function: MatchingFunction, candidates: CandidateSet
    ) -> MatchResult:
        self.fallback_reason = None
        self.last_plan = None
        observability = self.observability
        started = time.perf_counter()

        with maybe_span(
            observability,
            "parallel_run",
            workers=self.workers,
            pairs=len(candidates),
        ):
            partition_started = time.perf_counter()
            with maybe_span(observability, "partition"):
                plan = plan_partition(
                    len(candidates),
                    self.workers,
                    function=function,
                    estimates=self.estimates,
                    target_chunk_seconds=self.target_chunk_seconds,
                    chunks_per_worker=self.chunks_per_worker,
                    min_chunk_size=self.min_chunk_size,
                )
            partition_seconds = time.perf_counter() - partition_started
            self.last_plan = plan

            # Mirror DynamicMemoMatcher: without a supplied memo a fresh one
            # is created per run and exposed afterwards as last_memo.
            memo = self.memo
            if memo is None:
                names = [feature.name for feature in function.features()]
                if self.memo_backend == "array":
                    memo = ArrayMemo(len(candidates), names)
                else:
                    memo = HashMemo(len(candidates), names)
            self.last_memo = memo

            if self.workers <= 1 or len(plan) <= 1:
                return self._run_serial(
                    function,
                    candidates,
                    memo,
                    "workers<=1 or single chunk",
                    started=started,
                    partition_seconds=partition_seconds,
                )

            collect_spans = (
                observability is not None and observability.tracer.enabled
            )
            profile_sample_every = (
                observability.profiler.sample_every
                if observability is not None and observability.profiler is not None
                else 0
            )
            plan_spec = None
            if self.engine != "scalar":
                # Compile once in the parent; workers re-bind the picklable
                # spec to their re-materialized function + fresh kernels
                # (and, for "auto", resolve the engine decision there).
                from ..engine import plan_function

                plan_spec = plan_function(
                    function,
                    kernels=self.kernels,
                    estimates=self.estimates,
                    check_cache_first=self.check_cache_first,
                ).spec()
            run_token = next(_RUN_TOKENS)
            serialize_started = time.perf_counter()
            with maybe_span(observability, "serialize"):
                try:
                    serialized = serialize_function(function)
                except ParallelExecutionError as error:
                    serialized = None
                    serialize_error = error
                if serialized is not None:
                    tasks = [
                        self._attach_fault(
                            build_chunk_task(
                                chunk,
                                candidates,
                                serialized,
                                collect_trace=self.recorder is not None,
                                check_cache_first=self.check_cache_first,
                                collect_spans=collect_spans,
                                profile_sample_every=profile_sample_every,
                                use_kernels=self.kernels is not None,
                                use_bounds=(
                                    self.kernels is not None
                                    and self.kernels.use_bounds
                                ),
                                engine=self.engine,
                                plan_spec=plan_spec,
                                run_token=run_token,
                            )
                        )
                        for chunk in plan.chunks
                    ]
            if serialized is None:
                return self._run_serial(
                    function,
                    candidates,
                    memo,
                    f"function not serializable: {serialize_error}",
                    started=started,
                    partition_seconds=partition_seconds,
                )
            serialize_seconds = time.perf_counter() - serialize_started

            execute_started = time.perf_counter()
            with maybe_span(
                observability, "execute", chunks=len(tasks)
            ) as execute_span:
                try:
                    outcomes, attempts, fallbacks = self._execute(tasks)
                except ParallelExecutionError as error:
                    outcomes = None
                    execute_error = error
            if outcomes is None:
                return self._run_serial(
                    function,
                    candidates,
                    memo,
                    f"pool execution failed: {execute_error}",
                    started=started,
                    partition_seconds=partition_seconds,
                )
            execute_seconds = time.perf_counter() - execute_started

            # Splice worker-recorded spans under the execute span and fold
            # worker profiles into the session profiler — the parallel
            # analogue of the memo/trace merge the stitcher does below.
            if observability is not None:
                for outcome in outcomes:
                    if outcome.spans is not None and observability.tracer.enabled:
                        observability.tracer.log.splice(
                            outcome.spans,
                            parent_id=(
                                execute_span.span_id
                                if execute_span is not None
                                else None
                            ),
                            time_offset=(
                                execute_span.start
                                if execute_span is not None
                                else 0.0
                            ),
                        )
                    if outcome.profile is not None and observability.profiler is not None:
                        observability.profiler.merge(outcome.profile)
                mask_evals = sum(outcome.mask_evals for outcome in outcomes)
                scalar_fallbacks = sum(
                    outcome.scalar_fallbacks for outcome in outcomes
                )
                if mask_evals or scalar_fallbacks:
                    observability.metrics.counter("engine.mask_evals").inc(
                        mask_evals
                    )
                    observability.metrics.counter(
                        "engine.scalar_fallbacks"
                    ).inc(scalar_fallbacks)
                plan_binds = sum(outcome.plan_binds for outcome in outcomes)
                plan_cache_hits = sum(
                    outcome.plan_cache_hits for outcome in outcomes
                )
                if plan_binds or plan_cache_hits:
                    observability.metrics.counter("engine.plan_binds").inc(
                        plan_binds
                    )
                    observability.metrics.counter(
                        "engine.plan_cache_hits"
                    ).inc(plan_cache_hits)

            stitch_started = time.perf_counter()
            with maybe_span(observability, "stitch"):
                result = stitch_outcomes(
                    plan,
                    outcomes,
                    candidates,
                    memo=memo,
                    recorder=self.recorder,
                    check_memo_conflicts=self.check_memo_conflicts,
                )
            result.stats.worker_timings = timings_from_outcomes(
                outcomes, attempts=attempts, fallbacks=fallbacks
            )
            result.stats.phase_seconds.update(
                partition=partition_seconds,
                serialize=serialize_seconds,
                execute=execute_seconds,
                stitch=time.perf_counter() - stitch_started,
            )
            result.stats.elapsed_seconds = time.perf_counter() - started
            return result

    # --------------------------------------------------------- pool driving

    def _execute(
        self, tasks: List[ChunkTask]
    ) -> Tuple[List[ChunkOutcome], Dict[int, int], set]:
        """Run every task, preferring the pool but never giving up on a chunk.

        Returns (outcomes, attempts per chunk_id, chunk_ids that ran in the
        parent).  Raises :class:`ParallelExecutionError` only when even the
        in-parent execution of some chunk fails — the caller then retries
        the whole run through the plain serial matcher.
        """
        attempts: Dict[int, int] = {task.chunk_id: 0 for task in tasks}
        fallbacks: set = set()
        outcomes: List[ChunkOutcome] = []
        self._pool_broken = False

        pool: Optional[ProcessPoolExecutor] = None
        futures: Dict[int, Future] = {}
        try:
            try:
                pool = ProcessPoolExecutor(max_workers=self.workers)
                for task in tasks:
                    attempts[task.chunk_id] += 1
                    futures[task.chunk_id] = pool.submit(run_chunk, task)
            except Exception as error:  # pool refused to start
                self._note_fallback(f"pool start failed: {error!r}")
                pool = None

            for task in tasks:
                chunk_id = task.chunk_id
                outcome: Optional[ChunkOutcome] = None
                if pool is not None and chunk_id in futures:
                    outcome = self._collect(pool, futures, task, attempts)
                    if outcome is None and self._pool_broken:
                        pool = None  # downgrade every later chunk too
                if outcome is None:
                    outcome = self._run_in_parent(task, attempts)
                    fallbacks.add(chunk_id)
                outcomes.append(outcome)
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
        return outcomes, attempts, fallbacks

    def _collect(
        self,
        pool: ProcessPoolExecutor,
        futures: Dict[int, Future],
        task: ChunkTask,
        attempts: Dict[int, int],
    ) -> Optional[ChunkOutcome]:
        """Await one chunk's future, retrying once in the pool on failure.

        Returns None when the chunk must fall back to the parent (two
        failures, two timeouts, or a broken pool).
        """
        future = futures[task.chunk_id]
        for retry in (True, False):
            try:
                return future.result(timeout=self.chunk_timeout)
            except BrokenExecutor as error:
                self._pool_broken = True
                self._note_fallback(f"pool broke: {error!r}")
                return None
            except TimeoutError:
                future.cancel()
                if not retry:
                    self._note_fallback(
                        f"chunk {task.chunk_id} timed out twice "
                        f"({self.chunk_timeout}s each)"
                    )
                    return None
                reason = f"chunk {task.chunk_id} timed out"
            except Exception as error:
                if not retry:
                    self._note_fallback(
                        f"chunk {task.chunk_id} failed twice, last: {error!r}"
                    )
                    return None
                reason = f"chunk {task.chunk_id} raised {error!r}"
            # One in-pool retry, with the fault counter burned down.
            self._note_retry(reason)
            attempts[task.chunk_id] += 1
            try:
                future = pool.submit(run_chunk, self._burn_fault(task))
            except Exception as error:
                self._pool_broken = True
                self._note_fallback(f"pool broke on resubmit: {error!r}")
                return None
        return None  # unreachable; loop always returns

    def _run_in_parent(
        self, task: ChunkTask, attempts: Dict[int, int]
    ) -> ChunkOutcome:
        """Serial fallback: run the chunk in this process, faults disarmed."""
        attempts[task.chunk_id] += 1
        safe = dataclasses.replace(task, fault_failures=0)
        try:
            return run_chunk(safe)
        except Exception as error:
            raise ParallelExecutionError(
                f"chunk {task.chunk_id} failed even in the parent process"
            ) from error

    # ------------------------------------------------------------- fallback

    def _run_serial(
        self,
        function: MatchingFunction,
        candidates: CandidateSet,
        memo: FeatureMemo,
        reason: str,
        started: Optional[float] = None,
        partition_seconds: Optional[float] = None,
    ) -> MatchResult:
        """Whole-run serial fallback through the plain DM+EE matcher.

        ``started``/``partition_seconds`` come from the enclosing
        :meth:`run`; stamping them here keeps the fallback's
        ``elapsed_seconds`` measured from the *parallel run's* start (not
        from matcher start) and preserves the partition phase in
        ``phase_seconds``, so serial-fallback stats stay comparable to the
        pool path's.
        """
        self._note_fallback(reason)
        observability = self.observability
        engine = self.engine
        if engine == "auto":
            # Resolve against the parent's own kernels — this path runs in
            # the parent process, so the workers' decisions don't apply.
            if self.kernels is None:
                engine = "scalar"
            else:
                from ..engine import plan_function

                engine = plan_function(
                    function,
                    kernels=self.kernels,
                    estimates=self.estimates,
                    check_cache_first=self.check_cache_first,
                ).decision.engine
        if engine == "columnar":
            from ..engine import ColumnarMatcher

            matcher = ColumnarMatcher(
                memo=memo,
                memo_backend=self.memo_backend,
                check_cache_first=self.check_cache_first,
                recorder=self.recorder,
                profiler=(
                    observability.profiler
                    if observability is not None
                    else None
                ),
                kernels=self.kernels,
            )
        else:
            matcher = DynamicMemoMatcher(
                memo=memo,
                memo_backend=self.memo_backend,
                check_cache_first=self.check_cache_first,
                recorder=self.recorder,
                profiler=(
                    observability.profiler
                    if observability is not None
                    else None
                ),
                kernels=self.kernels,
            )
        with maybe_span(observability, "serial_fallback", reason=reason):
            result = matcher.run(function, candidates)
        if engine == "columnar" and observability is not None:
            matcher.last_executor.report_metrics(observability.metrics)
        self.last_memo = matcher.last_memo
        match_seconds = result.stats.elapsed_seconds
        if partition_seconds is not None:
            result.stats.phase_seconds["partition"] = partition_seconds
        result.stats.phase_seconds["match"] = match_seconds
        if started is not None:
            result.stats.elapsed_seconds = time.perf_counter() - started
        return result

    # ------------------------------------------------------------- plumbing

    def _attach_fault(self, task: ChunkTask) -> ChunkTask:
        fault = self.fault_plan.get(task.chunk_id)
        if fault is None:
            return task
        failures, kind = fault
        return dataclasses.replace(
            task, fault_failures=failures, fault_kind=kind
        )

    def _burn_fault(self, task: ChunkTask) -> ChunkTask:
        fault = self.fault_plan.get(task.chunk_id)
        if fault is None:
            return task
        failures, kind = fault
        remaining = max(failures - 1, 0)
        self.fault_plan[task.chunk_id] = (remaining, kind)
        return dataclasses.replace(
            task, fault_failures=remaining, fault_kind=kind
        )

    def _note_fallback(self, reason: str) -> None:
        # A genuine fallback outranks a recovered-retry note.
        if self.fallback_reason is None or self.fallback_reason.startswith("retried:"):
            self.fallback_reason = reason

    def _note_retry(self, reason: str) -> None:
        # Retries are recoverable; only remember them if nothing worse came.
        if self.fallback_reason is None:
            self.fallback_reason = f"retried: {reason}"
