"""Reassemble chunk outcomes into one deterministic MatchResult.

The stitcher is where "parallel is bit-identical to serial" is enforced:

* **Labels** are written back by each chunk's global offset — pure
  concatenation, since chunks tile the candidate set in order.
* **Memo contents** merge into the destination memo through
  :meth:`FeatureMemo.update_from` with the chunk's local→global offset;
  values are deterministic per pair, so merge order cannot matter
  (last-write-wins over identical values).
* **Trace facts** replay into the session recorder in chunk order, giving
  the same bitmaps and attribution a serial recorded run would build.
* **Stats** combine via :meth:`MatchStats.merge` — counters sum across
  chunks (identical to the serial totals), wall-clock takes the max of
  any chunk (the parallel critical path).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from ..core.matchers import MatchResult, TraceRecorder
from ..core.memo import FeatureMemo
from ..core.stats import MatchStats, WorkerTiming
from ..data.pairs import CandidateSet
from ..errors import ParallelExecutionError
from .partitioner import PartitionPlan
from .worker import ChunkOutcome


def stitch_outcomes(
    plan: PartitionPlan,
    outcomes: List[ChunkOutcome],
    candidates: CandidateSet,
    memo: Optional[FeatureMemo] = None,
    recorder: Optional[TraceRecorder] = None,
    check_memo_conflicts: bool = False,
) -> MatchResult:
    """Combine per-chunk outcomes into one result over ``candidates``.

    ``memo`` (usually the session's persistent memo) receives every
    worker-computed feature value; ``recorder`` (usually the session's
    :class:`~repro.core.state.MatchState`) receives every replayed trace
    fact.  Both are optional — a bare parallel run needs neither.
    """
    if len(outcomes) != len(plan.chunks):
        raise ParallelExecutionError(
            f"expected {len(plan.chunks)} chunk outcomes, got {len(outcomes)}"
        )
    by_id = {outcome.chunk_id: outcome for outcome in outcomes}
    if len(by_id) != len(outcomes):
        raise ParallelExecutionError("duplicate chunk ids in outcomes")

    labels = np.zeros(plan.n_pairs, dtype=bool)
    stats = MatchStats()
    for chunk in plan.chunks:
        outcome = by_id.get(chunk.chunk_id)
        if outcome is None:
            raise ParallelExecutionError(f"missing outcome for chunk {chunk.chunk_id}")
        if len(outcome.labels) != len(chunk):
            raise ParallelExecutionError(
                f"chunk {chunk.chunk_id} returned {len(outcome.labels)} labels "
                f"for {len(chunk)} pairs"
            )
        labels[chunk.start : chunk.stop] = outcome.labels
        stats = stats.merge(outcome.stats)
        if memo is not None:
            offset = chunk.start
            for local_index, feature_name, value in outcome.memo_entries:
                if check_memo_conflicts:
                    existing = memo.get(local_index + offset, feature_name)
                    if existing is not None and existing != value:
                        raise ParallelExecutionError(
                            f"memo conflict on pair {local_index + offset}, "
                            f"feature {feature_name!r}: {existing!r} != {value!r}"
                        )
                memo.put(local_index + offset, feature_name, value)
        if recorder is not None and outcome.trace is not None:
            outcome.trace.replay_into(recorder, index_offset=chunk.start)

    stats.pairs_evaluated = plan.n_pairs
    stats.pairs_matched = int(labels.sum())
    return MatchResult(candidates, labels, stats)


def timings_from_outcomes(
    outcomes: Iterable[ChunkOutcome],
    attempts: Optional[dict] = None,
    fallbacks: Optional[set] = None,
) -> List[WorkerTiming]:
    """Build the structured per-worker timing records for MatchStats."""
    attempts = attempts or {}
    fallbacks = fallbacks or set()
    return sorted(
        (
            WorkerTiming(
                chunk_id=outcome.chunk_id,
                worker_pid=outcome.worker_pid,
                pairs=len(outcome.labels),
                elapsed_seconds=outcome.elapsed_seconds,
                attempts=attempts.get(outcome.chunk_id, 1),
                fallback=outcome.chunk_id in fallbacks,
            )
            for outcome in outcomes
        ),
        key=lambda timing: timing.chunk_id,
    )
