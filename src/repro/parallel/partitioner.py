"""Shard a candidate set into balanced, contiguous chunks.

Pair-level EM work decomposes perfectly: the memo is keyed per pair, so no
candidate pair's evaluation reads another pair's state (Rastogi et al.'s
observation for collective EM holds trivially for DNF rule matching).
Chunks are **contiguous index ranges** — that keeps task payloads small
(two ints plus the records the range touches), makes the stitcher a pure
concatenation, and preserves the candidate order every downstream index
relies on.

Chunk *sizing* is cost-model-aware: given :class:`~repro.core.cost_model.
Estimates` from the session's sample, the partitioner sizes chunks to a
target wall-clock budget (``target_chunk_seconds``) using the C4 per-pair
expected cost.  Small chunks bound the cost of a retry (the robustness
unit is the chunk) and smooth load imbalance from selectivity skew; large
chunks amortize task overhead.  Without estimates it falls back to an even
split into ``chunks_per_worker`` chunks per worker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.cost_model import Estimates, per_pair_cost
from ..core.rules import MatchingFunction
from ..errors import ParallelExecutionError

#: Default wall-clock budget one chunk should cost (seconds).  A failed
#: chunk is re-run from scratch, so this is also the retry granularity.
DEFAULT_TARGET_CHUNK_SECONDS = 0.25

#: Never produce chunks smaller than this unless the candidate set itself
#: is smaller — per-task overhead (fork/pickle/dispatch) dominates below it.
DEFAULT_MIN_CHUNK_SIZE = 64


@dataclass(frozen=True)
class Chunk:
    """One contiguous shard ``[start, stop)`` of the candidate set."""

    chunk_id: int
    start: int
    stop: int

    def __len__(self) -> int:
        return self.stop - self.start

    def indices(self) -> range:
        return range(self.start, self.stop)


@dataclass
class PartitionPlan:
    """The full sharding of one run: ordered, non-overlapping, exhaustive."""

    n_pairs: int
    chunks: List[Chunk]
    #: model-estimated seconds per pair used for sizing (None = even split)
    estimated_pair_seconds: Optional[float] = None

    def __len__(self) -> int:
        return len(self.chunks)

    def validate(self) -> None:
        """Assert the plan tiles ``[0, n_pairs)`` exactly (defense against
        partitioner bugs silently dropping or double-evaluating pairs)."""
        position = 0
        for chunk in self.chunks:
            if chunk.start != position or chunk.stop <= chunk.start:
                raise ParallelExecutionError(
                    f"partition plan is not a tiling: chunk {chunk.chunk_id} "
                    f"covers [{chunk.start}, {chunk.stop}) but expected start "
                    f"{position}"
                )
            position = chunk.stop
        if position != self.n_pairs:
            raise ParallelExecutionError(
                f"partition plan covers {position} of {self.n_pairs} pairs"
            )

    def __repr__(self) -> str:
        sizes = [len(chunk) for chunk in self.chunks]
        return (
            f"PartitionPlan({self.n_pairs} pairs in {len(self.chunks)} chunks, "
            f"sizes {min(sizes)}..{max(sizes)})" if sizes else "PartitionPlan(empty)"
        )


def plan_partition(
    n_pairs: int,
    workers: int,
    function: Optional[MatchingFunction] = None,
    estimates: Optional[Estimates] = None,
    target_chunk_seconds: float = DEFAULT_TARGET_CHUNK_SECONDS,
    chunks_per_worker: int = 4,
    min_chunk_size: int = DEFAULT_MIN_CHUNK_SIZE,
) -> PartitionPlan:
    """Compute the chunking of ``n_pairs`` candidate pairs for ``workers``.

    With ``function`` + ``estimates``, the chunk size targets
    ``target_chunk_seconds`` of expected C4 (DM+EE) work per chunk; the
    result is then clamped so there are at least ``workers`` chunks (no
    idle workers) and at most ``chunks_per_worker * workers`` (bounded
    dispatch overhead), and never below ``min_chunk_size`` pairs.
    """
    if n_pairs < 0:
        raise ParallelExecutionError(f"n_pairs must be >= 0, got {n_pairs}")
    if workers < 1:
        raise ParallelExecutionError(f"workers must be >= 1, got {workers}")
    if n_pairs == 0:
        return PartitionPlan(0, [])

    pair_seconds: Optional[float] = None
    if function is not None and estimates is not None:
        pair_seconds = per_pair_cost(function, estimates, "dynamic_memo")

    if pair_seconds and pair_seconds > 0.0:
        size = int(target_chunk_seconds / pair_seconds)
    else:
        size = -(-n_pairs // (workers * chunks_per_worker))  # ceil division

    # Clamp, in priority order: bound total chunk count (dispatch
    # overhead), then try to feed every worker, then — overriding both —
    # never go below min_chunk_size (per-task overhead dominates there).
    max_chunks = max(workers * chunks_per_worker, workers)
    size = max(size, -(-n_pairs // max_chunks))
    size = min(size, max(-(-n_pairs // workers), 1))
    size = max(size, min_chunk_size)

    chunks: List[Chunk] = []
    start = 0
    while start < n_pairs:
        stop = min(start + size, n_pairs)
        # Avoid a trailing sliver smaller than half a chunk: glue it onto
        # the previous chunk instead (better balance than a tiny tail).
        if n_pairs - stop < max(size // 2, 1) and stop < n_pairs:
            stop = n_pairs
        chunks.append(Chunk(len(chunks), start, stop))
        start = stop
    plan = PartitionPlan(n_pairs, chunks, estimated_pair_seconds=pair_seconds)
    plan.validate()
    return plan
