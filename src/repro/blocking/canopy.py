"""Canopy clustering blocker (McCallum, Nigam & Ungar 2000).

A cheap similarity (token-overlap fraction against a canopy center) sweeps
records into overlapping *canopies*; candidate pairs are cross-table pairs
sharing a canopy.  Two thresholds control the geometry:

* ``loose`` — minimum cheap-similarity to join a canopy (membership);
* ``tight`` — members above this are *removed* from the seed pool, so
  canopy centers spread out instead of piling onto dense regions.

Compared with plain token-overlap blocking, canopies bound the candidate
count in dense vocabulary regions (every member pairs only within its
canopies, not with every record sharing one common token), at the price
of two tuning knobs.  Deterministic: seeds are drawn in table order.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from ..data.table import Table
from ..errors import BlockingError
from ..similarity.tokenizers import Tokenizer, WhitespaceTokenizer
from .base import Blocker


def _overlap_fraction(tokens_a: frozenset, tokens_b: frozenset) -> float:
    if not tokens_a or not tokens_b:
        return 0.0
    return len(tokens_a & tokens_b) / min(len(tokens_a), len(tokens_b))


class CanopyBlocker(Blocker):
    """Candidates share a canopy under a cheap token-overlap measure."""

    name = "canopy"

    def __init__(
        self,
        attribute: str,
        loose: float = 0.3,
        tight: float = 0.8,
        tokenizer: Tokenizer | None = None,
    ):
        if not 0.0 < loose <= tight <= 1.0:
            raise BlockingError(
                f"need 0 < loose <= tight <= 1, got loose={loose}, tight={tight}"
            )
        self.attribute = attribute
        self.loose = loose
        self.tight = tight
        self.tokenizer = tokenizer or WhitespaceTokenizer()

    def _pair_ids(self, table_a: Table, table_b: Table) -> Iterable[Tuple[str, str]]:
        for table in (table_a, table_b):
            if self.attribute not in table.attributes:
                raise BlockingError(
                    f"blocking attribute {self.attribute!r} not in table "
                    f"{table.name!r} (schema: {list(table.attributes)})"
                )
        # Pool all records; side 0 = A, side 1 = B.
        pool: List[Tuple[int, str, frozenset]] = []
        for record in table_a:
            pool.append(
                (0, record.record_id, self.tokenizer.tokenize_set(record.get(self.attribute)))
            )
        for record in table_b:
            pool.append(
                (1, record.record_id, self.tokenizer.tokenize_set(record.get(self.attribute)))
            )

        unseeded = list(range(len(pool)))
        pairs_by_a: Dict[str, Set[str]] = {}
        position = 0
        while position < len(unseeded):
            seed_index = unseeded[position]
            position += 1
            if seed_index is None:
                continue
            _side, _seed_id, seed_tokens = pool[seed_index]
            members_a: List[str] = []
            members_b: List[str] = []
            for slot, candidate_index in enumerate(unseeded):
                if candidate_index is None:
                    continue
                side, record_id, tokens = pool[candidate_index]
                similarity = _overlap_fraction(seed_tokens, tokens)
                if similarity >= self.loose or candidate_index == seed_index:
                    (members_a if side == 0 else members_b).append(record_id)
                    if similarity >= self.tight and candidate_index != seed_index:
                        unseeded[slot] = None  # removed from future seeding
            for a_id in members_a:
                pairs_by_a.setdefault(a_id, set()).update(members_b)
        yield from self._ordered(table_a, pairs_by_a)
