"""Rule-based blocking and blocker combinators.

``RuleBasedBlocker`` filters an upstream blocker's candidates through an
arbitrary pair predicate — e.g. "titles share a token AND prices within
50 %".  The combinators union/intersect candidate sets from independent
blockers, which is how practitioners trade recall against candidate-set
size (union of a loose name blocker and a phone blocker loses far fewer
true matches than either alone).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Sequence, Set, Tuple

from ..data.pairs import PairId
from ..data.table import Record, Table
from ..errors import BlockingError
from .base import Blocker
from .cartesian import CartesianBlocker

PairPredicate = Callable[[Record, Record], bool]


class RuleBasedBlocker(Blocker):
    """Keep an upstream blocker's pairs that satisfy ``predicate``.

    Deltas delegate to the base blocker's ``pairs_for_delta`` and filter
    its gains through the predicate.  An *update* additionally re-tests
    base pairs that persist but involve the changed record — the records
    fed to the predicate changed even though base membership did not.
    """

    name = "rule_based"

    def __init__(self, predicate: PairPredicate, base: Blocker | None = None):
        self.predicate = predicate
        self.base = base or CartesianBlocker()
        self.delta_strategy = self.base.delta_strategy

    def _pair_ids(self, table_a: Table, table_b: Table) -> Iterable[Tuple[str, str]]:
        base_pairs = list(self.base._pair_ids(table_a, table_b))
        # Keep the base delta-ready so _delta_pairs can delegate to it.
        self.base._snapshot(base_pairs)
        for a_id, b_id in base_pairs:
            if self.predicate(table_a.get(a_id), table_b.get(b_id)):
                yield a_id, b_id

    def _save_index_extra(self) -> object:
        # The base blocker's snapshot (and any index of its own) advances
        # with every delegated delta, so it is part of our rollback state.
        return self.base.save_delta_index()

    def _restore_index_extra(self, extra: object) -> None:
        self.base.restore_delta_index(extra)

    def _delta_pairs(
        self, table_a: Table, table_b: Table, delta
    ) -> Tuple[Set[PairId], Set[PairId]]:
        base_delta = self.base.pairs_for_delta(table_a, table_b, delta)
        ours = self.current_pairs()
        gained = {
            (a_id, b_id)
            for a_id, b_id in base_delta.gained
            if self.predicate(table_a.get(a_id), table_b.get(b_id))
        }
        lost = set(base_delta.lost) & ours
        if delta.op == "update":
            # Base pairs that survived the update but involve the changed
            # record: their predicate inputs changed, so membership may flip.
            persisting = self.base._incident_pairs(delta.side, delta.record_id)
            persisting -= set(base_delta.gained)
            for a_id, b_id in persisting:
                holds = self.predicate(table_a.get(a_id), table_b.get(b_id))
                was_ours = (a_id, b_id) in ours
                if holds and not was_ours:
                    gained.add((a_id, b_id))
                elif not holds and was_ours:
                    lost.add((a_id, b_id))
        return gained, lost


class UnionBlocker(Blocker):
    """Union of several blockers' candidates (first-seen order, deduped)."""

    name = "union"

    def __init__(self, blockers: Sequence[Blocker]):
        if not blockers:
            raise BlockingError("UnionBlocker needs at least one blocker")
        self.blockers = list(blockers)

    def _pair_ids(self, table_a: Table, table_b: Table) -> Iterable[Tuple[str, str]]:
        seen = set()
        for blocker in self.blockers:
            for pair_id in blocker._pair_ids(table_a, table_b):
                if pair_id not in seen:
                    seen.add(pair_id)
                    yield pair_id


class IntersectBlocker(Blocker):
    """Intersection of several blockers' candidates (first blocker's order)."""

    name = "intersect"

    def __init__(self, blockers: Sequence[Blocker]):
        if not blockers:
            raise BlockingError("IntersectBlocker needs at least one blocker")
        self.blockers = list(blockers)

    def _pair_ids(self, table_a: Table, table_b: Table) -> Iterable[Tuple[str, str]]:
        first, *rest = self.blockers
        if not rest:
            yield from first._pair_ids(table_a, table_b)
            return
        surviving = set(first._pair_ids(table_a, table_b))
        for blocker in rest:
            surviving &= set(blocker._pair_ids(table_a, table_b))
        # Re-emit in the first blocker's deterministic order.
        for pair_id in first._pair_ids(table_a, table_b):
            if pair_id in surviving:
                yield pair_id


def blocking_recall(candidates, gold) -> float:
    """Fraction of gold matches that survived blocking.

    The one blocking metric that matters: matches lost here are lost
    forever, no matter how good the rules get (paper §3).
    """
    if not gold:
        return 1.0
    survivors = sum(1 for pair_id in gold if pair_id in candidates)
    return survivors / len(gold)
