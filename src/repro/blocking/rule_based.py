"""Rule-based blocking and blocker combinators.

``RuleBasedBlocker`` filters an upstream blocker's candidates through an
arbitrary pair predicate — e.g. "titles share a token AND prices within
50 %".  The combinators union/intersect candidate sets from independent
blockers, which is how practitioners trade recall against candidate-set
size (union of a loose name blocker and a phone blocker loses far fewer
true matches than either alone).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Sequence, Tuple

from ..data.table import Record, Table
from ..errors import BlockingError
from .base import Blocker
from .cartesian import CartesianBlocker

PairPredicate = Callable[[Record, Record], bool]


class RuleBasedBlocker(Blocker):
    """Keep an upstream blocker's pairs that satisfy ``predicate``."""

    name = "rule_based"

    def __init__(self, predicate: PairPredicate, base: Blocker | None = None):
        self.predicate = predicate
        self.base = base or CartesianBlocker()

    def _pair_ids(self, table_a: Table, table_b: Table) -> Iterable[Tuple[str, str]]:
        for a_id, b_id in self.base._pair_ids(table_a, table_b):
            if self.predicate(table_a.get(a_id), table_b.get(b_id)):
                yield a_id, b_id


class UnionBlocker(Blocker):
    """Union of several blockers' candidates (first-seen order, deduped)."""

    name = "union"

    def __init__(self, blockers: Sequence[Blocker]):
        if not blockers:
            raise BlockingError("UnionBlocker needs at least one blocker")
        self.blockers = list(blockers)

    def _pair_ids(self, table_a: Table, table_b: Table) -> Iterable[Tuple[str, str]]:
        seen = set()
        for blocker in self.blockers:
            for pair_id in blocker._pair_ids(table_a, table_b):
                if pair_id not in seen:
                    seen.add(pair_id)
                    yield pair_id


class IntersectBlocker(Blocker):
    """Intersection of several blockers' candidates (first blocker's order)."""

    name = "intersect"

    def __init__(self, blockers: Sequence[Blocker]):
        if not blockers:
            raise BlockingError("IntersectBlocker needs at least one blocker")
        self.blockers = list(blockers)

    def _pair_ids(self, table_a: Table, table_b: Table) -> Iterable[Tuple[str, str]]:
        first, *rest = self.blockers
        if not rest:
            yield from first._pair_ids(table_a, table_b)
            return
        surviving = set(first._pair_ids(table_a, table_b))
        for blocker in rest:
            surviving &= set(blocker._pair_ids(table_a, table_b))
        # Re-emit in the first blocker's deterministic order.
        for pair_id in first._pair_ids(table_a, table_b):
            if pair_id in surviving:
                yield pair_id


def blocking_recall(candidates, gold) -> float:
    """Fraction of gold matches that survived blocking.

    The one blocking metric that matters: matches lost here are lost
    forever, no matter how good the rules get (paper §3).
    """
    if not gold:
        return 1.0
    survivors = sum(1 for pair_id in gold if pair_id in candidates)
    return survivors / len(gold)
