"""Blocking substrate: reduce |A| x |B| to a tractable candidate set.

Blocking precedes matching (paper Section 3). These blockers produce the
``CandidateSet`` every matcher, memo, and bitmap is indexed by.
"""

from .attr_equivalence import AttributeEquivalenceBlocker
from .base import Blocker
from .canopy import CanopyBlocker
from .cartesian import CartesianBlocker
from .overlap import OverlapBlocker
from .sorted_neighborhood import SortedNeighborhoodBlocker, default_key
from .rule_based import (
    IntersectBlocker,
    RuleBasedBlocker,
    UnionBlocker,
    blocking_recall,
)

__all__ = [
    "Blocker",
    "CartesianBlocker",
    "CanopyBlocker",
    "AttributeEquivalenceBlocker",
    "OverlapBlocker",
    "SortedNeighborhoodBlocker",
    "default_key",
    "RuleBasedBlocker",
    "UnionBlocker",
    "IntersectBlocker",
    "blocking_recall",
]
