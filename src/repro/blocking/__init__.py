"""Blocking substrate: reduce |A| x |B| to a tractable candidate set.

Blocking precedes matching (paper Section 3). These blockers produce the
``CandidateSet`` every matcher, memo, and bitmap is indexed by.

:data:`BLOCKER_REGISTRY` maps each blocker name to a factory taking the
blocking attribute; the streaming property suite iterates it to check the
delta protocol (``pairs_for_delta``) against full re-blocking for every
blocker, including the combinators.
"""

from typing import Callable, Dict

from .attr_equivalence import AttributeEquivalenceBlocker
from .base import Blocker, PairDelta
from .canopy import CanopyBlocker
from .cartesian import CartesianBlocker
from .overlap import OverlapBlocker
from .sorted_neighborhood import SortedNeighborhoodBlocker, default_key
from .rule_based import (
    IntersectBlocker,
    RuleBasedBlocker,
    UnionBlocker,
    blocking_recall,
)


def _share_a_token(record_a, record_b, attribute):
    tokens_a = set(str(record_a.get(attribute) or "").lower().split())
    tokens_b = set(str(record_b.get(attribute) or "").lower().split())
    return bool(tokens_a & tokens_b)


#: blocker name -> factory(attribute) -> Blocker, covering every concrete
#: blocker and both combinators with representative configurations.
BLOCKER_REGISTRY: Dict[str, Callable[[str], Blocker]] = {
    "cartesian": lambda attribute: CartesianBlocker(),
    "attr_equivalence": lambda attribute: AttributeEquivalenceBlocker(attribute),
    "overlap": lambda attribute: OverlapBlocker(attribute, min_overlap=1),
    "overlap_stop": lambda attribute: OverlapBlocker(
        attribute, min_overlap=1, stop_fraction=0.5
    ),
    "sorted_neighborhood": lambda attribute: SortedNeighborhoodBlocker(
        attribute, window=3
    ),
    "canopy": lambda attribute: CanopyBlocker(attribute, loose=0.3, tight=0.8),
    "rule_based": lambda attribute: RuleBasedBlocker(
        predicate=lambda a, b, _attr=attribute: _share_a_token(a, b, _attr),
        base=OverlapBlocker(attribute, min_overlap=1),
    ),
    "union": lambda attribute: UnionBlocker(
        [
            AttributeEquivalenceBlocker(attribute),
            OverlapBlocker(attribute, min_overlap=2),
        ]
    ),
    "intersect": lambda attribute: IntersectBlocker(
        [
            OverlapBlocker(attribute, min_overlap=1),
            SortedNeighborhoodBlocker(attribute, window=4),
        ]
    ),
}

__all__ = [
    "Blocker",
    "PairDelta",
    "BLOCKER_REGISTRY",
    "CartesianBlocker",
    "CanopyBlocker",
    "AttributeEquivalenceBlocker",
    "OverlapBlocker",
    "SortedNeighborhoodBlocker",
    "default_key",
    "RuleBasedBlocker",
    "UnionBlocker",
    "IntersectBlocker",
    "blocking_recall",
]
