"""Sorted-neighborhood blocking (Hernández & Stolfo).

Both tables' records are merged, sorted by a key derived from a blocking
attribute, and a window of size ``w`` slides over the sorted sequence;
cross-table pairs that co-occur in a window become candidates.  With
multiple passes over different keys, this classic method catches matches
whose shared tokens token-overlap blocking misses (e.g. a typo in every
token) as long as *some* prefix sorts them together.

The default key is the lowercased alphanumeric concatenation of the
value — robust to punctuation/format drift, which is the dominant noise
between sources in the six datasets.
"""

from __future__ import annotations

import re
from typing import Callable, Iterable, List, Optional, Tuple

from ..data.table import Record, Table
from ..errors import BlockingError
from .base import Blocker

KeyFunction = Callable[[object], str]
_ALNUM = re.compile(r"[^a-z0-9]+")


def default_key(value: object) -> str:
    """Lowercase alphanumeric squeeze: ``"MN-12 345" -> "mn12345"``."""
    if value is None:
        return ""
    return _ALNUM.sub("", str(value).lower())


class SortedNeighborhoodBlocker(Blocker):
    """Slide a window of size ``window`` over the key-sorted record merge."""

    name = "sorted_neighborhood"

    def __init__(
        self,
        attribute: str,
        window: int = 5,
        key: Optional[KeyFunction] = None,
    ):
        if window < 2:
            raise BlockingError(f"window must be >= 2, got {window}")
        self.attribute = attribute
        self.window = window
        self.key = key or default_key

    def _pair_ids(self, table_a: Table, table_b: Table) -> Iterable[Tuple[str, str]]:
        for table in (table_a, table_b):
            if self.attribute not in table.attributes:
                raise BlockingError(
                    f"blocking attribute {self.attribute!r} not in table "
                    f"{table.name!r} (schema: {list(table.attributes)})"
                )
        # (sort key, side, record id); side breaks ties deterministically.
        merged: List[Tuple[str, int, str]] = []
        for record in table_a:
            merged.append((self.key(record.get(self.attribute)), 0, record.record_id))
        for record in table_b:
            merged.append((self.key(record.get(self.attribute)), 1, record.record_id))
        merged.sort()

        emitted = set()
        for start in range(len(merged)):
            _key_start, side_start, id_start = merged[start]
            for offset in range(1, self.window):
                position = start + offset
                if position >= len(merged):
                    break
                _key_other, side_other, id_other = merged[position]
                if side_start == side_other:
                    continue
                if side_start == 0:
                    pair = (id_start, id_other)
                else:
                    pair = (id_other, id_start)
                if pair not in emitted:
                    emitted.add(pair)
        # Deterministic output order: table-A insertion order, then B id.
        by_a = {}
        for a_id, b_id in emitted:
            by_a.setdefault(a_id, set()).add(b_id)
        yield from self._ordered(table_a, by_a)
