"""Token-overlap blocking — the workhorse for text attributes.

A pair survives if the two values of the blocking attribute share at least
``min_overlap`` tokens.  Implemented with an inverted index over the B
side, so the cost is proportional to the candidate count rather than
|A| x |B|.  An optional stop-token filter drops the most frequent tokens
from the index: without it, vocabulary-level words ("the", a shared brand
in a single-brand catalog) would connect everything to everything, and the
candidate set would degenerate toward the cross product.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Iterable, List, Set, Tuple

from ..data.table import Table
from ..errors import BlockingError
from ..similarity.tokenizers import Tokenizer, WhitespaceTokenizer
from .base import Blocker


class OverlapBlocker(Blocker):
    """Candidates share >= ``min_overlap`` tokens of ``attribute``."""

    name = "overlap"

    def __init__(
        self,
        attribute: str,
        min_overlap: int = 1,
        tokenizer: Tokenizer | None = None,
        stop_fraction: float = 0.0,
    ):
        """``stop_fraction`` drops tokens appearing in more than that
        fraction of B-side records from the inverted index (0 disables)."""
        if min_overlap < 1:
            raise BlockingError(f"min_overlap must be >= 1, got {min_overlap}")
        if not 0.0 <= stop_fraction <= 1.0:
            raise BlockingError(
                f"stop_fraction must be in [0, 1], got {stop_fraction}"
            )
        self.attribute = attribute
        self.min_overlap = min_overlap
        self.tokenizer = tokenizer or WhitespaceTokenizer()
        self.stop_fraction = stop_fraction

    def _pair_ids(self, table_a: Table, table_b: Table) -> Iterable[Tuple[str, str]]:
        for table in (table_a, table_b):
            if self.attribute not in table.attributes:
                raise BlockingError(
                    f"blocking attribute {self.attribute!r} not in table "
                    f"{table.name!r} (schema: {list(table.attributes)})"
                )
        token_sets_b: Dict[str, frozenset] = {}
        document_frequency: Counter = Counter()
        for record_b in table_b:
            tokens = self.tokenizer.tokenize_set(record_b.get(self.attribute))
            token_sets_b[record_b.record_id] = tokens
            document_frequency.update(tokens)

        stop_tokens: Set[str] = set()
        if self.stop_fraction > 0.0 and len(table_b) > 0:
            cutoff = self.stop_fraction * len(table_b)
            stop_tokens = {
                token
                for token, frequency in document_frequency.items()
                if frequency > cutoff
            }

        inverted: Dict[str, List[str]] = defaultdict(list)
        for b_id, tokens in token_sets_b.items():
            for token in tokens:
                if token not in stop_tokens:
                    inverted[token].append(b_id)

        for record_a in table_a:
            tokens_a = self.tokenizer.tokenize_set(record_a.get(self.attribute))
            overlap_counts: Counter = Counter()
            for token in tokens_a:
                if token in stop_tokens:
                    continue
                for b_id in inverted.get(token, ()):
                    overlap_counts[b_id] += 1
            survivors = sorted(
                b_id
                for b_id, count in overlap_counts.items()
                if count >= self.min_overlap
            )
            for b_id in survivors:
                yield record_a.record_id, b_id
