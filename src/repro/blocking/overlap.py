"""Token-overlap blocking — the workhorse for text attributes.

A pair survives if the two values of the blocking attribute share at least
``min_overlap`` tokens.  Implemented with an inverted index over the B
side, so the cost is proportional to the candidate count rather than
|A| x |B|.  An optional stop-token filter drops the most frequent tokens
from the index: without it, vocabulary-level words ("the", a shared brand
in a single-brand catalog) would connect everything to everything, and the
candidate set would degenerate toward the cross product.

Streaming: with ``stop_fraction == 0`` a pair's survival depends only on
its two records' token sets, so ``block()`` keeps inverted indexes over
*both* sides and :meth:`~repro.blocking.base.Blocker.pairs_for_delta`
answers locally.  With a stop-token filter the stop set itself is a
function of the whole B table (a delta can move tokens across the
frequency cutoff, changing pairs between *unrelated* records), so the
blocker falls back to the exact re-block diff.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Iterable, List, Set, Tuple

from ..data.pairs import PairId
from ..data.table import Record, Table
from ..errors import BlockingError
from ..similarity.tokenizers import Tokenizer, WhitespaceTokenizer
from .base import Blocker


class OverlapBlocker(Blocker):
    """Candidates share >= ``min_overlap`` tokens of ``attribute``."""

    name = "overlap"

    def __init__(
        self,
        attribute: str,
        min_overlap: int = 1,
        tokenizer: Tokenizer | None = None,
        stop_fraction: float = 0.0,
    ):
        """``stop_fraction`` drops tokens appearing in more than that
        fraction of B-side records from the inverted index (0 disables)."""
        if min_overlap < 1:
            raise BlockingError(f"min_overlap must be >= 1, got {min_overlap}")
        if not 0.0 <= stop_fraction <= 1.0:
            raise BlockingError(
                f"stop_fraction must be in [0, 1], got {stop_fraction}"
            )
        self.attribute = attribute
        self.min_overlap = min_overlap
        self.tokenizer = tokenizer or WhitespaceTokenizer()
        self.stop_fraction = stop_fraction
        self.delta_strategy = "index" if stop_fraction == 0.0 else "reblock"

    def _pair_ids(self, table_a: Table, table_b: Table) -> Iterable[Tuple[str, str]]:
        for table in (table_a, table_b):
            if self.attribute not in table.attributes:
                raise BlockingError(
                    f"blocking attribute {self.attribute!r} not in table "
                    f"{table.name!r} (schema: {list(table.attributes)})"
                )
        token_sets_b: Dict[str, frozenset] = {}
        document_frequency: Counter = Counter()
        for record_b in table_b:
            tokens = self.tokenizer.tokenize_set(record_b.get(self.attribute))
            token_sets_b[record_b.record_id] = tokens
            document_frequency.update(tokens)

        stop_tokens: Set[str] = set()
        if self.stop_fraction > 0.0 and len(table_b) > 0:
            cutoff = self.stop_fraction * len(table_b)
            stop_tokens = {
                token
                for token, frequency in document_frequency.items()
                if frequency > cutoff
            }

        inverted: Dict[str, List[str]] = defaultdict(list)
        for b_id, tokens in token_sets_b.items():
            for token in tokens:
                if token not in stop_tokens:
                    inverted[token].append(b_id)

        if self.delta_strategy == "index":
            # Delta-ready state: token sets and inverted indexes on both
            # sides (the B side reuses what was just built; the A side
            # fills in below as rows stream past).
            self._tokens_a: Dict[str, frozenset] = {}
            self._tokens_b = dict(token_sets_b)
            self._inverted_a: Dict[str, Set[str]] = defaultdict(set)
            self._inverted_b: Dict[str, Set[str]] = {
                token: set(ids) for token, ids in inverted.items()
            }

        for record_a in table_a:
            tokens_a = self.tokenizer.tokenize_set(record_a.get(self.attribute))
            if self.delta_strategy == "index":
                self._tokens_a[record_a.record_id] = tokens_a
                for token in tokens_a:
                    self._inverted_a[token].add(record_a.record_id)
            overlap_counts: Counter = Counter()
            for token in tokens_a:
                if token in stop_tokens:
                    continue
                for b_id in inverted.get(token, ()):
                    overlap_counts[b_id] += 1
            survivors = sorted(
                b_id
                for b_id, count in overlap_counts.items()
                if count >= self.min_overlap
            )
            for b_id in survivors:
                yield record_a.record_id, b_id

    # ------------------------------------------------------------------
    # Delta maintenance (stop_fraction == 0 only)
    # ------------------------------------------------------------------

    def _unindex_record(self, side: str, record_id: str) -> None:
        tokens_of = self._tokens_a if side == "a" else self._tokens_b
        inverted = self._inverted_a if side == "a" else self._inverted_b
        for token in tokens_of.pop(record_id, ()):
            ids = inverted.get(token)
            if ids is not None:
                ids.discard(record_id)
                if not ids:
                    del inverted[token]

    def _index_record(self, side: str, record: Record) -> frozenset:
        tokens = self.tokenizer.tokenize_set(record.get(self.attribute))
        tokens_of = self._tokens_a if side == "a" else self._tokens_b
        inverted = self._inverted_a if side == "a" else self._inverted_b
        tokens_of[record.record_id] = tokens
        for token in tokens:
            inverted.setdefault(token, set()).add(record.record_id)
        return tokens

    def _save_index_extra(self) -> object:
        if not hasattr(self, "_tokens_a"):
            return None
        return (
            dict(self._tokens_a),
            dict(self._tokens_b),
            {token: set(ids) for token, ids in self._inverted_a.items()},
            {token: set(ids) for token, ids in self._inverted_b.items()},
        )

    def _restore_index_extra(self, extra: object) -> None:
        if extra is None:
            return
        tokens_a, tokens_b, inverted_a, inverted_b = extra
        self._tokens_a = dict(tokens_a)
        self._tokens_b = dict(tokens_b)
        self._inverted_a = defaultdict(
            set, {token: set(ids) for token, ids in inverted_a.items()}
        )
        self._inverted_b = {token: set(ids) for token, ids in inverted_b.items()}

    def _delta_pairs(
        self, table_a: Table, table_b: Table, delta
    ) -> Tuple[Set[PairId], Set[PairId]]:
        if self.delta_strategy != "index" or not hasattr(self, "_tokens_a"):
            return super()._delta_pairs(table_a, table_b, delta)
        self._unindex_record(delta.side, delta.record_id)
        if delta.op != "delete":
            tokens = self._index_record(delta.side, delta.record)
        else:
            tokens = frozenset()

        def pairs_for_record(record: Record) -> Set[PairId]:
            other_inverted = (
                self._inverted_b if delta.side == "a" else self._inverted_a
            )
            overlap_counts: Counter = Counter()
            for token in tokens:
                for other_id in other_inverted.get(token, ()):
                    overlap_counts[other_id] += 1
            partners = {
                other_id
                for other_id, count in overlap_counts.items()
                if count >= self.min_overlap
            }
            if delta.side == "a":
                return {(record.record_id, b_id) for b_id in partners}
            return {(a_id, record.record_id) for a_id in partners}

        return self._local_delta(delta, pairs_for_record)
