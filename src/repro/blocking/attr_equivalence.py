"""Attribute-equivalence blocking.

The paper's §3 example: "products from different categories are
non-matches", so only same-category pairs become candidates.  Records with
a missing blocking value are, by default, paired with *every* record on
the other side (``keep_missing=True``) — dropping them would silently
erase true matches whose blocking attribute one source failed to extract,
which is the kind of blocking bug the debugging loop cannot recover from.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Set, Tuple

from ..data.pairs import PairId
from ..data.table import Record, Table
from ..errors import BlockingError
from .base import Blocker


class AttributeEquivalenceBlocker(Blocker):
    """Candidates are pairs whose (normalized) blocking values are equal.

    A pair ``(a, b)`` is a candidate iff ``key(a) == key(b) != None``, or
    — when ``keep_missing`` — either key is ``None``.  Membership is local
    to the two records, so ``block()`` keeps per-side key indexes and
    :meth:`pairs_for_delta` answers from them in O(block size).
    """

    name = "attr_equivalence"
    delta_strategy = "index"

    def __init__(self, attribute: str, keep_missing: bool = True, lowercase: bool = True):
        self.attribute = attribute
        self.keep_missing = keep_missing
        self.lowercase = lowercase

    def _key(self, value: object) -> object:
        if value is None:
            return None
        text = str(value).strip()
        return text.lower() if self.lowercase else text

    def _pair_ids(self, table_a: Table, table_b: Table) -> Iterable[Tuple[str, str]]:
        for table in (table_a, table_b):
            if self.attribute not in table.attributes:
                raise BlockingError(
                    f"blocking attribute {self.attribute!r} not in table "
                    f"{table.name!r} (schema: {list(table.attributes)})"
                )
        # Per-side key indexes; kept on self and maintained by
        # _delta_pairs so deltas never rescan the tables.
        self._by_key_a: Dict[object, Set[str]] = defaultdict(set)
        self._by_key_b: Dict[object, Set[str]] = defaultdict(set)
        self._missing_a: Set[str] = set()
        self._missing_b: Set[str] = set()
        self._key_of_a: Dict[str, object] = {}
        self._key_of_b: Dict[str, object] = {}
        for record_a in table_a:
            self._index_record("a", record_a)

        index_b: Dict[object, List[str]] = defaultdict(list)
        missing_b: List[str] = []
        for record_b in table_b:
            self._index_record("b", record_b)
            key = self._key(record_b.get(self.attribute))
            if key is None:
                missing_b.append(record_b.record_id)
            else:
                index_b[key].append(record_b.record_id)

        for record_a in table_a:
            key = self._key(record_a.get(self.attribute))
            matched: Set[str] = set()
            if key is None:
                if not self.keep_missing:
                    continue
                # Missing on the A side: pair with everything.
                for record_b in table_b:
                    yield record_a.record_id, record_b.record_id
                continue
            for b_id in index_b.get(key, ()):
                matched.add(b_id)
                yield record_a.record_id, b_id
            if self.keep_missing:
                for b_id in missing_b:
                    if b_id not in matched:
                        yield record_a.record_id, b_id

    # ------------------------------------------------------------------
    # Delta maintenance
    # ------------------------------------------------------------------

    def _index_record(self, side: str, record: Record) -> None:
        by_key = self._by_key_a if side == "a" else self._by_key_b
        missing = self._missing_a if side == "a" else self._missing_b
        key_of = self._key_of_a if side == "a" else self._key_of_b
        key = self._key(record.get(self.attribute))
        key_of[record.record_id] = key
        if key is None:
            missing.add(record.record_id)
        else:
            by_key[key].add(record.record_id)

    def _unindex_record(self, side: str, record_id: str) -> None:
        by_key = self._by_key_a if side == "a" else self._by_key_b
        missing = self._missing_a if side == "a" else self._missing_b
        key_of = self._key_of_a if side == "a" else self._key_of_b
        key = key_of.pop(record_id, None)
        if key is None:
            missing.discard(record_id)
        else:
            ids = by_key.get(key)
            if ids is not None:
                ids.discard(record_id)
                if not ids:
                    del by_key[key]

    def _partners(self, side: str, key: object) -> Set[str]:
        """Other-side record ids that pair with a record whose key is ``key``."""
        other_by_key = self._by_key_b if side == "a" else self._by_key_a
        other_missing = self._missing_b if side == "a" else self._missing_a
        other_key_of = self._key_of_b if side == "a" else self._key_of_a
        if key is None:
            # Missing pairs with everything iff keep_missing.
            return set(other_key_of) if self.keep_missing else set()
        partners = set(other_by_key.get(key, ()))
        if self.keep_missing:
            partners |= other_missing
        return partners

    def _save_index_extra(self) -> object:
        if not hasattr(self, "_key_of_a"):
            return None
        return (
            {key: set(ids) for key, ids in self._by_key_a.items()},
            {key: set(ids) for key, ids in self._by_key_b.items()},
            set(self._missing_a),
            set(self._missing_b),
            dict(self._key_of_a),
            dict(self._key_of_b),
        )

    def _restore_index_extra(self, extra: object) -> None:
        if extra is None:
            return
        by_key_a, by_key_b, missing_a, missing_b, key_of_a, key_of_b = extra
        self._by_key_a = defaultdict(set, {k: set(v) for k, v in by_key_a.items()})
        self._by_key_b = defaultdict(set, {k: set(v) for k, v in by_key_b.items()})
        self._missing_a = set(missing_a)
        self._missing_b = set(missing_b)
        self._key_of_a = dict(key_of_a)
        self._key_of_b = dict(key_of_b)

    def _delta_pairs(
        self, table_a: Table, table_b: Table, delta
    ) -> Tuple[Set[PairId], Set[PairId]]:
        if not hasattr(self, "_key_of_a"):
            return super()._delta_pairs(table_a, table_b, delta)
        self._unindex_record(delta.side, delta.record_id)
        if delta.op != "delete":
            self._index_record(delta.side, delta.record)

        def pairs_for_record(record: Record) -> Set[PairId]:
            key = self._key_of_a[record.record_id] if delta.side == "a" else (
                self._key_of_b[record.record_id]
            )
            partners = self._partners(delta.side, key)
            if delta.side == "a":
                return {(record.record_id, b_id) for b_id in partners}
            return {(a_id, record.record_id) for a_id in partners}

        return self._local_delta(delta, pairs_for_record)
