"""Attribute-equivalence blocking.

The paper's §3 example: "products from different categories are
non-matches", so only same-category pairs become candidates.  Records with
a missing blocking value are, by default, paired with *every* record on
the other side (``keep_missing=True``) — dropping them would silently
erase true matches whose blocking attribute one source failed to extract,
which is the kind of blocking bug the debugging loop cannot recover from.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Set, Tuple

from ..data.table import Table
from ..errors import BlockingError
from .base import Blocker


class AttributeEquivalenceBlocker(Blocker):
    """Candidates are pairs whose (normalized) blocking values are equal."""

    name = "attr_equivalence"

    def __init__(self, attribute: str, keep_missing: bool = True, lowercase: bool = True):
        self.attribute = attribute
        self.keep_missing = keep_missing
        self.lowercase = lowercase

    def _key(self, value: object) -> object:
        if value is None:
            return None
        text = str(value).strip()
        return text.lower() if self.lowercase else text

    def _pair_ids(self, table_a: Table, table_b: Table) -> Iterable[Tuple[str, str]]:
        for table in (table_a, table_b):
            if self.attribute not in table.attributes:
                raise BlockingError(
                    f"blocking attribute {self.attribute!r} not in table "
                    f"{table.name!r} (schema: {list(table.attributes)})"
                )
        index_b: Dict[object, List[str]] = defaultdict(list)
        missing_b: List[str] = []
        for record_b in table_b:
            key = self._key(record_b.get(self.attribute))
            if key is None:
                missing_b.append(record_b.record_id)
            else:
                index_b[key].append(record_b.record_id)

        for record_a in table_a:
            key = self._key(record_a.get(self.attribute))
            matched: Set[str] = set()
            if key is None:
                if not self.keep_missing:
                    continue
                # Missing on the A side: pair with everything.
                for record_b in table_b:
                    yield record_a.record_id, record_b.record_id
                continue
            for b_id in index_b.get(key, ()):
                matched.add(b_id)
                yield record_a.record_id, b_id
            if self.keep_missing:
                for b_id in missing_b:
                    if b_id not in matched:
                        yield record_a.record_id, b_id
