"""Cartesian (no-op) blocker: every (a, b) pair is a candidate.

Only sensible for small tables and for tests that need the full cross
product; the docstring of :mod:`repro.blocking` explains why real
workflows never run without blocking (|A| x |B| blows up quadratically —
the paper's products dataset would have 56 million pairs unblocked
versus 291,649 blocked).
"""

from __future__ import annotations

from typing import Iterable, Set, Tuple

from ..data.pairs import PairId
from ..data.table import Table
from .base import Blocker


class CartesianBlocker(Blocker):
    """Emit the full cross product A x B."""

    name = "cartesian"
    delta_strategy = "index"

    def __init__(self, limit: int | None = None):
        """``limit`` (if set) caps the number of emitted pairs as a guard
        against accidentally crossing two large tables."""
        self.limit = limit
        if limit is not None:
            self.delta_strategy = "reblock"

    def _pair_ids(self, table_a: Table, table_b: Table) -> Iterable[Tuple[str, str]]:
        emitted = 0
        for record_a in table_a:
            for record_b in table_b:
                if self.limit is not None and emitted >= self.limit:
                    return
                yield record_a.record_id, record_b.record_id
                emitted += 1

    def _delta_pairs(
        self, table_a: Table, table_b: Table, delta
    ) -> Tuple[Set[PairId], Set[PairId]]:
        if self.limit is not None:
            # Which pairs fall under the cap depends on table order, not
            # just the changed record — not local, so re-block and diff.
            return super()._delta_pairs(table_a, table_b, delta)

        def pairs_for_record(record) -> Set[PairId]:
            if delta.side == "a":
                return {
                    (record.record_id, record_b.record_id)
                    for record_b in table_b
                }
            return {
                (record_a.record_id, record.record_id)
                for record_a in table_a
            }

        return self._local_delta(delta, pairs_for_record)
