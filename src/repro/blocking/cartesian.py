"""Cartesian (no-op) blocker: every (a, b) pair is a candidate.

Only sensible for small tables and for tests that need the full cross
product; the docstring of :mod:`repro.blocking` explains why real
workflows never run without blocking (|A| x |B| blows up quadratically —
the paper's products dataset would have 56 million pairs unblocked
versus 291,649 blocked).
"""

from __future__ import annotations

from typing import Iterable, Tuple

from ..data.table import Table
from .base import Blocker


class CartesianBlocker(Blocker):
    """Emit the full cross product A x B."""

    name = "cartesian"

    def __init__(self, limit: int | None = None):
        """``limit`` (if set) caps the number of emitted pairs as a guard
        against accidentally crossing two large tables."""
        self.limit = limit

    def _pair_ids(self, table_a: Table, table_b: Table) -> Iterable[Tuple[str, str]]:
        emitted = 0
        for record_a in table_a:
            for record_b in table_b:
                if self.limit is not None and emitted >= self.limit:
                    return
                yield record_a.record_id, record_b.record_id
                emitted += 1
