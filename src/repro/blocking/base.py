"""Blocker interface.

Blocking (paper §3) runs once, before any matching, and produces the
*candidate set* every matcher then iterates over.  Blockers are pure
functions of the two tables: given A and B they return a
:class:`~repro.data.pairs.CandidateSet` whose pair order is deterministic
(sorted by A-side insertion order, then B-side), so that memo indices and
bitmaps are stable across runs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, List, Tuple

from ..data.pairs import CandidateSet
from ..data.table import Table


class Blocker(ABC):
    """Base class for all blockers."""

    name: str = "blocker"

    def block(self, table_a: Table, table_b: Table) -> CandidateSet:
        """Return the candidate set for ``table_a`` x ``table_b``."""
        candidates = CandidateSet(table_a, table_b)
        for a_id, b_id in self._pair_ids(table_a, table_b):
            candidates.add(a_id, b_id)
        return candidates

    @abstractmethod
    def _pair_ids(
        self, table_a: Table, table_b: Table
    ) -> Iterable[Tuple[str, str]]:
        """Yield surviving (a_id, b_id) pairs in deterministic order."""

    @staticmethod
    def _ordered(
        table_a: Table, pairs_by_a: dict
    ) -> List[Tuple[str, str]]:
        """Flatten {a_id: set(b_ids)} deterministically (table order, then id)."""
        ordered: List[Tuple[str, str]] = []
        for record_a in table_a:
            b_ids = pairs_by_a.get(record_a.record_id)
            if b_ids:
                ordered.extend(
                    (record_a.record_id, b_id) for b_id in sorted(b_ids)
                )
        return ordered

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
