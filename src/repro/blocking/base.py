"""Blocker interface.

Blocking (paper §3) runs once, before any matching, and produces the
*candidate set* every matcher then iterates over.  Blockers are
deterministic functions of the two tables: given A and B they return a
:class:`~repro.data.pairs.CandidateSet` whose pair order is deterministic
(sorted by A-side insertion order, then B-side), so that memo indices and
bitmaps are stable across runs.

Streaming extension
-------------------
``block()`` additionally snapshots the produced pair set (and, for
blockers that can, an inverted index over the blocking values), after
which :meth:`Blocker.pairs_for_delta` answers *"which candidate pairs does
this record-level delta gain or lose?"* without consulting a matcher:

* Blockers whose candidate membership is **local** — a pair's survival
  depends only on the two records' own values (Cartesian, attribute
  equivalence, token overlap without a stop-token filter, rule-based
  filters over those) — maintain their index incrementally and answer in
  O(degree of the changed record).  Their ``delta_strategy`` is
  ``"index"``.
* Blockers with **global** candidate membership — sorted neighborhood
  (window positions shift), canopy (seeding changes), overlap with a
  stop-token filter (document frequencies move the stop set), and the
  set combinators — fall back to re-running ``_pair_ids`` on the post-
  delta tables and diffing against the snapshot.  Exactly the full
  re-block, minus re-building the CandidateSet.  Their ``delta_strategy``
  is ``"reblock"``.

Both strategies return *exactly* the symmetric difference of full
``block()`` runs before/after the delta — a Hypothesis property test
(``tests/test_streaming_properties.py``) enforces the equivalence for
every blocker in :data:`repro.blocking.BLOCKER_REGISTRY`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from ..data.pairs import CandidateSet, PairId
from ..data.table import Table
from ..errors import BlockingError


@dataclass(frozen=True)
class PairDelta:
    """Candidate pairs gained/lost by one record-level delta.

    Both tuples are sorted for determinism; a pair never appears in both.
    """

    gained: Tuple[PairId, ...]
    lost: Tuple[PairId, ...]

    def __bool__(self) -> bool:
        return bool(self.gained or self.lost)

    def __repr__(self) -> str:
        return f"PairDelta(+{len(self.gained)}/-{len(self.lost)})"


class Blocker(ABC):
    """Base class for all blockers."""

    name: str = "blocker"
    #: how :meth:`pairs_for_delta` computes its answer — ``"index"`` when
    #: an incrementally maintained index yields the delta locally,
    #: ``"reblock"`` when it re-runs ``_pair_ids`` and diffs.
    delta_strategy: str = "reblock"

    def block(self, table_a: Table, table_b: Table) -> CandidateSet:
        """Return the candidate set for ``table_a`` x ``table_b``."""
        candidates = CandidateSet(table_a, table_b)
        for a_id, b_id in self._pair_ids(table_a, table_b):
            candidates.add(a_id, b_id)
        self._snapshot(candidates.id_pairs())
        return candidates

    @abstractmethod
    def _pair_ids(
        self, table_a: Table, table_b: Table
    ) -> Iterable[Tuple[str, str]]:
        """Yield surviving (a_id, b_id) pairs in deterministic order."""

    # ------------------------------------------------------------------
    # Delta protocol
    # ------------------------------------------------------------------

    def pairs_for_delta(self, table_a: Table, table_b: Table, delta) -> PairDelta:
        """Candidate pairs gained/lost by ``delta``, versus the last call.

        ``table_a``/``table_b`` are the **post-delta** tables (the delta
        has already been applied to them); ``delta`` is a
        :class:`~repro.streaming.Delta`-shaped object with ``op``
        (``"insert"``/``"update"``/``"delete"``), ``side`` (``"a"``/
        ``"b"``), ``record_id``, and ``record`` attributes.  The result is
        exactly ``block(post) \\ block(pre)`` and ``block(pre) \\
        block(post)``.  The snapshot advances, so consecutive deltas
        chain; requires a prior :meth:`block` on this instance.
        """
        if not getattr(self, "_snapshot_ready", False):
            raise BlockingError(
                f"{type(self).__name__}.pairs_for_delta needs a prior "
                f"block() on this instance"
            )
        gained, lost = self._delta_pairs(table_a, table_b, delta)
        for a_id, b_id in lost:
            self._pairs_by_a.get(a_id, set()).discard(b_id)
            self._pairs_by_b.get(b_id, set()).discard(a_id)
        for a_id, b_id in gained:
            self._pairs_by_a.setdefault(a_id, set()).add(b_id)
            self._pairs_by_b.setdefault(b_id, set()).add(a_id)
        return PairDelta(tuple(sorted(gained)), tuple(sorted(lost)))

    def _delta_pairs(
        self, table_a: Table, table_b: Table, delta
    ) -> Tuple[Set[PairId], Set[PairId]]:
        """Default strategy: re-run ``_pair_ids`` and diff (always exact)."""
        new_pairs = set(self._pair_ids(table_a, table_b))
        old_pairs = self.current_pairs()
        return new_pairs - old_pairs, old_pairs - new_pairs

    def current_pairs(self) -> Set[PairId]:
        """The pair set as of the last block()/pairs_for_delta call."""
        if not getattr(self, "_snapshot_ready", False):
            raise BlockingError(
                f"{type(self).__name__} has no snapshot; call block() first"
            )
        return {
            (a_id, b_id)
            for a_id, b_ids in self._pairs_by_a.items()
            for b_id in b_ids
        }

    def save_delta_index(self) -> object:
        """Opaque copy of the delta-maintenance state, for
        :meth:`restore_delta_index`.

        Streaming ingestion brackets a batch with save/restore so that a
        failure mid-batch cannot leave the snapshot (or a subclass's
        incremental index) advanced past the tables it describes.
        """
        if not getattr(self, "_snapshot_ready", False):
            return None
        return (
            {a_id: set(b_ids) for a_id, b_ids in self._pairs_by_a.items()},
            {b_id: set(a_ids) for b_id, a_ids in self._pairs_by_b.items()},
            self._save_index_extra(),
        )

    def restore_delta_index(self, saved: object) -> None:
        """Restore state captured by :meth:`save_delta_index`."""
        if saved is None:
            self._snapshot_ready = False
            return
        pairs_by_a, pairs_by_b, extra = saved
        self._pairs_by_a = {a_id: set(b_ids) for a_id, b_ids in pairs_by_a.items()}
        self._pairs_by_b = {b_id: set(a_ids) for b_id, a_ids in pairs_by_b.items()}
        self._snapshot_ready = True
        self._restore_index_extra(extra)

    def _save_index_extra(self) -> object:
        """Subclass hook: copy any incremental index beyond the snapshot."""
        return None

    def _restore_index_extra(self, extra: object) -> None:
        """Subclass hook: restore what :meth:`_save_index_extra` copied."""

    def _snapshot(self, id_pairs: Iterable[PairId]) -> None:
        """Record the produced pair set for later delta computation."""
        self._pairs_by_a: Dict[str, Set[str]] = {}
        self._pairs_by_b: Dict[str, Set[str]] = {}
        for a_id, b_id in id_pairs:
            self._pairs_by_a.setdefault(a_id, set()).add(b_id)
            self._pairs_by_b.setdefault(b_id, set()).add(a_id)
        self._snapshot_ready = True

    def _incident_pairs(self, side: str, record_id: str) -> Set[PairId]:
        """Snapshot pairs incident to ``record_id`` on ``side``."""
        if side == "a":
            return {
                (record_id, b_id)
                for b_id in self._pairs_by_a.get(record_id, ())
            }
        return {
            (a_id, record_id) for a_id in self._pairs_by_b.get(record_id, ())
        }

    def _local_delta(
        self, delta, pairs_for_record
    ) -> Tuple[Set[PairId], Set[PairId]]:
        """Delta computation for blockers with local pair membership.

        ``pairs_for_record(record)`` returns the full pair set the (post-
        delta) record participates in; the delta is its difference with
        the snapshot's incident pairs.  Only valid when no *other*
        record's pair membership can change — the property test catches
        misuse.
        """
        old = self._incident_pairs(delta.side, delta.record_id)
        new: Set[PairId] = (
            set() if delta.op == "delete" else pairs_for_record(delta.record)
        )
        return new - old, old - new

    @staticmethod
    def _ordered(
        table_a: Table, pairs_by_a: dict
    ) -> List[Tuple[str, str]]:
        """Flatten {a_id: set(b_ids)} deterministically (table order, then id)."""
        ordered: List[Tuple[str, str]] = []
        for record_a in table_a:
            b_ids = pairs_by_a.get(record_a.record_id)
            if b_ids:
                ordered.extend(
                    (record_a.record_id, b_id) for b_id in sorted(b_ids)
                )
        return ordered

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
