"""Labeled-sample construction for quality estimation.

The paper (§3) assumes "a sample of the candidate pairs is chosen and
manually labeled".  In a reproduction the gold set plays the oracle; these
helpers draw the kinds of samples an analyst would actually label —
uniform, or stratified so the rare positive class is represented well
enough for precision/recall to be estimable at all (a uniform 1 % sample
of a 1 %-positive candidate set contains ~1 positive pair).
"""

from __future__ import annotations

import random
from typing import List, Sequence, Set, Tuple

from ..data.pairs import CandidateSet, PairId
from ..errors import ReproError


def uniform_sample(
    candidates: CandidateSet, fraction: float = 0.01, seed: int = 0, minimum: int = 50
) -> List[int]:
    """A uniform random sample of candidate pair indices."""
    if not 0.0 < fraction <= 1.0:
        raise ReproError(f"fraction must be in (0, 1], got {fraction}")
    population = len(candidates)
    if population == 0:
        return []
    size = min(population, max(minimum, round(population * fraction)))
    rng = random.Random(seed)
    return sorted(rng.sample(range(population), size))


def stratified_sample(
    candidates: CandidateSet,
    gold: Set[PairId],
    positives: int = 100,
    negatives_per_positive: float = 3.0,
    seed: int = 0,
) -> List[int]:
    """A sample with guaranteed positive representation.

    Draws up to ``positives`` gold pairs and ``negatives_per_positive``
    times as many non-gold pairs, shuffled together.  This is the shape of
    sample an analyst labels when debugging recall: it must contain enough
    true matches to see which ones the rules miss.
    """
    if positives < 1:
        raise ReproError(f"positives must be >= 1, got {positives}")
    rng = random.Random(seed)
    gold_indices = candidates.gold_indices(gold)
    if not gold_indices:
        raise ReproError("no gold pairs in the candidate set to sample from")
    chosen_positives = rng.sample(gold_indices, min(positives, len(gold_indices)))
    gold_set = set(gold_indices)
    negative_pool = [
        index for index in range(len(candidates)) if index not in gold_set
    ]
    wanted = min(
        len(negative_pool), round(len(chosen_positives) * negatives_per_positive)
    )
    chosen_negatives = rng.sample(negative_pool, wanted)
    sample = chosen_positives + chosen_negatives
    rng.shuffle(sample)
    return sample
