"""Matching quality metrics (paper §3: precision/recall on a labeled sample).

The debugging loop's inner signal: after every rule edit the analyst looks
at precision and recall against whatever labeled pairs exist.  These
helpers compute them from a :class:`~repro.core.matchers.MatchResult` (or
raw labels) and a gold set, optionally restricted to a labeled subset of
the candidates — analysts rarely have full gold labels, only a sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Set, Tuple

import numpy as np

from ..data.pairs import CandidateSet, PairId


@dataclass(frozen=True)
class Confusion:
    """Confusion counts over the evaluated pair population."""

    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def f1(self) -> float:
        precision, recall = self.precision, self.recall
        if precision + recall == 0.0:
            return 0.0
        return 2.0 * precision * recall / (precision + recall)

    @property
    def accuracy(self) -> float:
        total = (
            self.true_positives
            + self.false_positives
            + self.false_negatives
            + self.true_negatives
        )
        return (self.true_positives + self.true_negatives) / total if total else 1.0

    def summary(self) -> str:
        return (
            f"P={self.precision:.3f} R={self.recall:.3f} F1={self.f1:.3f} "
            f"(tp={self.true_positives} fp={self.false_positives} "
            f"fn={self.false_negatives})"
        )


def confusion(
    labels: np.ndarray,
    candidates: CandidateSet,
    gold: Set[PairId],
    evaluated_indices: Optional[Sequence[int]] = None,
) -> Confusion:
    """Confusion counts of predicted ``labels`` against ``gold``.

    ``evaluated_indices`` restricts scoring to a labeled subset (paper §3:
    quality is estimated on a manually labeled sample); default is every
    candidate pair.  Gold matches that did not survive blocking are outside
    the candidate set and thus invisible here — report blocking recall
    separately via :func:`repro.blocking.blocking_recall`.
    """
    indices: Iterable[int] = (
        range(len(candidates)) if evaluated_indices is None else evaluated_indices
    )
    tp = fp = fn = tn = 0
    for index in indices:
        predicted = bool(labels[index])
        actual = candidates[index].pair_id in gold
        if predicted and actual:
            tp += 1
        elif predicted:
            fp += 1
        elif actual:
            fn += 1
        else:
            tn += 1
    return Confusion(tp, fp, fn, tn)


def precision_recall_f1(
    labels: np.ndarray,
    candidates: CandidateSet,
    gold: Set[PairId],
    evaluated_indices: Optional[Sequence[int]] = None,
) -> Tuple[float, float, float]:
    """(precision, recall, F1) convenience wrapper around :func:`confusion`."""
    result = confusion(labels, candidates, gold, evaluated_indices)
    return result.precision, result.recall, result.f1


def false_positives(
    labels: np.ndarray, candidates: CandidateSet, gold: Set[PairId]
) -> list:
    """Indices of pairs predicted matched but not in gold — the pairs an
    analyst inspects before making a rule stricter (§6.2.1)."""
    return [
        pair.index
        for pair in candidates
        if labels[pair.index] and pair.pair_id not in gold
    ]


def false_negatives(
    labels: np.ndarray, candidates: CandidateSet, gold: Set[PairId]
) -> list:
    """Indices of gold pairs predicted unmatched — the pairs an analyst
    inspects before relaxing a predicate or adding a rule (§6.2.2/6.2.4)."""
    return [
        pair.index
        for pair in candidates
        if not labels[pair.index] and pair.pair_id in gold
    ]
