"""Aggregate debugging reports: per-rule quality from attribution bitmaps.

After a run, the materialized state already knows which rule claimed each
matched pair.  Joining that with gold labels yields the analyst's most
actionable table — *which rules earn their keep*:

    rule   matched  gold  precision
    r12    34       28    0.82
    r7     19       2     0.11   <- tighten or drop this one

All of it comes from bitmaps and the gold set; no re-matching, no feature
computation.  :func:`render_report` is what the Figure-1 "examine
results" box looks like when the system, not the analyst, does the
bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..core.state import MatchState
from ..data.pairs import PairId


@dataclass(frozen=True)
class RuleQuality:
    """One rule's contribution to the current result."""

    rule_name: str
    matched: int          # pairs attributed to this rule
    gold_matched: int     # of those, how many are gold

    @property
    def precision(self) -> float:
        return self.gold_matched / self.matched if self.matched else 1.0

    @property
    def false_positives(self) -> int:
        return self.matched - self.gold_matched


@dataclass
class DebugReport:
    """Per-rule quality plus overall error counts."""

    rules: List[RuleQuality]
    unmatched_gold: int       # false negatives (recall misses)
    total_matched: int
    total_gold_in_candidates: int

    def worst_rules(self, limit: int = 5) -> List[RuleQuality]:
        """Rules ranked by false positives contributed (desc)."""
        active = [quality for quality in self.rules if quality.matched]
        active.sort(key=lambda q: (-q.false_positives, q.precision, q.rule_name))
        return active[:limit]

    def idle_rules(self) -> List[str]:
        """Rules that matched nothing — candidates for deletion.

        (Attribution-based: a rule may be "shadowed" by earlier rules
        rather than truly dead; reordering can revive it.  Either way it
        currently contributes nothing.)
        """
        return [quality.rule_name for quality in self.rules if not quality.matched]


def build_report(state: MatchState, gold: Set[PairId]) -> DebugReport:
    """Assemble the per-rule report from the state's attribution."""
    counts: Dict[str, List[int]] = {
        rule.name: [0, 0] for rule in state.function.rules
    }
    for pair_index in state.matched_indices():
        rule_name = state.function.rules[int(state.attribution[pair_index])].name
        entry = counts[rule_name]
        entry[0] += 1
        if state.candidates[pair_index].pair_id in gold:
            entry[1] += 1

    gold_in_candidates = sum(
        1 for pair in state.candidates if pair.pair_id in gold
    )
    matched_gold = sum(entry[1] for entry in counts.values())
    return DebugReport(
        rules=[
            RuleQuality(rule_name, matched, gold_matched)
            for rule_name, (matched, gold_matched) in counts.items()
        ],
        unmatched_gold=gold_in_candidates - matched_gold,
        total_matched=state.match_count(),
        total_gold_in_candidates=gold_in_candidates,
    )


def render_report(report: DebugReport, limit: int = 10) -> str:
    """Human-readable report text (workbench ``report`` command)."""
    lines = [
        f"matched {report.total_matched} pairs; "
        f"{report.unmatched_gold} gold matches still missed",
        "",
        f"{'rule':14s} {'matched':>8s} {'gold':>6s} {'precision':>10s}",
    ]
    for quality in report.worst_rules(limit):
        lines.append(
            f"{quality.rule_name:14s} {quality.matched:8d} "
            f"{quality.gold_matched:6d} {quality.precision:10.3f}"
        )
    idle = report.idle_rules()
    if idle:
        preview = ", ".join(idle[:8]) + ("..." if len(idle) > 8 else "")
        lines.append(f"\n{len(idle)} rules matched nothing: {preview}")
    return "\n".join(lines)
