"""Matching-quality evaluation: metrics, samples, and error listings."""

from .metrics import (
    Confusion,
    confusion,
    false_negatives,
    false_positives,
    precision_recall_f1,
)
from .sampling import stratified_sample, uniform_sample
from .debug_report import DebugReport, RuleQuality, build_report, render_report
from .suggest import Suggestion, suggest_relaxations, suggest_tightenings

__all__ = [
    "Confusion",
    "confusion",
    "precision_recall_f1",
    "false_positives",
    "false_negatives",
    "uniform_sample",
    "stratified_sample",
    "Suggestion",
    "suggest_tightenings",
    "suggest_relaxations",
    "DebugReport",
    "RuleQuality",
    "build_report",
    "render_report",
]
