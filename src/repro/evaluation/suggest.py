"""Edit suggestions — the interactive face of the refinement vocabulary.

Historically this module owned its own candidate generation; that logic
now lives in :mod:`repro.refine.edits`, shared with the automated
refinement search (``repro.refine``) so there is exactly one edit
vocabulary and one scoring/dedupe implementation.  What remains here is
the interactive ranking policy: generate, sort by predicted score, keep
the best edit per (rule, slot), truncate to a handful the analyst can
actually read.

Public API is unchanged: :class:`Suggestion` (an alias of
:class:`repro.refine.edits.CandidateEdit`), :func:`suggest_tightenings`,
and :func:`suggest_relaxations`.
"""

from __future__ import annotations

from typing import List, Set

from ..core.state import MatchState
from ..data.pairs import PairId
from ..refine.edits import (
    CandidateEdit as Suggestion,
    rank_edits,
    relax_edits,
    tighten_edits,
)

__all__ = ["Suggestion", "suggest_tightenings", "suggest_relaxations"]


def suggest_tightenings(
    state: MatchState,
    gold: Set[PairId],
    max_suggestions: int = 5,
) -> List[Suggestion]:
    """Rank tighten edits that remove false positives.

    Only pairs attributed to a rule count against it — with early exit
    those are exactly the pairs the rule is *responsible* for, and
    exactly the set Algorithm 7 will re-examine.
    """
    return rank_edits(
        tighten_edits(state, gold), per_slot=True, limit=max_suggestions
    )


def suggest_relaxations(
    state: MatchState,
    gold: Set[PairId],
    max_suggestions: int = 5,
    risk_sample: int = 500,
) -> List[Suggestion]:
    """Rank relax edits that recover false negatives.

    A false negative is recoverable through rule r by relaxing slot s iff
    s's predicate is r's *only* failing predicate for that pair.  The
    risk estimate replays the same relaxation over (a sample of) the
    unmatched non-gold pairs.
    """
    return rank_edits(
        relax_edits(state, gold, risk_sample=risk_sample),
        per_slot=True,
        limit=max_suggestions,
    )
