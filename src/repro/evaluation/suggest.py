"""Edit suggestions — closing the paper's debugging loop automatically.

The paper's workflow (its Figure 1) leaves "examine results → decide the
edit" to the analyst.  This module automates the *candidate generation*
half of that decision: given the current :class:`MatchState` and gold
labels (in practice, the analyst's labeled sample), it proposes concrete
:class:`~repro.core.changes.Change` objects ranked by predicted effect —
the natural next step the paper's §8 gestures at ("integrating the
techniques presented here with a full system").

Two generators:

* :func:`suggest_tightenings` — for rules that matched false positives:
  for every predicate slot, scan the memoized feature values of that
  rule's matched pairs and propose the threshold that removes the most
  false positives per lost true positive (Algorithm 7 applies the result
  in milliseconds).
* :func:`suggest_relaxations` — for false negatives blocked by a single
  predicate of some rule: propose relaxing that predicate just enough to
  admit them, with the number of *non-gold* pairs that same relaxation
  would admit as the risk estimate (Algorithm 8 applies it).

All value reads go through the state's memo; values that matching never
computed (early exit) are computed and memoized here, so suggestion cost
is itself incremental.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.changes import Change, RelaxPredicate, TightenPredicate
from ..core.rules import Predicate, Rule
from ..core.state import MatchState
from ..data.pairs import PairId


@dataclass
class Suggestion:
    """One ranked edit proposal."""

    change: Change
    #: predicted newly-correct pairs (FPs removed / FNs recovered)
    predicted_gain: int
    #: predicted newly-wrong pairs (TPs lost / FPs admitted)
    predicted_cost: int

    @property
    def score(self) -> float:
        """Gain discounted by cost; ties favour cheaper edits."""
        return self.predicted_gain - 2.0 * self.predicted_cost

    def describe(self) -> str:
        return (
            f"{self.change.describe()}  "
            f"(+{self.predicted_gain} fixed, -{self.predicted_cost} broken)"
        )

    def __repr__(self) -> str:
        return f"Suggestion({self.describe()})"


def _feature_value(state: MatchState, pair_index: int, predicate: Predicate) -> float:
    """Memo-first feature read (computes + memoizes on miss)."""
    cached = state.memo.get(pair_index, predicate.feature.name)
    if cached is not None:
        return cached
    pair = state.candidates[pair_index]
    value = predicate.feature.compute(pair.record_a, pair.record_b)
    state.memo.put(pair_index, predicate.feature.name, value)
    return value


def _stricter_candidates(
    predicate: Predicate, good_values: Sequence[float], bad_values: Sequence[float]
) -> List[Tuple[float, int, int]]:
    """Candidate stricter thresholds with their (fp_removed, tp_lost).

    For a lower-bound predicate, raising the threshold to just above a
    value excludes every pair at or below it; symmetric for upper bounds.
    Candidates are the distinct bad-pair values (each is the cheapest
    threshold that excludes that pair).
    """
    lower_bound = predicate.op in (">=", ">")
    results = []
    for pivot in sorted(set(bad_values)):
        if lower_bound:
            threshold = round(pivot + 1e-6, 6)
            if threshold <= predicate.threshold:
                continue
            removed = sum(1 for value in bad_values if value < threshold)
            lost = sum(1 for value in good_values if value < threshold)
        else:
            threshold = round(pivot - 1e-6, 6)
            if threshold >= predicate.threshold:
                continue
            removed = sum(1 for value in bad_values if value > threshold)
            lost = sum(1 for value in good_values if value > threshold)
        if removed > 0:
            results.append((threshold, removed, lost))
    return results


def suggest_tightenings(
    state: MatchState,
    gold: Set[PairId],
    max_suggestions: int = 5,
) -> List[Suggestion]:
    """Rank tighten edits that remove false positives.

    Only pairs attributed to a rule count against it — with early exit
    those are exactly the pairs the rule is *responsible* for, and
    exactly the set Algorithm 7 will re-examine.
    """
    by_rule: Dict[str, Tuple[List[int], List[int]]] = defaultdict(
        lambda: ([], [])
    )
    for pair_index in state.matched_indices():
        rule_name = state.function.rules[int(state.attribution[pair_index])].name
        is_gold = state.candidates[pair_index].pair_id in gold
        by_rule[rule_name][0 if is_gold else 1].append(pair_index)

    suggestions: List[Suggestion] = []
    for rule_name, (true_positive_pairs, false_positive_pairs) in by_rule.items():
        if not false_positive_pairs:
            continue
        rule = state.function.rule(rule_name)
        for predicate in rule.predicates:
            good_values = [
                _feature_value(state, index, predicate)
                for index in true_positive_pairs
            ]
            bad_values = [
                _feature_value(state, index, predicate)
                for index in false_positive_pairs
            ]
            for threshold, removed, lost in _stricter_candidates(
                predicate, good_values, bad_values
            ):
                suggestions.append(
                    Suggestion(
                        change=TightenPredicate(
                            rule_name, predicate.slot, threshold
                        ),
                        predicted_gain=removed,
                        predicted_cost=lost,
                    )
                )
    suggestions.sort(key=lambda item: (-item.score, item.change.describe()))
    return _dedupe_by_slot(suggestions)[:max_suggestions]


def suggest_relaxations(
    state: MatchState,
    gold: Set[PairId],
    max_suggestions: int = 5,
    risk_sample: int = 500,
) -> List[Suggestion]:
    """Rank relax edits that recover false negatives.

    A false negative is recoverable through rule r by relaxing slot s iff
    s's predicate is r's *only* failing predicate for that pair.  The
    risk estimate replays the same relaxation over (a sample of) the
    unmatched non-gold pairs.
    """
    false_negative_indices = [
        index
        for index in state.unmatched_indices()
        if state.candidates[index].pair_id in gold
    ]
    if not false_negative_indices:
        return []

    # (rule, slot) -> list of feature values needed to admit each FN.
    needed: Dict[Tuple[str, str], List[float]] = defaultdict(list)
    for pair_index in false_negative_indices:
        for rule in state.function.rules:
            failing: List[Predicate] = []
            for predicate in rule.predicates:
                value = _feature_value(state, pair_index, predicate)
                if not predicate.evaluate(value):
                    failing.append(predicate)
                if len(failing) > 1:
                    break
            if len(failing) == 1:
                predicate = failing[0]
                needed[(rule.name, predicate.slot)].append(
                    _feature_value(state, pair_index, predicate)
                )

    unmatched_non_gold = [
        index
        for index in state.unmatched_indices()
        if state.candidates[index].pair_id not in gold
    ][:risk_sample]

    suggestions: List[Suggestion] = []
    for (rule_name, slot), values in needed.items():
        rule = state.function.rule(rule_name)
        predicate = rule.predicate_by_slot(slot)
        lower_bound = predicate.op in (">=", ">")
        target = min(values) if lower_bound else max(values)
        threshold = round(target - 1e-6, 6) if lower_bound else round(target + 1e-6, 6)
        relaxed = predicate.with_threshold(threshold)
        if not predicate.is_stricter_than(relaxed):
            continue  # no actual relaxation possible (already at bound)
        gain = sum(1 for value in values if relaxed.evaluate(value))
        # Risk: unmatched non-gold pairs the relaxed rule would now admit.
        risk = 0
        others = [p for p in rule.predicates if p.slot != slot]
        for pair_index in unmatched_non_gold:
            value = _feature_value(state, pair_index, predicate)
            if not relaxed.evaluate(value) or predicate.evaluate(value):
                continue
            if all(
                other.evaluate(_feature_value(state, pair_index, other))
                for other in others
            ):
                risk += 1
        suggestions.append(
            Suggestion(
                change=RelaxPredicate(rule_name, slot, threshold),
                predicted_gain=gain,
                predicted_cost=risk,
            )
        )
    suggestions.sort(key=lambda item: (-item.score, item.change.describe()))
    return _dedupe_by_slot(suggestions)[:max_suggestions]


def _dedupe_by_slot(suggestions: List[Suggestion]) -> List[Suggestion]:
    """Keep only the best suggestion per (rule, slot)."""
    seen: Set[Tuple[str, str]] = set()
    kept: List[Suggestion] = []
    for suggestion in suggestions:
        change = suggestion.change
        key = (change.rule_name, change.slot)
        if key in seen:
            continue
        seen.add(key)
        kept.append(suggestion)
    return kept
