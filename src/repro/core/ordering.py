"""Rule/predicate ordering optimizers (paper §5).

Orderings never change *what* a DNF matching function computes — only how
fast early exit + memoing get there.  Every optimizer here therefore
returns a **new, reordered MatchingFunction** that is semantically
equivalent to its input (a property test enforces this), so matchers stay
ordering-agnostic.

Implemented orderings:

* :func:`random_ordering` — the baseline of Figure 3C.
* :func:`lemma3_predicate_order` — within-rule order: feature groups by
  ``(sel-1)/cost`` (Lemma 3), predicates inside a group by ascending
  selectivity (Lemma 2).
* :func:`independent_ordering` — Lemma 1 + Theorem 1, the optimal order
  *if* predicates/rules were independent and memoing were off.
* :func:`greedy_cost_ordering` — Algorithm 5: repeatedly pick the rule
  with the minimum memo-aware expected cost.
* :func:`greedy_reduction_ordering` — Algorithm 6: repeatedly pick the
  rule whose execution most reduces the expected cost of the rules that
  share its features.
* :func:`brute_force_ordering` — exhaustive search over rule permutations
  (for ≤ ``max_rules``); the yardstick for greedy-vs-optimal gaps the
  paper's NP-hardness discussion motivates.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import EstimationError, ReproError
from .cost_model import (
    Estimates,
    function_cost_with_memo,
    group_cost,
    group_predicates,
    rule_cost,
    rule_cost_no_memo,
    update_alpha,
)
from .rules import MatchingFunction, Predicate, Rule


def lemma3_predicate_order(rule: Rule, estimates: Estimates) -> Rule:
    """Reorder one rule's predicates per Lemma 3 (groups) + Lemma 2 (within).

    Group rank is ``(sel(group) - 1) / cost(group)`` ascending — the most
    selective-per-unit-cost group goes first, maximizing the chance of a
    cheap early exit.
    """
    groups = group_predicates(rule, estimates)

    def rank(group) -> float:
        cost = group_cost(group, estimates)
        if cost <= 0.0:
            # Free and selective sorts to the absolute front.
            return float("-inf") if group.selectivity < 1.0 else 0.0
        return (group.selectivity - 1.0) / cost

    ordered: List[Predicate] = []
    for group in sorted(groups, key=rank):
        ordered.extend(group.predicates)  # already Lemma-2 ordered
    return rule.with_predicates(ordered)


def _with_lemma3_predicates(
    function: MatchingFunction, estimates: Estimates
) -> List[Rule]:
    return [lemma3_predicate_order(rule, estimates) for rule in function.rules]


def random_ordering(function: MatchingFunction, seed: int = 0) -> MatchingFunction:
    """Uniformly random rule order and per-rule predicate orders."""
    rng = random.Random(seed)
    rules = list(function.rules)
    rng.shuffle(rules)
    shuffled: List[Rule] = []
    for rule in rules:
        predicates = list(rule.predicates)
        rng.shuffle(predicates)
        shuffled.append(rule.with_predicates(predicates))
    return MatchingFunction(shuffled)


def independent_ordering(
    function: MatchingFunction, estimates: Estimates
) -> MatchingFunction:
    """Lemma 1 + Theorem 1: the provably optimal order under independence
    (and without memoing).

    Rule rank is ``-sel(r) / cost(r)`` ascending — unselective-but-cheap
    rules first, because a rule that fires ends the pair's evaluation.
    """
    rules = _with_lemma3_predicates(function, estimates)

    def rank(rule: Rule) -> float:
        cost = rule_cost(rule, estimates)
        selectivity = estimates.independent_rule_selectivity(rule)
        if cost <= 0.0:
            return float("-inf") if selectivity > 0.0 else 0.0
        return -selectivity / cost

    return MatchingFunction(sorted(rules, key=rank))


def greedy_cost_ordering(
    function: MatchingFunction, estimates: Estimates
) -> MatchingFunction:
    """Algorithm 5: next rule = minimum memo-aware expected cost.

    After scheduling a rule, the memo-presence probabilities α advance via
    the §4.4.4 recurrence, so each remaining rule's cost is re-evaluated
    "assuming it immediately follows" everything scheduled so far — the
    priority-queue update of the paper's line 12, implemented as a direct
    argmin per step (same O(n²·|predicates|), simpler invariants).
    """
    remaining = _with_lemma3_predicates(function, estimates)
    alpha: Dict[str, float] = {}
    ordered: List[Rule] = []
    while remaining:
        best = min(
            remaining,
            key=lambda rule: (rule_cost(rule, estimates, alpha), rule.name),
        )
        remaining.remove(best)
        ordered.append(best)
        update_alpha(best, estimates, alpha)
    return MatchingFunction(ordered)


def _rule_feature_terms(
    rule: Rule, estimates: Estimates
) -> List[Tuple[str, float, float]]:
    """Static per-rule terms: ``(feature, prefix_sel, weight)`` per group.

    ``prefix_sel`` is sel(prev(f, r)) — the chance f's group is reached in
    r; ``weight`` is ``prefix_sel · (cost(f) − δ)`` — the expected saving
    in r per unit of memo-presence gain for f.  Both depend only on the
    (fixed, Lemma-3) predicate order, so they are computed once and the
    greedy loops become pure arithmetic.
    """
    terms: List[Tuple[str, float, float]] = []
    prefix = 1.0
    for group in group_predicates(rule, estimates):
        saved_per_fetch = estimates.cost(group.feature) - estimates.lookup_cost
        terms.append((group.feature.name, prefix, prefix * saved_per_fetch))
        prefix *= group.selectivity
    return terms


def greedy_reduction_ordering(
    function: MatchingFunction, estimates: Estimates
) -> MatchingFunction:
    """Algorithm 6: next rule = maximum expected overall cost reduction.

    reduction(r) = Σ_{r' remaining} Σ_{f ∈ r ∩ r'}
        sel(prev(f, r')) · Δ(f) · (cost(f) − δ),
    with Δ(f) = (1 − α(f)) · sel(prev(f, r)) — §5.4.1's formulas.

    Implementation: the per-rule factors are static (see
    :func:`_rule_feature_terms`), so we keep a running per-feature total
    weight ``W(f) = Σ_{r' remaining} weight(r', f)`` and compute
    ``reduction(r) = Σ_f Δ(f) · (W(f) − weight(r, f))`` in O(|features of
    r|) per candidate — O(n²) overall instead of the naive O(n³).

    Ties (common when many rules share no features) break toward the
    cheaper rule, then the rule name — without a tie-break the order of
    feature-disjoint rules would be arbitrary, and Algorithm 6 would lose
    to Algorithm 5 for the wrong reason.
    """
    remaining = _with_lemma3_predicates(function, estimates)
    terms = {rule.name: _rule_feature_terms(rule, estimates) for rule in remaining}
    total_weight: Dict[str, float] = {}
    for rule in remaining:
        for feature_name, _prefix, weight in terms[rule.name]:
            total_weight[feature_name] = total_weight.get(feature_name, 0.0) + weight

    alpha: Dict[str, float] = {}
    ordered: List[Rule] = []
    while remaining:

        def priority(rule: Rule) -> Tuple[float, float, str]:
            reduction = 0.0
            for feature_name, prefix, weight in terms[rule.name]:
                delta = (1.0 - alpha.get(feature_name, 0.0)) * prefix
                reduction += delta * (total_weight[feature_name] - weight)
            return (-reduction, rule_cost(rule, estimates, alpha), rule.name)

        best = min(remaining, key=priority)
        remaining.remove(best)
        ordered.append(best)
        for feature_name, _prefix, weight in terms[best.name]:
            total_weight[feature_name] -= weight
        update_alpha(best, estimates, alpha)
    return MatchingFunction(ordered)


def brute_force_ordering(
    function: MatchingFunction, estimates: Estimates, max_rules: int = 8
) -> MatchingFunction:
    """Exhaustive search for the rule permutation minimizing C4.

    Factorial cost — refuses more than ``max_rules`` rules.  Exists to
    measure how far the greedy heuristics are from optimal on small
    instances (the NP-hardness of §5.4 makes this the only ground truth
    available).
    """
    if len(function.rules) > max_rules:
        raise ReproError(
            f"brute force over {len(function.rules)} rules would evaluate "
            f"{len(function.rules)}! permutations; cap is {max_rules}"
        )
    rules = _with_lemma3_predicates(function, estimates)
    best_function: Optional[MatchingFunction] = None
    best_cost = float("inf")
    for permutation in itertools.permutations(rules):
        candidate = MatchingFunction(permutation)
        cost = function_cost_with_memo(candidate, estimates)
        if cost < best_cost:
            best_cost = cost
            best_function = candidate
    assert best_function is not None  # len >= 1 guaranteed by MatchingFunction
    return best_function


def _tsp(function, estimates):
    from .analysis import tsp_ordering

    return tsp_ordering(function, estimates)


#: Named registry used by benchmarks / the session API.
ORDERING_STRATEGIES = {
    "original": lambda function, estimates: function,
    "random": lambda function, estimates: random_ordering(function),
    "independent": independent_ordering,
    "algorithm5": greedy_cost_ordering,
    "algorithm6": greedy_reduction_ordering,
    "tsp": _tsp,
}


def order_function(
    function: MatchingFunction,
    estimates: Optional[Estimates],
    strategy: str = "algorithm6",
    seed: int = 0,
) -> MatchingFunction:
    """Dispatch to a named ordering strategy.

    ``estimates`` may be ``None`` only for the estimate-free strategies
    (``original``, ``random``).
    """
    if strategy == "original":
        return function
    if strategy == "random":
        return random_ordering(function, seed)
    optimizer = ORDERING_STRATEGIES.get(strategy)
    if optimizer is None:
        raise ReproError(
            f"unknown ordering strategy {strategy!r}; "
            f"expected one of {sorted(ORDERING_STRATEGIES)}"
        )
    if estimates is None:
        raise EstimationError(
            f"ordering strategy {strategy!r} requires cost estimates"
        )
    return optimizer(function, estimates)
