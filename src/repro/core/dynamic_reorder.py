"""The §5.4.3 optimization the paper describes but disables: per-pair
dynamic reordering of the *rules* based on current memo content.

The paper's static orderings are computed once, from expected costs.  At
runtime, whether a feature is memoized for a given pair is a fact, not a
probability — so a rule whose features are all cached is nearly free to
try first.  The paper skips full dynamic reordering because re-running the
greedy optimizers per rule "incurs nontrivial overhead" and only adopts
the within-rule check-cache-first variant.

:class:`DynamicRuleReorderMatcher` implements a cheap middle ground: for
each pair, rules are bucketed by the number of *uncached* features they
would need (ascending), with the static order as tie-break.  Scoring is
O(|rules| · |features per rule|) dictionary lookups per pair — far cheaper
than re-running Algorithm 5/6, yet it captures most of the benefit the
paper speculated about.  The ablation benchmark quantifies both the win
and the overhead against plain DM+EE and check-cache-first.

Because the evaluation order now differs per pair, match *attribution* is
no longer "first rule in the static order" — so this matcher refuses a
trace recorder: incremental matching (§6) depends on the static-order
attribution invariant.  Use it for one-shot batch runs, not as the engine
under a :class:`~repro.core.session.DebugSession`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import MatchingError
from .matchers import Matcher, PairEvaluator
from .memo import FeatureMemo
from .rules import MatchingFunction, Rule


class DynamicRuleReorderMatcher(Matcher):
    """DM+EE with per-pair rule reordering by memo residency."""

    strategy_name = "dynamic_reorder"

    def __init__(
        self,
        memo: Optional[FeatureMemo] = None,
        memo_backend: str = "array",
        check_cache_first: bool = True,
        kernels=None,
    ):
        if memo_backend not in ("array", "hash"):
            raise MatchingError(
                f"memo_backend must be 'array' or 'hash', got {memo_backend!r}"
            )
        self.memo = memo
        self.memo_backend = memo_backend
        self.check_cache_first = check_cache_first
        self.kernels = kernels
        self.last_memo: Optional[FeatureMemo] = memo

    def _make_memo(self, function: MatchingFunction, n_pairs: int) -> FeatureMemo:
        from .memo import ArrayMemo, HashMemo

        names = [feature.name for feature in function.features()]
        if self.memo_backend == "array":
            return ArrayMemo(n_pairs, names)
        return HashMemo(n_pairs, names)

    def _run(self, function, candidates, labels, stats) -> None:
        memo = self.memo if self.memo is not None else self._make_memo(
            function, len(candidates)
        )
        self.last_memo = memo
        evaluator = PairEvaluator(
            stats,
            memo=memo,
            check_cache_first=self.check_cache_first,
            kernels=self.kernels,
        )
        # Pre-extract each rule's distinct feature names once.
        rule_features: List[Tuple[Rule, Tuple[str, ...]]] = [
            (rule, tuple(feature.name for feature in rule.features()))
            for rule in function.rules
        ]
        for pair in candidates:
            pair_index = pair.index
            scored: List[Tuple[int, int, Rule]] = []
            for static_position, (rule, feature_names) in enumerate(rule_features):
                uncached = 0
                for name in feature_names:
                    if not memo.contains(pair_index, name):
                        uncached += 1
                scored.append((uncached, static_position, rule))
            scored.sort(key=lambda item: (item[0], item[1]))
            matched = False
            for _uncached, _position, rule in scored:
                if evaluator.rule_true(pair, rule):
                    matched = True
                    break
            labels[pair_index] = matched
