"""Instrumentation counters for matching runs.

The paper's headline observation (§1, citing Benjelloun et al.) is that
*similarity computations dominate matching time*.  Wall-clock comparisons
are therefore noisy proxies for what the algorithms actually change: how
many features get computed versus looked up.  Every matcher fills in a
:class:`MatchStats`, and the test suite asserts on these counters — they
are deterministic on any host, unlike time.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class WorkerTiming:
    """Timing record of one parallel chunk execution (see :mod:`repro.parallel`).

    ``attempts`` counts executions including retries; ``fallback`` is true
    when the chunk ultimately ran serially in the parent process.
    """

    chunk_id: int
    worker_pid: int
    pairs: int
    elapsed_seconds: float
    attempts: int = 1
    fallback: bool = False

    def summary(self) -> str:
        where = "parent" if self.fallback else f"pid {self.worker_pid}"
        retried = f", {self.attempts} attempts" if self.attempts > 1 else ""
        return (
            f"chunk {self.chunk_id}: {self.pairs} pairs in "
            f"{self.elapsed_seconds * 1000:.1f}ms ({where}{retried})"
        )


@dataclass
class MatchStats:
    """Counters for one matching (or incremental re-matching) run."""

    #: similarity values computed from scratch (the expensive operation)
    feature_computations: int = 0
    #: similarity values served from the memo (cost δ)
    memo_hits: int = 0
    #: predicate comparisons performed
    predicate_evaluations: int = 0
    #: predicates decided from cheap size bounds without computing the
    #: feature (kernel layer; disjoint from predicate_evaluations)
    bound_skips: int = 0
    #: rules whose evaluation was started
    rule_evaluations: int = 0
    #: candidate pairs examined
    pairs_evaluated: int = 0
    #: pairs labeled as matches
    pairs_matched: int = 0
    #: wall-clock seconds of the run (0 until the matcher stamps it)
    elapsed_seconds: float = 0.0
    #: record-level deltas applied (streaming runs only)
    deltas_applied: int = 0
    #: candidate pairs gained from blocking under data deltas
    pairs_gained: int = 0
    #: candidate pairs lost from blocking under data deltas
    pairs_lost: int = 0
    #: surviving pairs whose memo rows were evicted by a record update
    pairs_invalidated: int = 0
    #: per-feature computation counts (feature name -> count)
    computations_by_feature: Counter = field(default_factory=Counter)
    #: wall-clock seconds by named phase (e.g. "partition", "execute");
    #: serial matchers leave this empty, the parallel executor fills it in.
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: per-chunk timing records of a parallel run (empty for serial runs)
    worker_timings: List[WorkerTiming] = field(default_factory=list)

    def record_computation(self, feature_name: str) -> None:
        self.feature_computations += 1
        self.computations_by_feature[feature_name] += 1

    def record_hit(self) -> None:
        self.memo_hits += 1

    @property
    def feature_accesses(self) -> int:
        """Total feature reads (computations + memo hits)."""
        return self.feature_computations + self.memo_hits

    @property
    def hit_rate(self) -> float:
        """Fraction of feature reads served by the memo."""
        accesses = self.feature_accesses
        return self.memo_hits / accesses if accesses else 0.0

    def cost_units(self, feature_costs: Dict[str, float], lookup_cost: float) -> float:
        """Model-cost of this run given per-feature costs and δ.

        This is the bridge between measured runs and the §4.4 cost model:
        plugging the estimator's costs into the observed counters yields
        the "actual" curve of Figure 5A in model units.
        """
        computed = sum(
            feature_costs.get(name, 0.0) * count
            for name, count in self.computations_by_feature.items()
        )
        return computed + self.memo_hits * lookup_cost

    def merged_with(self, other: "MatchStats") -> "MatchStats":
        """Sum of two *sequential* stats objects (session/batch history).

        Everything adds: work counters, wall-clock, per-phase seconds
        (the runs happened one after another, so their clocks accumulate),
        and per-chunk timing records concatenate in order — a streaming
        batch that re-matched on the pool keeps its worker accounting
        when batches are totaled.  Use :meth:`merge` for concurrent
        (parallel-chunk) semantics where clocks take the max instead.
        """
        merged = MatchStats(
            feature_computations=self.feature_computations + other.feature_computations,
            memo_hits=self.memo_hits + other.memo_hits,
            predicate_evaluations=self.predicate_evaluations + other.predicate_evaluations,
            bound_skips=self.bound_skips + other.bound_skips,
            rule_evaluations=self.rule_evaluations + other.rule_evaluations,
            pairs_evaluated=self.pairs_evaluated + other.pairs_evaluated,
            pairs_matched=self.pairs_matched + other.pairs_matched,
            elapsed_seconds=self.elapsed_seconds + other.elapsed_seconds,
            deltas_applied=self.deltas_applied + other.deltas_applied,
            pairs_gained=self.pairs_gained + other.pairs_gained,
            pairs_lost=self.pairs_lost + other.pairs_lost,
            pairs_invalidated=self.pairs_invalidated + other.pairs_invalidated,
        )
        merged.computations_by_feature = (
            self.computations_by_feature + other.computations_by_feature
        )
        for phases in (self.phase_seconds, other.phase_seconds):
            for phase, seconds in phases.items():
                merged.phase_seconds[phase] = (
                    merged.phase_seconds.get(phase, 0.0) + seconds
                )
        merged.worker_timings = [*self.worker_timings, *other.worker_timings]
        return merged

    def merge(self, other: "MatchStats") -> "MatchStats":
        """Combine stats of two *concurrent* runs (parallel-chunk semantics).

        Work counters sum — every computation happened somewhere — but
        wall-clock takes the **max** per phase (and overall): concurrent
        chunks overlap in time, so summing their clocks would overstate the
        run by up to the worker count.  Use :meth:`merged_with` for the
        sequential (session-history) semantics where clocks add up.
        """
        merged = MatchStats(
            feature_computations=self.feature_computations + other.feature_computations,
            memo_hits=self.memo_hits + other.memo_hits,
            predicate_evaluations=self.predicate_evaluations + other.predicate_evaluations,
            bound_skips=self.bound_skips + other.bound_skips,
            rule_evaluations=self.rule_evaluations + other.rule_evaluations,
            pairs_evaluated=self.pairs_evaluated + other.pairs_evaluated,
            pairs_matched=self.pairs_matched + other.pairs_matched,
            elapsed_seconds=max(self.elapsed_seconds, other.elapsed_seconds),
            deltas_applied=self.deltas_applied + other.deltas_applied,
            pairs_gained=self.pairs_gained + other.pairs_gained,
            pairs_lost=self.pairs_lost + other.pairs_lost,
            pairs_invalidated=self.pairs_invalidated + other.pairs_invalidated,
        )
        merged.computations_by_feature = (
            self.computations_by_feature + other.computations_by_feature
        )
        for phases in (self.phase_seconds, other.phase_seconds):
            for phase, seconds in phases.items():
                merged.phase_seconds[phase] = max(
                    merged.phase_seconds.get(phase, 0.0), seconds
                )
        merged.worker_timings = sorted(
            [*self.worker_timings, *other.worker_timings],
            key=lambda timing: timing.chunk_id,
        )
        return merged

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"pairs={self.pairs_evaluated} matched={self.pairs_matched} "
            f"computed={self.feature_computations} hits={self.memo_hits} "
            f"preds={self.predicate_evaluations} "
            f"time={self.elapsed_seconds * 1000:.1f}ms"
        )

    def delta_summary(self) -> str:
        """One-line digest of a streaming batch application."""
        return (
            f"deltas={self.deltas_applied} +pairs={self.pairs_gained} "
            f"-pairs={self.pairs_lost} invalidated={self.pairs_invalidated} "
            f"rematched={self.pairs_evaluated} matched={self.pairs_matched} "
            f"computed={self.feature_computations} hits={self.memo_hits} "
            f"time={self.elapsed_seconds * 1000:.2f}ms"
        )
