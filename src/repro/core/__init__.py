"""Core of the reproduction: the rule language, matchers, cost model,
ordering optimizers, incremental matching, and the debugging session."""

from .changes import (
    AddPredicate,
    AddRule,
    Change,
    RelaxPredicate,
    RemovePredicate,
    RemoveRule,
    TightenPredicate,
)
from .cost_model import (
    CALIBRATED_LOOKUP_COST,
    CALIBRATED_TIER_COSTS,
    CostEstimator,
    Estimates,
    PredicateGroup,
    function_cost_no_memo,
    function_cost_with_memo,
    group_predicates,
    per_pair_cost,
    precompute_cost,
    predicted_runtime,
    rudimentary_cost,
    rule_cost,
    rule_cost_no_memo,
    update_alpha,
)
from .incremental import (
    IncrementalResult,
    apply_add_rule,
    apply_change,
    apply_loosening,
    apply_remove_rule,
    apply_strictening,
)
from .matchers import (
    DynamicMemoMatcher,
    EarlyExitMatcher,
    Matcher,
    MatchResult,
    PairEvaluator,
    PrecomputeMatcher,
    RudimentaryMatcher,
    TraceLog,
)
from .memo import ArrayMemo, FeatureMemo, HashMemo, ValueCache
from .ordering import (
    ORDERING_STRATEGIES,
    brute_force_ordering,
    greedy_cost_ordering,
    greedy_reduction_ordering,
    independent_ordering,
    lemma3_predicate_order,
    order_function,
    random_ordering,
)
from .parser import (
    format_function,
    format_predicate,
    format_rule,
    parse_function,
    parse_rule,
)
from .rules import Feature, MatchingFunction, Predicate, Rule
from .analysis import (
    describe_function,
    feature_frequencies,
    feature_sharing_graph,
    following_cost,
    predicate_histogram,
    sharing_summary,
    tsp_ordering,
)
from .dynamic_reorder import DynamicRuleReorderMatcher
from .validation import Finding, lint_function
from .persistence import candidate_fingerprint, load_state, save_state
from .session import DebugSession, PairExplanation, PredicateTrace, RuleTrace
from .state import MatchState, StateCheckpoint
from .stats import MatchStats, WorkerTiming

__all__ = [
    # rule language
    "Feature", "Predicate", "Rule", "MatchingFunction",
    "parse_function", "parse_rule",
    "format_function", "format_rule", "format_predicate",
    # memos
    "FeatureMemo", "ArrayMemo", "HashMemo", "ValueCache",
    # matchers
    "MatchStats", "WorkerTiming", "Matcher", "MatchResult", "PairEvaluator",
    "RudimentaryMatcher", "EarlyExitMatcher", "PrecomputeMatcher",
    "DynamicMemoMatcher", "TraceLog",
    "DynamicRuleReorderMatcher",
    # cost model
    "CostEstimator", "Estimates", "PredicateGroup", "group_predicates",
    "rule_cost", "rule_cost_no_memo", "update_alpha",
    "function_cost_no_memo", "function_cost_with_memo",
    "rudimentary_cost", "precompute_cost", "per_pair_cost",
    "predicted_runtime",
    "CALIBRATED_TIER_COSTS", "CALIBRATED_LOOKUP_COST",
    # ordering
    "random_ordering", "independent_ordering", "lemma3_predicate_order",
    "greedy_cost_ordering", "greedy_reduction_ordering",
    "brute_force_ordering", "order_function", "ORDERING_STRATEGIES",
    "tsp_ordering", "following_cost", "feature_frequencies",
    "predicate_histogram", "feature_sharing_graph", "sharing_summary",
    "describe_function",
    "lint_function", "Finding",
    # incremental
    "Change", "AddPredicate", "RemovePredicate", "TightenPredicate",
    "RelaxPredicate", "AddRule", "RemoveRule",
    "MatchState", "StateCheckpoint", "IncrementalResult", "apply_change",
    "apply_strictening", "apply_loosening", "apply_remove_rule",
    "apply_add_rule",
    # session
    "DebugSession", "PairExplanation", "RuleTrace", "PredicateTrace",
    # persistence
    "save_state", "load_state", "candidate_fingerprint",
]
