"""Materialized matching state — what incremental matching remembers.

§6.1 of the paper lists exactly three artifacts to materialize between
debugging iterations, and :class:`MatchState` stores exactly those:

* **the feature memo** — every similarity value computed so far (lazy, so
  only what some rule actually needed);
* **per rule**: a bitmap of the pairs the rule matched;
* **per predicate**: a bitmap of the pairs on which it evaluated false.

Plus the current match labels.  The bitmaps are *observational*: early
exit means many (pair, rule/predicate) outcomes are simply never computed,
so a clear bit means "not observed false/matched", never "observed
true/unmatched".  Every incremental algorithm in
:mod:`repro.core.incremental` relies only on set bits, which is what makes
them sound.

Attribution detail: with inter-rule early exit, a matched pair's bitmap
bit is set on the *first* true rule only — which is exactly the invariant
Algorithm 7's fall-through uses (all earlier rules were observed false,
all later rules unobserved).

``MatchState`` implements the matcher's ``TraceRecorder`` protocol, so the
initial full run and all incremental re-evaluations feed the same bitmaps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.pairs import CandidateSet
from ..errors import StateError
from .matchers import DynamicMemoMatcher, MatchResult
from .memo import ArrayMemo, FeatureMemo, HashMemo
from .rules import MatchingFunction
from .stats import MatchStats

#: Key of a predicate bitmap: (rule name, predicate slot).
SlotKey = Tuple[str, str]


@dataclass(frozen=True)
class StateCheckpoint:
    """Everything a rule edit can change, captured for rollback.

    Produced by :meth:`MatchState.checkpoint`, consumed (repeatedly — a
    checkpoint is never invalidated by restoring it) by
    :meth:`MatchState.restore`.  ``memo_snapshot`` is ``None`` unless the
    checkpoint was taken with ``include_memo=True``; see
    :meth:`MatchState.checkpoint` for why memo capture is optional.
    """

    function: "MatchingFunction"
    labels: np.ndarray
    attribution: np.ndarray
    rule_matched: Dict[str, np.ndarray]
    predicate_false: Dict[SlotKey, np.ndarray]
    memo_snapshot: Optional[object] = None

    def nbytes(self) -> int:
        """Approximate bytes held by the checkpoint's copies."""
        total = int(self.labels.nbytes) + int(self.attribution.nbytes)
        total += sum(int(b.nbytes) for b in self.rule_matched.values())
        total += sum(int(b.nbytes) for b in self.predicate_false.values())
        return total


class MatchState:
    """Matching state for one (function, candidate set) debugging session."""

    def __init__(
        self,
        function: MatchingFunction,
        candidates: CandidateSet,
        memo: FeatureMemo,
        check_cache_first: bool = False,
        kernels=None,
    ):
        self.function = function
        self.candidates = candidates
        self.memo = memo
        self.check_cache_first = check_cache_first
        # Optional repro.kernels.FeatureKernels shared by every evaluator
        # built over this state (incremental updates, streaming re-match).
        self.kernels = kernels
        self.labels = np.zeros(len(candidates), dtype=bool)
        self._rule_matched: Dict[str, np.ndarray] = {}
        self._predicate_false: Dict[SlotKey, np.ndarray] = {}
        # Rule-position attribution per pair (-1 = unmatched).  Maintains
        # the invariant every "only rules after r" optimization rests on:
        # all rules strictly before a pair's attributed rule are currently
        # false for that pair.  See repro.core.incremental's module
        # docstring for why relax edits must actively preserve this.
        self.attribution = np.full(len(candidates), -1, dtype=np.int32)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_initial_run(
        cls,
        function: MatchingFunction,
        candidates: CandidateSet,
        memo_backend: str = "array",
        memo: Optional[FeatureMemo] = None,
        check_cache_first: bool = False,
        profiler=None,
        kernels=None,
        engine: str = "scalar",
        metrics=None,
    ) -> Tuple["MatchState", MatchResult]:
        """Run DM+EE once, materializing state as a side effect.

        This is the "first iteration is slow" of the paper's Figure 5C —
        the memo is cold and every bitmap is built from scratch.
        ``profiler`` (a :class:`repro.observability.Profiler`) samples
        observed costs during the run without touching the counters.

        ``engine="columnar"`` runs the same DM+EE semantics through the
        set-at-a-time :class:`~repro.engine.ColumnarMatcher` (bit-identical
        labels, counters, and bitmaps); ``metrics`` (a registry) then
        receives the ``engine.*`` counters.
        """
        if memo is None:
            names = [feature.name for feature in function.features()]
            memo = (
                ArrayMemo(len(candidates), names)
                if memo_backend == "array"
                else HashMemo(len(candidates), names)
            )
        state = cls(function, candidates, memo, check_cache_first, kernels=kernels)
        if engine == "columnar":
            from ..engine import ColumnarMatcher  # local: avoids an import cycle

            matcher = ColumnarMatcher(
                memo=memo,
                check_cache_first=check_cache_first,
                recorder=state,
                profiler=profiler,
                kernels=kernels,
            )
        else:
            matcher = DynamicMemoMatcher(
                memo=memo,
                check_cache_first=check_cache_first,
                recorder=state,
                profiler=profiler,
                kernels=kernels,
            )
        result = matcher.run(function, candidates)
        state.labels = result.labels.copy()
        if engine == "columnar" and metrics is not None:
            matcher.last_executor.report_metrics(metrics)
        return state, result

    # ------------------------------------------------------------------
    # TraceRecorder protocol (fed by matchers and incremental updates)
    # ------------------------------------------------------------------

    def record_rule_match(self, pair_index: int, rule_name: str) -> None:
        self._rule_bitmap(rule_name)[pair_index] = True
        self.attribution[pair_index] = self.function.rule_index(rule_name)

    def record_predicate_false(
        self, pair_index: int, rule_name: str, slot: str
    ) -> None:
        self._slot_bitmap((rule_name, slot))[pair_index] = True

    # Bulk recorders (the columnar engine's batched writes).  Bitmaps are
    # sets, so one fancy-indexed write per batch is observationally
    # identical to the scalar per-pair calls.

    def record_rule_match_rows(self, rows, rule_name: str) -> None:
        self._rule_bitmap(rule_name)[rows] = True
        self.attribution[rows] = self.function.rule_index(rule_name)

    def record_predicate_false_rows(self, rows, rule_name: str, slot: str) -> None:
        self._slot_bitmap((rule_name, slot))[rows] = True

    def clear_rule_match_rows(self, rows, rule_name: str) -> None:
        bitmap = self._rule_matched.get(rule_name)
        if bitmap is not None:
            bitmap[rows] = False
        self.attribution[rows] = -1

    # ------------------------------------------------------------------
    # Bitmap access
    # ------------------------------------------------------------------

    def _rule_bitmap(self, rule_name: str) -> np.ndarray:
        bitmap = self._rule_matched.get(rule_name)
        if bitmap is None:
            bitmap = np.zeros(len(self.candidates), dtype=bool)
            self._rule_matched[rule_name] = bitmap
        return bitmap

    def _slot_bitmap(self, key: SlotKey) -> np.ndarray:
        bitmap = self._predicate_false.get(key)
        if bitmap is None:
            bitmap = np.zeros(len(self.candidates), dtype=bool)
            self._predicate_false[key] = bitmap
        return bitmap

    def matched_by_rule(self, rule_name: str) -> List[int]:
        """M(r): indices of pairs attributed to ``rule_name``."""
        bitmap = self._rule_matched.get(rule_name)
        if bitmap is None:
            return []
        return [int(index) for index in np.flatnonzero(bitmap)]

    def failed_predicate(self, rule_name: str, slot: str) -> List[int]:
        """U(p): indices of pairs on which the predicate was observed false."""
        bitmap = self._predicate_false.get((rule_name, slot))
        if bitmap is None:
            return []
        return [int(index) for index in np.flatnonzero(bitmap)]

    def clear_rule_match(self, pair_index: int, rule_name: str) -> None:
        bitmap = self._rule_matched.get(rule_name)
        if bitmap is not None:
            bitmap[pair_index] = False
        self.attribution[pair_index] = -1

    def clear_predicate_false(
        self, pair_index: int, rule_name: str, slot: str
    ) -> None:
        bitmap = self._predicate_false.get((rule_name, slot))
        if bitmap is not None:
            bitmap[pair_index] = False

    def drop_rule(self, rule_name: str, old_index: int) -> None:
        """Forget all bitmaps of a removed rule and shift attributions.

        ``old_index`` is the rule's position in the *pre-removal* function;
        attributions above it slide down by one so they keep pointing at
        the same rules in the post-removal function.
        """
        self._rule_matched.pop(rule_name, None)
        for key in [key for key in self._predicate_false if key[0] == rule_name]:
            del self._predicate_false[key]
        above = self.attribution > old_index
        self.attribution[above] -= 1

    def drop_predicate(self, rule_name: str, slot: str) -> None:
        """Forget a removed predicate's bitmap."""
        self._predicate_false.pop((rule_name, slot), None)

    def reset_predicate_false(self, rule_name: str, slot: str) -> None:
        """Zero a predicate's bitmap (used when a relax makes it stale)."""
        bitmap = self._predicate_false.get((rule_name, slot))
        if bitmap is not None:
            bitmap[:] = False

    # ------------------------------------------------------------------
    # Checkpoint / rollback (the refinement search's scoring loop)
    # ------------------------------------------------------------------

    def checkpoint(self, include_memo: bool = False) -> "StateCheckpoint":
        """Capture everything a rule edit can change, for :meth:`restore`.

        The captured facts are the function reference (immutable),
        labels, attribution, and both bitmap families.  The memo is *not*
        captured by default: memoized feature values depend only on the
        record pair, never on the matching function, so after a rollback
        every surviving memo entry is still correct — a deliberately
        retained warm cache that makes scoring candidate edit N+1 cheaper
        than candidate N.  ``include_memo=True`` additionally snapshots
        the memo for callers that need byte-identical accounting.

        Cost is O(pairs x allocated bitmaps) bytes of copying and no
        feature computation, which is what lets the refinement search
        score hundreds of candidate edits per second against one state.
        """
        return StateCheckpoint(
            function=self.function,
            labels=self.labels.copy(),
            attribution=self.attribution.copy(),
            rule_matched={
                name: bitmap.copy()
                for name, bitmap in self._rule_matched.items()
            },
            predicate_false={
                key: bitmap.copy()
                for key, bitmap in self._predicate_false.items()
            },
            memo_snapshot=self.memo.snapshot() if include_memo else None,
        )

    def restore(self, checkpoint: "StateCheckpoint") -> None:
        """Rewind to a :meth:`checkpoint`; the checkpoint stays reusable.

        Function, labels, attribution, and bitmaps revert exactly; the
        memo keeps entries computed since the checkpoint (sound — see
        :meth:`checkpoint`) unless the checkpoint captured it.
        """
        if len(checkpoint.labels) != len(self.candidates):
            raise StateError(
                f"checkpoint is over {len(checkpoint.labels)} pairs but the "
                f"state holds {len(self.candidates)}; checkpoints do not "
                f"survive candidate-set changes (streaming ingest)"
            )
        self.function = checkpoint.function
        self.labels = checkpoint.labels.copy()
        self.attribution = checkpoint.attribution.copy()
        self._rule_matched = {
            name: bitmap.copy()
            for name, bitmap in checkpoint.rule_matched.items()
        }
        self._predicate_false = {
            key: bitmap.copy()
            for key, bitmap in checkpoint.predicate_false.items()
        }
        if checkpoint.memo_snapshot is not None:
            self.memo.restore(checkpoint.memo_snapshot)

    # ------------------------------------------------------------------
    # Streaming support (record-level data deltas)
    # ------------------------------------------------------------------

    def forget_pairs(self, pair_indices: Sequence[int]) -> int:
        """Erase every materialized fact about the given pairs.

        Used when a record update makes its incident pairs' history stale:
        labels reset to unmatched, attribution to -1, every rule/predicate
        bit clears, and the memo rows evict.  The state stays sound —
        facts are removed, never asserted — so re-matching just those
        pairs restores full equivalence with a from-scratch run.

        Returns the number of memo entries evicted.
        """
        if len(pair_indices) == 0:
            return 0
        rows = np.asarray(pair_indices, dtype=np.int64)
        self.labels[rows] = False
        self.attribution[rows] = -1
        for bitmap in self._rule_matched.values():
            bitmap[rows] = False
        for bitmap in self._predicate_false.values():
            bitmap[rows] = False
        return self.memo.invalidate_pairs(pair_indices)

    def remapped(
        self,
        new_candidates: CandidateSet,
        old_index_of: np.ndarray,
    ) -> "MatchState":
        """A new state over ``new_candidates``, gathering surviving facts.

        ``old_index_of[i]`` is the pair's index in *this* state's candidate
        set, or ``-1`` for pairs new to ``new_candidates`` (which start
        with no facts: unmatched, unattributed, cold memo rows).  The
        function, memo backend, and ``check_cache_first`` carry over; the
        memo is rebuilt with surviving entries copied across.
        """
        if len(old_index_of) != len(new_candidates):
            raise StateError(
                f"old_index_of length {len(old_index_of)} != new candidate "
                f"count {len(new_candidates)}"
            )
        old_index_of = np.asarray(old_index_of, dtype=np.int64)
        survivors = old_index_of >= 0
        gather = old_index_of[survivors]

        if isinstance(self.memo, ArrayMemo):
            names = list(self.memo._columns)
            memo: FeatureMemo = ArrayMemo(
                len(new_candidates), names, dtype=self.memo.dtype
            )
            for name in names:
                old_column = self.memo._columns[name]
                new_column = memo._columns[name]
                memo._values[survivors, new_column] = self.memo._values[
                    gather, old_column
                ]
                memo._valid[survivors, new_column] = self.memo._valid[
                    gather, old_column
                ]
            memo._entries = int(memo._valid.sum())
        else:
            memo = type(self.memo)(len(new_candidates))
            new_index_of = {
                int(old): int(new)
                for new, old in enumerate(old_index_of)
                if old >= 0
            }
            for pair_index, feature_name, value in self.memo.items():
                target = new_index_of.get(pair_index)
                if target is not None:
                    memo.put(target, feature_name, value)

        state = MatchState(
            self.function,
            new_candidates,
            memo,
            self.check_cache_first,
            kernels=self.kernels,
        )
        state.labels[survivors] = self.labels[gather]
        state.attribution[survivors] = self.attribution[gather]
        for rule_name, bitmap in self._rule_matched.items():
            if bitmap.any():
                state._rule_bitmap(rule_name)[survivors] = bitmap[gather]
        for key, bitmap in self._predicate_false.items():
            if bitmap.any():
                state._slot_bitmap(key)[survivors] = bitmap[gather]
        return state

    # ------------------------------------------------------------------
    # Introspection / accounting
    # ------------------------------------------------------------------

    def matched_indices(self) -> List[int]:
        return [int(index) for index in np.flatnonzero(self.labels)]

    def unmatched_indices(self) -> List[int]:
        return [int(index) for index in np.flatnonzero(~self.labels)]

    def match_count(self) -> int:
        return int(self.labels.sum())

    def bitmap_count(self) -> Tuple[int, int]:
        """(rule bitmaps, predicate bitmaps) currently allocated."""
        return len(self._rule_matched), len(self._predicate_false)

    def nbytes(self) -> Dict[str, int]:
        """Memory accounting for the §7.4 experiment, by component."""
        rule_bytes = sum(bitmap.nbytes for bitmap in self._rule_matched.values())
        predicate_bytes = sum(
            bitmap.nbytes for bitmap in self._predicate_false.values()
        )
        return {
            "memo": self.memo.nbytes(),
            "rule_bitmaps": rule_bytes,
            "predicate_bitmaps": predicate_bytes,
            "labels": int(self.labels.nbytes),
            "total": self.memo.nbytes()
            + rule_bytes
            + predicate_bytes
            + int(self.labels.nbytes),
        }

    def check_soundness(self) -> None:
        """Exhaustively verify every materialized fact (test/debug aid).

        Recomputes features from scratch and checks that (a) every set
        rule-bitmap bit marks a pair the rule is truly true for, (b) every
        set predicate-false bit marks a truly false predicate, (c) every
        matched pair's attributed rule is true and all earlier rules are
        false, and (d) labels agree with the attribution array.  O(|C| ·
        |rules| · |predicates|) — never call this outside tests.
        """
        scores_cache: Dict[int, Dict[str, float]] = {}

        def score(pair_index: int, feature) -> float:
            pair_scores = scores_cache.setdefault(pair_index, {})
            value = pair_scores.get(feature.name)
            if value is None:
                pair = self.candidates[pair_index]
                value = feature.compute(pair.record_a, pair.record_b)
                pair_scores[feature.name] = value
            return value

        def rule_is_true(pair_index: int, rule) -> bool:
            return all(
                predicate.evaluate(score(pair_index, predicate.feature))
                for predicate in rule.predicates
            )

        for rule_name, bitmap in self._rule_matched.items():
            rule = self.function.rule(rule_name)
            for pair_index in np.flatnonzero(bitmap):
                if not rule_is_true(int(pair_index), rule):
                    raise StateError(
                        f"unsound rule bitmap: {rule_name} marked true for "
                        f"pair {pair_index} but evaluates false"
                    )
        for (rule_name, slot), bitmap in self._predicate_false.items():
            if rule_name not in self.function:
                raise StateError(f"stale predicate bitmap for removed rule {rule_name!r}")
            predicate = self.function.rule(rule_name).predicate_by_slot(slot)
            for pair_index in np.flatnonzero(bitmap):
                if predicate.evaluate(score(int(pair_index), predicate.feature)):
                    raise StateError(
                        f"unsound predicate bitmap: {rule_name}:{slot} marked "
                        f"false for pair {pair_index} but evaluates true"
                    )
        for pair_index in range(len(self.candidates)):
            attributed = int(self.attribution[pair_index])
            if (attributed >= 0) != bool(self.labels[pair_index]):
                raise StateError(
                    f"label/attribution disagreement on pair {pair_index}"
                )
            if attributed < 0:
                continue
            if not rule_is_true(pair_index, self.function.rules[attributed]):
                raise StateError(
                    f"pair {pair_index} attributed to false rule "
                    f"{self.function.rules[attributed].name}"
                )
            for earlier in range(attributed):
                if rule_is_true(pair_index, self.function.rules[earlier]):
                    raise StateError(
                        f"attribution invariant broken: pair {pair_index} "
                        f"attributed to rule #{attributed} but rule "
                        f"#{earlier} is true"
                    )

    def validate_against(self, reference_labels: np.ndarray) -> None:
        """Raise StateError unless labels equal a from-scratch run's.

        Used by tests and (optionally) by paranoid sessions after a burst
        of incremental edits.
        """
        if len(reference_labels) != len(self.labels):
            raise StateError("reference labels have wrong length")
        disagreements = np.flatnonzero(self.labels != reference_labels)
        if len(disagreements):
            raise StateError(
                f"incremental state diverged from scratch run on "
                f"{len(disagreements)} pairs (first: {disagreements[:5].tolist()})"
            )

    def __repr__(self) -> str:
        rules, predicates = self.bitmap_count()
        return (
            f"MatchState({self.match_count()}/{len(self.candidates)} matched, "
            f"{rules} rule bitmaps, {predicates} predicate bitmaps, "
            f"memo={len(self.memo)} entries)"
        )
