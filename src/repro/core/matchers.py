"""The five matching strategies of the paper's Figure 3.

===========================  =============================================
Class                        Paper algorithm
===========================  =============================================
:class:`RudimentaryMatcher`  Algorithm 1 — every predicate of every rule,
                             every feature computed from scratch ("R").
:class:`EarlyExitMatcher`    Algorithm 3 — early exit, no memo ("EE").
:class:`PrecomputeMatcher`   Algorithm 2 (+ early exit) — production
                             precomputation ("PPR + EE") with the default
                             feature set, full precomputation ("FPR + EE")
                             when given a feature superset.
:class:`DynamicMemoMatcher`  Algorithm 4 — early exit + dynamic memoing
                             ("DM + EE"), the paper's contribution.
===========================  =============================================

All matchers produce identical labels (a property-based test enforces it);
they differ only in *when* feature values are computed, which the
:class:`~repro.core.stats.MatchStats` counters expose.

:class:`PairEvaluator` is the shared evaluation kernel — also reused by the
incremental algorithms (§6), which re-evaluate rule fragments for affected
pairs with exactly the same memo/recording semantics as a full run.
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from ..data.pairs import CandidatePair, CandidateSet, PairId
from ..errors import MatchingError
from .memo import ArrayMemo, FeatureMemo, HashMemo, ValueCache
from .rules import Feature, MatchingFunction, Predicate, Rule
from .stats import MatchStats


class TraceRecorder(Protocol):
    """Receives the facts a matching run observes.

    Implemented by :class:`repro.core.state.MatchState` to materialize the
    §6.1 bitmaps; matchers call these hooks whenever the corresponding fact
    is *observed* (early exit means unobserved facts simply never arrive).
    """

    def record_rule_match(self, pair_index: int, rule_name: str) -> None: ...

    def record_predicate_false(
        self, pair_index: int, rule_name: str, slot: str
    ) -> None: ...


class TraceLog:
    """A :class:`TraceRecorder` that simply remembers the observed facts.

    Useful whenever the facts must outlive the run that produced them: the
    parallel executor's workers record into a ``TraceLog`` (picklable —
    plain lists of tuples) and the parent replays it into the session's
    :class:`~repro.core.state.MatchState` with each chunk's local indices
    translated back to global ones.  Replay order equals observation order,
    so a replayed state is indistinguishable from one recorded live.
    """

    __slots__ = ("rule_matches", "predicate_falses")

    def __init__(self):
        #: observed (pair_index, rule_name) match attributions, in order.
        self.rule_matches: List[Tuple[int, str]] = []
        #: observed (pair_index, rule_name, slot) false predicates, in order.
        self.predicate_falses: List[Tuple[int, str, str]] = []

    def record_rule_match(self, pair_index: int, rule_name: str) -> None:
        self.rule_matches.append((pair_index, rule_name))

    def record_predicate_false(
        self, pair_index: int, rule_name: str, slot: str
    ) -> None:
        self.predicate_falses.append((pair_index, rule_name, slot))

    # Bulk recorders (the columnar engine's batched trace writes).  Facts
    # append in ascending row order; since the bitmaps any replay target
    # materializes are sets, batching changes nothing observable.

    def record_rule_match_rows(self, rows, rule_name: str) -> None:
        self.rule_matches.extend((int(row), rule_name) for row in rows)

    def record_predicate_false_rows(self, rows, rule_name: str, slot: str) -> None:
        self.predicate_falses.extend((int(row), rule_name, slot) for row in rows)

    def replay_into(
        self, recorder: TraceRecorder, index_offset: int = 0
    ) -> None:
        """Feed every remembered fact to ``recorder``, shifting pair
        indices by ``index_offset`` (a chunk's global start position)."""
        for pair_index, rule_name, slot in self.predicate_falses:
            recorder.record_predicate_false(
                pair_index + index_offset, rule_name, slot
            )
        for pair_index, rule_name in self.rule_matches:
            recorder.record_rule_match(pair_index + index_offset, rule_name)

    def __len__(self) -> int:
        return len(self.rule_matches) + len(self.predicate_falses)

    def __repr__(self) -> str:
        return (
            f"TraceLog({len(self.rule_matches)} matches, "
            f"{len(self.predicate_falses)} false predicates)"
        )


class MatchResult:
    """Labels plus instrumentation for one matching run."""

    def __init__(self, candidates: CandidateSet, labels: np.ndarray, stats: MatchStats):
        if len(labels) != len(candidates):
            raise MatchingError(
                f"labels length {len(labels)} != candidate count {len(candidates)}"
            )
        self.candidates = candidates
        self.labels = labels
        self.stats = stats

    def matched_ids(self) -> List[PairId]:
        """Id pairs labeled as matches, in candidate order."""
        return [
            pair.pair_id for pair in self.candidates if self.labels[pair.index]
        ]

    def match_count(self) -> int:
        return int(self.labels.sum())

    def label_of(self, a_id: str, b_id: str) -> bool:
        return bool(self.labels[self.candidates.index_of(a_id, b_id)])

    def __repr__(self) -> str:
        return (
            f"MatchResult({self.match_count()}/{len(self.candidates)} matched; "
            f"{self.stats.summary()})"
        )


class PairEvaluator:
    """Evaluation kernel: feature fetch, predicate/rule/function evaluation.

    ``memo=None`` means every feature access recomputes (Algorithms 1/3);
    with a memo, first access computes and stores, later accesses hit
    (Algorithm 4).  ``check_cache_first`` applies the paper's §5.4.3
    runtime optimization: inside a rule, predicates whose features are
    already memoized for this pair are evaluated before the rest, with
    both groups keeping their static relative order.

    ``kernels`` (a :class:`repro.kernels.FeatureKernels`) routes supported
    token-based features through the record token cache — same values,
    same counters, less tokenization.  When the kernels object has
    ``use_bounds`` enabled, threshold predicates over supported features
    may additionally be decided from token-set sizes alone *before* the
    feature is computed or memoized; such decisions increment
    ``stats.bound_skips`` (not ``predicate_evaluations``) and are only
    taken when provably equal to the full evaluation's outcome.
    """

    def __init__(
        self,
        stats: MatchStats,
        memo: Optional[FeatureMemo] = None,
        recorder: Optional[TraceRecorder] = None,
        check_cache_first: bool = False,
        profiler=None,
        kernels=None,
    ):
        if check_cache_first and memo is None:
            raise MatchingError("check_cache_first requires a memo")
        self.stats = stats
        self.memo = memo
        self.recorder = recorder
        self.check_cache_first = check_cache_first
        # Optional repro.kernels.FeatureKernels; None = seed paths.
        self.kernels = kernels
        # Optional repro.observability.Profiler: samples wall-clock of
        # feature computations / rule evaluations and counts predicate
        # outcomes.  Never touches stats — with profiler=None the counters
        # and control flow are identical to the unprofiled build.
        self.profiler = profiler
        # Per-pair local view of the memo: within one pair's evaluation the
        # same feature may be referenced by hundreds of predicates across
        # rules, and a plain dict lookup is much cheaper than the backing
        # store's indexing.  Purely an access-path optimization — contents
        # always mirror the memo.
        self._local: dict = {}
        self._local_index: int = -1

    # -- feature access -------------------------------------------------

    def feature_value(self, pair: CandidatePair, feature: Feature) -> float:
        if self.memo is not None:
            if pair.index != self._local_index:
                self._local = {}
                self._local_index = pair.index
            cached = self._local.get(feature.name)
            if cached is not None:
                self.stats.memo_hits += 1
                return cached
            cached = self.memo.get(pair.index, feature.name)
            if cached is not None:
                self.stats.memo_hits += 1
                self._local[feature.name] = cached
                return cached
        profiler = self.profiler
        kernels = self.kernels
        use_kernel = kernels is not None and kernels.supports(feature)
        if profiler is None:
            if use_kernel:
                value = kernels.compute(feature, pair)
            else:
                value = feature.compute(pair.record_a, pair.record_b)
        elif profiler.sample_feature(feature.name):
            # Time the path actually taken, so observed costs reflect the
            # warm-cache reality drift detection compares against.
            started = profiler.clock()
            if use_kernel:
                value = kernels.compute(feature, pair)
            else:
                value = feature.compute(pair.record_a, pair.record_b)
            profiler.record_feature(feature.name, profiler.clock() - started)
        elif use_kernel:
            value = kernels.compute(feature, pair)
        else:
            value = feature.compute(pair.record_a, pair.record_b)
        self.stats.record_computation(feature.name)
        if self.memo is not None:
            self.memo.put(pair.index, feature.name, value)
            self._local[feature.name] = value
        return value

    # -- predicate / rule / function evaluation -------------------------

    def predicate_true(
        self, pair: CandidatePair, predicate: Predicate, rule_name: str
    ) -> bool:
        kernels = self.kernels
        if kernels is not None and kernels.use_bounds:
            feature_name = predicate.feature.name
            # A memoized value costs one lookup — cheaper than the bound
            # check, and skipping it would forfeit a guaranteed hit.
            known = (
                pair.index == self._local_index and feature_name in self._local
            ) or (
                self.memo is not None
                and self.memo.contains(pair.index, feature_name)
            )
            if not known:
                decided = kernels.try_bound(predicate, pair)
                if decided is not None:
                    self.stats.bound_skips += 1
                    if self.profiler is not None:
                        self.profiler.record_predicate(predicate.pid, decided)
                        self.profiler.record_bound_skip(predicate.pid)
                    if not decided and self.recorder is not None:
                        self.recorder.record_predicate_false(
                            pair.index, rule_name, predicate.slot
                        )
                    return decided
        value = self.feature_value(pair, predicate.feature)
        self.stats.predicate_evaluations += 1
        result = predicate.evaluate(value)
        if self.profiler is not None:
            self.profiler.record_predicate(predicate.pid, result)
        if not result and self.recorder is not None:
            self.recorder.record_predicate_false(
                pair.index, rule_name, predicate.slot
            )
        return result

    def _rule_predicate_order(
        self, pair: CandidatePair, rule: Rule
    ) -> Sequence[Predicate]:
        if not self.check_cache_first:
            return rule.predicates
        if pair.index != self._local_index:
            self._local = {}
            self._local_index = pair.index
        cached: List[Predicate] = []
        uncached: List[Predicate] = []
        for predicate in rule.predicates:
            name = predicate.feature.name
            if name in self._local or self.memo.contains(pair.index, name):
                cached.append(predicate)
            else:
                uncached.append(predicate)
        return cached + uncached

    def rule_true(self, pair: CandidatePair, rule: Rule) -> bool:
        """Evaluate one rule with intra-rule early exit."""
        self.stats.rule_evaluations += 1
        profiler = self.profiler
        if profiler is not None and profiler.sample_rule(rule.name):
            started = profiler.clock()
            result = True
            for predicate in self._rule_predicate_order(pair, rule):
                if not self.predicate_true(pair, predicate, rule.name):
                    result = False
                    break
            profiler.record_rule(rule.name, profiler.clock() - started)
            return result
        for predicate in self._rule_predicate_order(pair, rule):
            if not self.predicate_true(pair, predicate, rule.name):
                return False
        return True

    def first_matching_rule(
        self, pair: CandidatePair, rules: Iterable[Rule]
    ) -> Optional[str]:
        """First rule that is true for the pair (inter-rule early exit),
        recording the match attribution; ``None`` if no rule fires."""
        for rule in rules:
            if self.rule_true(pair, rule):
                if self.recorder is not None:
                    self.recorder.record_rule_match(pair.index, rule.name)
                return rule.name
        return None


class Matcher:
    """Base class providing the run loop scaffolding and timing."""

    strategy_name = "matcher"

    def run(self, function: MatchingFunction, candidates: CandidateSet) -> MatchResult:
        stats = MatchStats()
        labels = np.zeros(len(candidates), dtype=bool)
        started = time.perf_counter()
        self._run(function, candidates, labels, stats)
        stats.elapsed_seconds = time.perf_counter() - started
        stats.pairs_evaluated = len(candidates)
        stats.pairs_matched = int(labels.sum())
        return MatchResult(candidates, labels, stats)

    def _run(
        self,
        function: MatchingFunction,
        candidates: CandidateSet,
        labels: np.ndarray,
        stats: MatchStats,
    ) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class RudimentaryMatcher(Matcher):
    """Algorithm 1: evaluate everything, compute every feature from scratch.

    No early exit, no memo — the per-pair cost is
    ``Σ_r Σ_p cost(p)`` regardless of outcomes (the paper's C1).
    """

    strategy_name = "rudimentary"

    def _run(self, function, candidates, labels, stats) -> None:
        evaluator = PairEvaluator(stats)
        for pair in candidates:
            matched = False
            for rule in function.rules:
                stats.rule_evaluations += 1
                rule_result = True
                for predicate in rule.predicates:
                    # Deliberately no short-circuiting: Algorithm 1 treats
                    # predicates as black boxes and evaluates all of them.
                    if not evaluator.predicate_true(pair, predicate, rule.name):
                        rule_result = False
                matched = matched or rule_result
            labels[pair.index] = matched


class EarlyExitMatcher(Matcher):
    """Algorithm 3: early exit, but no memo — repeated features recompute."""

    strategy_name = "early_exit"

    def _run(self, function, candidates, labels, stats) -> None:
        evaluator = PairEvaluator(stats)
        for pair in candidates:
            labels[pair.index] = (
                evaluator.first_matching_rule(pair, function.rules) is not None
            )


class PrecomputeMatcher(Matcher):
    """Algorithm 2 (+ optional early exit): precompute, then match on lookups.

    ``features=None`` precomputes exactly the matching function's features
    — the paper's *production precomputation* (PPR), feasible only once a
    rule set is final.  Passing a feature superset models *full
    precomputation* (FPR): the analyst's whole candidate feature space is
    computed up front, including features no rule will ever use.

    ``use_value_cache=True`` shares computations between candidate pairs
    with identical attribute values (the paper's "hash table mapping pairs
    of attribute values to similarity function outputs").

    ``kernels`` (a :class:`repro.kernels.FeatureKernels`) replaces the
    per-feature-per-pair precompute loop with one batched column kernel
    per supported feature, landed via ``ArrayMemo.fill_column`` — same
    values and counters, one NumPy pass instead of a Python inner loop.
    """

    strategy_name = "precompute"

    def __init__(
        self,
        features: Optional[Sequence[Feature]] = None,
        early_exit: bool = True,
        use_value_cache: bool = False,
        kernels=None,
    ):
        self.features = list(features) if features is not None else None
        self.early_exit = early_exit
        self.use_value_cache = use_value_cache
        self.kernels = kernels

    def _run(self, function, candidates, labels, stats) -> None:
        features = self.features if self.features is not None else function.features()
        missing = {f.name for f in function.features()} - {f.name for f in features}
        if missing:
            raise MatchingError(
                f"precompute feature set lacks features used by the matching "
                f"function: {sorted(missing)}"
            )
        memo = ArrayMemo(len(candidates), [feature.name for feature in features])
        value_cache = ValueCache() if self.use_value_cache else None
        kernels = self.kernels
        for feature in features:
            use_kernel = kernels is not None and kernels.supports(feature)
            if use_kernel and value_cache is None:
                column = kernels.compute_column(feature, candidates)
                memo.fill_column(feature.name, column)
                count = len(candidates)
                stats.feature_computations += count
                stats.computations_by_feature[feature.name] += count
                continue
            for pair in candidates:
                if value_cache is not None:
                    value_a = pair.record_a.get(feature.attr_a)
                    value_b = pair.record_b.get(feature.attr_b)
                    cached = value_cache.lookup(feature.name, value_a, value_b)
                    if cached is not None:
                        stats.record_hit()
                        memo.put(pair.index, feature.name, cached)
                        continue
                    # Value-cache misses still compose with the kernel
                    # layer: a supported feature computes through the
                    # token cache (same value, fewer tokenizations)
                    # instead of silently bypassing it.
                    if use_kernel:
                        value = kernels.compute(feature, pair)
                    else:
                        value = feature.compute(pair.record_a, pair.record_b)
                    stats.record_computation(feature.name)
                    value_cache.store(feature.name, value_a, value_b, value)
                else:
                    value = feature.compute(pair.record_a, pair.record_b)
                    stats.record_computation(feature.name)
                memo.put(pair.index, feature.name, value)

        evaluator = PairEvaluator(stats, memo=memo, kernels=kernels)
        if self.early_exit:
            for pair in candidates:
                labels[pair.index] = (
                    evaluator.first_matching_rule(pair, function.rules) is not None
                )
        else:
            for pair in candidates:
                matched = False
                for rule in function.rules:
                    stats.rule_evaluations += 1
                    rule_result = True
                    for predicate in rule.predicates:
                        if not evaluator.predicate_true(pair, predicate, rule.name):
                            rule_result = False
                    matched = matched or rule_result
                labels[pair.index] = matched


class DynamicMemoMatcher(Matcher):
    """Algorithm 4: early exit + dynamic memoing — the paper's contribution.

    ``memo`` may be supplied to persist across runs (the debugging loop's
    key trick); otherwise a fresh one is created per run and exposed
    afterwards as :attr:`last_memo`.  ``recorder`` (usually a
    :class:`~repro.core.state.MatchState`) receives rule-match and
    predicate-false facts for incremental matching.
    """

    strategy_name = "dynamic_memo"

    def __init__(
        self,
        memo: Optional[FeatureMemo] = None,
        memo_backend: str = "array",
        check_cache_first: bool = False,
        recorder: Optional[TraceRecorder] = None,
        profiler=None,
        kernels=None,
    ):
        if memo_backend not in ("array", "hash"):
            raise MatchingError(
                f"memo_backend must be 'array' or 'hash', got {memo_backend!r}"
            )
        self.memo = memo
        self.memo_backend = memo_backend
        self.check_cache_first = check_cache_first
        self.recorder = recorder
        self.profiler = profiler
        self.kernels = kernels
        self.last_memo: Optional[FeatureMemo] = memo

    def _make_memo(self, function: MatchingFunction, candidates: CandidateSet) -> FeatureMemo:
        names = [feature.name for feature in function.features()]
        if self.memo_backend == "array":
            return ArrayMemo(len(candidates), names)
        return HashMemo(len(candidates), names)

    def _run(self, function, candidates, labels, stats) -> None:
        memo = self.memo if self.memo is not None else self._make_memo(function, candidates)
        self.last_memo = memo
        evaluator = PairEvaluator(
            stats,
            memo=memo,
            recorder=self.recorder,
            check_cache_first=self.check_cache_first,
            profiler=self.profiler,
            kernels=self.kernels,
        )
        for pair in candidates:
            labels[pair.index] = (
                evaluator.first_matching_rule(pair, function.rules) is not None
            )
