"""Text DSL for matching functions.

Analysts in the paper's workflow express rules like::

    R1: jaro_winkler(modelno, modelno) >= 0.97 AND cosine_ws(title, title) >= 0.69
    R2: jaccard_ws(title, title) < 0.4 AND soft_tfidf_ws(title, title) >= 0.63

:func:`parse_function` turns such text into a
:class:`~repro.core.rules.MatchingFunction`.  Rules are separated by
``OR``, newlines, or ``;``; predicates within a rule by ``AND``; rule
names (``R1:``) are optional and auto-generated when omitted.  Feature
references are ``simname(attr_a, attr_b)`` where ``simname`` is looked up
in either a supplied feature resolver (so corpus-bound measures are
shared) or the global similarity registry.

:func:`format_function` is the inverse, producing text that re-parses to
an equal function — handy for session transcripts and golden tests.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import RuleParseError
from ..similarity.registry import make_similarity
from .rules import Feature, MatchingFunction, Predicate, Rule

_TOKEN_PATTERN = re.compile(
    r"""
    (?P<ws>[^\S\n]+)
  | (?P<newline>\n)
  | (?P<number>-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)
  | (?P<name>[A-Za-z_][A-Za-z0-9_.\-]*)
  | (?P<op>>=|<=|==|>|<)
  | (?P<punct>[(),;:])
    """,
    re.VERBOSE,
)

_KEYWORDS = {"and", "or"}


class _Token:
    __slots__ = ("kind", "text", "position")

    def __init__(self, kind: str, text: str, position: int):
        self.kind = kind
        self.text = text
        self.position = position

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_Token({self.kind}, {self.text!r}@{self.position})"


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_PATTERN.match(text, position)
        if match is None:
            raise RuleParseError(
                f"unexpected character {text[position]!r}", text, position
            )
        kind = match.lastgroup
        if kind == "ws":
            position = match.end()
            continue
        value = match.group()
        if kind == "name" and value.lower() in _KEYWORDS:
            kind = value.lower()
        tokens.append(_Token(kind, value, position))
        position = match.end()
    tokens.append(_Token("eof", "", len(text)))
    return tokens


#: A feature resolver maps (sim_name, attr_a, attr_b) -> Feature.
FeatureResolver = Callable[[str, str, str], Feature]


def registry_resolver() -> FeatureResolver:
    """Resolver constructing features from the global similarity registry.

    Instances are cached per sim name so that all predicates over the same
    feature share one Feature object (and thus one memo column).
    """
    cache: Dict[Tuple[str, str, str], Feature] = {}

    def resolve(sim_name: str, attr_a: str, attr_b: str) -> Feature:
        key = (sim_name, attr_a, attr_b)
        feature = cache.get(key)
        if feature is None:
            feature = Feature(make_similarity(sim_name), attr_a, attr_b)
            cache[key] = feature
        return feature

    return resolve


class _Parser:
    def __init__(self, text: str, resolver: FeatureResolver):
        self.text = text
        self.tokens = _tokenize(text)
        self.position = 0
        self.resolver = resolver
        self._auto_rule_counter = 0

    # -- token plumbing --------------------------------------------------

    def _peek(self) -> _Token:
        return self.tokens[self.position]

    def _advance(self) -> _Token:
        token = self.tokens[self.position]
        self.position += 1
        return token

    def _expect(self, kind: str, what: str) -> _Token:
        token = self._peek()
        if token.kind != kind:
            raise RuleParseError(
                f"expected {what}, found {token.text or 'end of input'!r}",
                self.text,
                token.position,
            )
        return self._advance()

    def _skip_newlines(self) -> None:
        while self._peek().kind == "newline":
            self._advance()

    # -- grammar ----------------------------------------------------------

    def parse_function(self) -> MatchingFunction:
        rules: List[Rule] = []
        self._skip_newlines()
        while self._peek().kind != "eof":
            rules.append(self.parse_rule())
            separator = self._peek()
            if separator.kind in ("or", "newline") or separator.text == ";":
                self._advance()
                self._skip_newlines()
            elif separator.kind != "eof":
                raise RuleParseError(
                    f"expected OR / newline / ';' between rules, found "
                    f"{separator.text!r}",
                    self.text,
                    separator.position,
                )
        if not rules:
            raise RuleParseError("no rules found", self.text, 0)
        return MatchingFunction(rules)

    def parse_rule(self) -> Rule:
        name = self._maybe_rule_name()
        predicates = [self.parse_predicate()]
        while self._peek().kind == "and":
            self._advance()
            self._skip_newlines()
            predicates.append(self.parse_predicate())
        if name is None:
            self._auto_rule_counter += 1
            name = f"rule{self._auto_rule_counter}"
        return Rule(name, predicates)

    def _maybe_rule_name(self) -> Optional[str]:
        # A rule name is NAME ':' — but NAME '(' starts a feature instead.
        token = self._peek()
        if token.kind == "name":
            following = self.tokens[self.position + 1]
            if following.text == ":":
                self._advance()
                self._advance()
                self._skip_newlines()
                return token.text
        return None

    def parse_predicate(self) -> Predicate:
        sim_token = self._expect("name", "a similarity function name")
        self._expect_punct("(")
        attr_a = self._expect("name", "an attribute name").text
        self._expect_punct(",")
        attr_b = self._expect("name", "an attribute name").text
        self._expect_punct(")")
        op_token = self._expect("op", "a comparison operator")
        number_token = self._expect("number", "a numeric threshold")
        feature = self.resolver(sim_token.text, attr_a, attr_b)
        return Predicate(feature, op_token.text, float(number_token.text))

    def _expect_punct(self, text: str) -> None:
        token = self._peek()
        if token.kind != "punct" or token.text != text:
            raise RuleParseError(
                f"expected {text!r}, found {token.text or 'end of input'!r}",
                self.text,
                token.position,
            )
        self._advance()


def parse_function(
    text: str, resolver: Optional[FeatureResolver] = None
) -> MatchingFunction:
    """Parse a matching function from DSL text.

    Pass a resolver (e.g. :meth:`FeatureSpace.resolver
    <repro.learning.feature_space.FeatureSpace.resolver>`) to reuse
    corpus-bound features; the default builds fresh ones from the global
    similarity registry.
    """
    return _Parser(text, resolver or registry_resolver()).parse_function()


def parse_rule(text: str, resolver: Optional[FeatureResolver] = None) -> Rule:
    """Parse a single rule (no OR allowed)."""
    parser = _Parser(text, resolver or registry_resolver())
    parser._skip_newlines()
    rule = parser.parse_rule()
    parser._skip_newlines()
    trailing = parser._peek()
    if trailing.kind != "eof":
        raise RuleParseError(
            f"unexpected trailing input {trailing.text!r} after rule",
            text,
            trailing.position,
        )
    return rule


def format_predicate(predicate: Predicate, precise: bool = False) -> str:
    """DSL text for one predicate.

    ``precise=True`` renders the threshold with ``repr`` (shortest exact
    float64 round-trip) instead of the human-friendly 6-significant-digit
    ``%g`` form.  Anything that re-parses formatted text and must reproduce
    labels bit-for-bit — the parallel executor's worker payloads — needs
    the precise form: learned thresholds routinely carry more than 6
    digits, and a predicate sitting exactly between the two renderings
    would flip.
    """
    feature = predicate.feature
    threshold = (
        repr(predicate.threshold) if precise else f"{predicate.threshold:g}"
    )
    return (
        f"{feature.sim.name}({feature.attr_a}, {feature.attr_b}) "
        f"{predicate.op} {threshold}"
    )


def format_rule(rule: Rule, precise: bool = False) -> str:
    """DSL text for one rule, including its name."""
    body = " AND ".join(
        format_predicate(predicate, precise) for predicate in rule.predicates
    )
    return f"{rule.name}: {body}"


def format_function(function: MatchingFunction, precise: bool = False) -> str:
    """DSL text for a whole matching function (one rule per line)."""
    return "\n".join(format_rule(rule, precise) for rule in function.rules)
