"""Rule-set linting — catch analyst mistakes before a matching run.

The debugging loop's worst time sink is a *silently wrong* rule: a
conjunction that can never fire, a threshold outside the measure's range,
a rule that duplicates another.  These produce no errors — just a rule
that quietly contributes nothing (or everything).  :func:`lint_function`
runs a battery of static checks and returns structured findings the
session/workbench can surface.

Checks
------
* ``unsatisfiable``  — a feature's lower bound exceeds its upper bound
  (``f >= 0.8 AND f <= 0.5``), or a bound lies outside ``[0, 1]`` in the
  impossible direction (``f > 1``, ``f < 0``) for a score-valued feature.
* ``vacuous-predicate`` — a predicate that can never fail
  (``f >= 0``, ``f <= 1``): dead weight that still costs a fetch.
* ``duplicate-rule`` — two rules with identical predicate sets.
* ``subsumed-rule`` — a rule provably implied by another
  (via :func:`repro.learning.simplify.rule_subsumes`).
* ``constant-on-sample`` — with estimates: a predicate that is true (or
  false) for *every* sampled pair; likely a no-op (or a rule killer) on
  the full data too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .cost_model import Estimates
from .rules import MatchingFunction, Predicate, Rule

#: severity levels, mildest first.
SEVERITIES = ("info", "warning", "error")


@dataclass(frozen=True)
class Finding:
    """One lint finding."""

    check: str
    severity: str
    rule_name: str
    message: str

    def render(self) -> str:
        return f"[{self.severity}] {self.rule_name}: {self.message} ({self.check})"


def _score_valued(predicate: Predicate) -> bool:
    """Similarity scores live in [0, 1]; all built-in measures qualify."""
    return True


def _lint_rule_bounds(rule: Rule) -> List[Finding]:
    findings: List[Finding] = []
    lower: Dict[str, Predicate] = {}
    upper: Dict[str, Predicate] = {}
    for predicate in rule.predicates:
        if predicate.op in (">=", ">"):
            lower[predicate.feature.name] = predicate
        elif predicate.op in ("<=", "<"):
            upper[predicate.feature.name] = predicate

    for name, low in lower.items():
        high = upper.get(name)
        if high is not None:
            impossible = (
                low.threshold > high.threshold
                or (
                    low.threshold == high.threshold
                    and (low.op == ">" or high.op == "<")
                )
            )
            if impossible:
                findings.append(
                    Finding(
                        "unsatisfiable",
                        "error",
                        rule.name,
                        f"{low.pid} contradicts {high.pid}; the rule can "
                        f"never fire",
                    )
                )
    for predicate in rule.predicates:
        if not _score_valued(predicate):
            continue
        if (predicate.op == ">" and predicate.threshold >= 1.0) or (
            predicate.op == ">=" and predicate.threshold > 1.0
        ):
            findings.append(
                Finding(
                    "unsatisfiable",
                    "error",
                    rule.name,
                    f"{predicate.pid} can never hold for a [0,1]-valued "
                    f"similarity",
                )
            )
        if (predicate.op == "<" and predicate.threshold <= 0.0) or (
            predicate.op == "<=" and predicate.threshold < 0.0
        ):
            findings.append(
                Finding(
                    "unsatisfiable",
                    "error",
                    rule.name,
                    f"{predicate.pid} can never hold for a [0,1]-valued "
                    f"similarity",
                )
            )
        if (predicate.op == ">=" and predicate.threshold <= 0.0) or (
            predicate.op == "<=" and predicate.threshold >= 1.0
        ):
            findings.append(
                Finding(
                    "vacuous-predicate",
                    "warning",
                    rule.name,
                    f"{predicate.pid} can never fail; it only costs a fetch",
                )
            )
    return findings


def lint_function(
    function: MatchingFunction, estimates: Optional[Estimates] = None
) -> List[Finding]:
    """Run every check; findings sorted by severity (errors first)."""
    from ..learning.simplify import rule_subsumes

    findings: List[Finding] = []
    for rule in function.rules:
        findings.extend(_lint_rule_bounds(rule))

    bodies: Dict[frozenset, str] = {}
    for rule in function.rules:
        body = frozenset(predicate.pid for predicate in rule.predicates)
        earlier = bodies.get(body)
        if earlier is not None:
            findings.append(
                Finding(
                    "duplicate-rule",
                    "warning",
                    rule.name,
                    f"identical to rule {earlier!r}",
                )
            )
        else:
            bodies[body] = rule.name

    reported_duplicates = {
        finding.rule_name for finding in findings if finding.check == "duplicate-rule"
    }
    for specific in function.rules:
        if specific.name in reported_duplicates:
            continue
        for general in function.rules:
            if general.name == specific.name:
                continue
            if rule_subsumes(general, specific) and not rule_subsumes(
                specific, general
            ):
                findings.append(
                    Finding(
                        "subsumed-rule",
                        "info",
                        specific.name,
                        f"implied by the looser rule {general.name!r}; "
                        f"removing it cannot change any result",
                    )
                )
                break

    if estimates is not None:
        for rule in function.rules:
            for predicate in rule.predicates:
                if not estimates.has_feature(predicate.feature):
                    continue
                selectivity = estimates.selectivity(predicate)
                if selectivity == 0.0:
                    findings.append(
                        Finding(
                            "constant-on-sample",
                            "warning",
                            rule.name,
                            f"{predicate.pid} rejected every sampled pair; "
                            f"this rule may never fire",
                        )
                    )
                elif selectivity == 1.0:
                    findings.append(
                        Finding(
                            "constant-on-sample",
                            "info",
                            rule.name,
                            f"{predicate.pid} passed every sampled pair; "
                            f"it may filter nothing",
                        )
                    )
    severity_rank = {severity: index for index, severity in enumerate(SEVERITIES)}
    findings.sort(
        key=lambda finding: (-severity_rank[finding.severity], finding.rule_name)
    )
    return findings
