"""Static analysis of matching functions, and a TSP-flavoured ordering.

The paper proves the memo-aware ordering problem NP-hard by reduction
*from* TSP: rules as cities, "cost of r_j when it immediately follows
r_i" as edge weights (§5.4).  This module makes that reduction concrete
and runs it forwards:

* :func:`following_cost` — the paper's edge weight c(i, j).
* :func:`tsp_ordering` — nearest-neighbour construction + 2-opt
  improvement over those edge weights: the classic TSP heuristic stack,
  applied to rule ordering.  It is *not* one of the paper's algorithms —
  it exists to test how much the pairwise simplification ("cost of r_j
  depends only on its predecessor") loses against Algorithms 5/6, which
  accumulate memo state across the whole prefix.

Plus the structural analytics an analyst (or the workbench's ``stats``
command) wants about a rule set: feature usage frequencies — the paper's
``freq(f)`` from §4.4.2 — predicate histograms, and the feature-sharing
graph (networkx) whose connectivity explains when Algorithm 6's
reduction metric has anything to work with.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from .cost_model import Estimates, group_predicates, rule_cost, update_alpha
from .rules import MatchingFunction, Rule

# ---------------------------------------------------------------------------
# Structural analytics
# ---------------------------------------------------------------------------


def feature_frequencies(function: MatchingFunction) -> Counter:
    """freq(f): number of predicates referencing each feature (§4.4.2)."""
    frequencies: Counter = Counter()
    for rule in function.rules:
        for predicate in rule.predicates:
            frequencies[predicate.feature.name] += 1
    return frequencies


def predicate_histogram(function: MatchingFunction) -> Counter:
    """Histogram of predicates-per-rule (the paper's 1,688/255 ≈ 6.6)."""
    return Counter(len(rule) for rule in function.rules)


def feature_sharing_graph(function: MatchingFunction) -> "nx.Graph":
    """Graph over rules; edge weight = number of shared features.

    Memoing (and therefore Algorithm 6) only pays off along these edges:
    a rule in its own component never reuses another rule's computations.
    """
    graph = nx.Graph()
    graph.add_nodes_from(rule.name for rule in function.rules)
    features_of: Dict[str, set] = {
        rule.name: {feature.name for feature in rule.features()}
        for rule in function.rules
    }
    names = [rule.name for rule in function.rules]
    for index, first in enumerate(names):
        for second in names[index + 1 :]:
            shared = len(features_of[first] & features_of[second])
            if shared:
                graph.add_edge(first, second, weight=shared)
    return graph


def sharing_summary(function: MatchingFunction) -> Dict[str, float]:
    """Connectivity digest of the feature-sharing graph."""
    graph = feature_sharing_graph(function)
    components = list(nx.connected_components(graph))
    return {
        "rules": graph.number_of_nodes(),
        "sharing_edges": graph.number_of_edges(),
        "components": len(components),
        "largest_component": max((len(c) for c in components), default=0),
        "mean_shared_features": (
            sum(data["weight"] for *_e, data in graph.edges(data=True))
            / graph.number_of_edges()
            if graph.number_of_edges()
            else 0.0
        ),
    }


def describe_function(function: MatchingFunction) -> str:
    """Multi-line structural report (the workbench's ``stats`` output)."""
    frequencies = feature_frequencies(function)
    histogram = predicate_histogram(function)
    sharing = sharing_summary(function)
    lines = [
        f"{len(function)} rules, {function.predicate_count()} predicates, "
        f"{len(function.features())} features",
        "predicates per rule: "
        + ", ".join(
            f"{size}:{count}" for size, count in sorted(histogram.items())
        ),
        f"feature sharing: {sharing['sharing_edges']} rule pairs share features "
        f"({sharing['components']} components, largest "
        f"{sharing['largest_component']})",
        "hottest features: "
        + ", ".join(
            f"{name} x{count}" for name, count in frequencies.most_common(5)
        ),
    ]
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# TSP-heuristic ordering
# ---------------------------------------------------------------------------


def following_cost(
    rule: Rule, predecessor: Optional[Rule], estimates: Estimates
) -> float:
    """The paper's edge weight: expected cost of ``rule`` when it
    immediately follows ``predecessor`` (memo state from the predecessor
    alone; ``None`` = cold start)."""
    alpha: Dict[str, float] = {}
    if predecessor is not None:
        update_alpha(predecessor, estimates, alpha)
    return rule_cost(rule, estimates, alpha)


def _path_cost(order: Sequence[Rule], estimates: Estimates) -> float:
    total = following_cost(order[0], None, estimates)
    for previous, current in zip(order, order[1:]):
        total += following_cost(current, previous, estimates)
    return total


def tsp_ordering(
    function: MatchingFunction,
    estimates: Estimates,
    two_opt_rounds: int = 2,
) -> MatchingFunction:
    """Nearest-neighbour + 2-opt over the §5.4 pairwise edge weights.

    Note the deliberate simplification this inherits from the paper's
    reduction: the memo state is reset to "predecessor only" at each
    step, so long-range reuse (a feature computed three rules ago) is
    invisible.  Algorithms 5/6 model that accumulation and usually win;
    the ordering-comparison test quantifies the gap.
    """
    from .ordering import _with_lemma3_predicates  # shared predicate order

    rules = _with_lemma3_predicates(function, estimates)
    if len(rules) == 1:
        return MatchingFunction(rules)

    # Nearest-neighbour construction.
    remaining = list(rules)
    start = min(remaining, key=lambda rule: following_cost(rule, None, estimates))
    path = [start]
    remaining.remove(start)
    while remaining:
        previous = path[-1]
        best = min(
            remaining,
            key=lambda rule: (following_cost(rule, previous, estimates), rule.name),
        )
        path.append(best)
        remaining.remove(best)

    # 2-opt improvement on the open path.
    for _round in range(two_opt_rounds):
        improved = False
        best_cost = _path_cost(path, estimates)
        for i in range(len(path) - 1):
            for j in range(i + 1, len(path)):
                candidate = path[:i] + path[i : j + 1][::-1] + path[j + 1 :]
                cost = _path_cost(candidate, estimates)
                if cost < best_cost - 1e-15:
                    path = candidate
                    best_cost = cost
                    improved = True
        if not improved:
            break
    return MatchingFunction(path)
