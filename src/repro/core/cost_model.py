"""The paper's §4.4 cost model, and sampling-based estimation (§5.5).

The model's ingredients:

* ``cost(f)`` — seconds to compute feature ``f`` for one pair,
* ``δ`` — seconds for one memo lookup,
* ``sel(p)`` — probability a predicate returns true on a random pair,
* ``α(f, r_i)`` — probability ``f`` is memoized after evaluating rule
  ``r_i`` (the §4.4.4 recurrence).

All are estimated on a small random sample of candidate pairs (the paper
used 1 %) by :class:`CostEstimator`.  Two estimation modes:

* ``"measured"`` — wall-clock feature costs and measured δ (what the paper
  does; host-dependent).
* ``"calibrated"`` — deterministic synthetic costs derived from each
  measure's :attr:`cost_tier`, for reproducible tests and cross-host
  comparability.  Selectivities are always measured (they are data
  properties, not host properties).

The model functions (:func:`rule_cost`, :func:`function_cost`,
:func:`function_cost_with_memo`, …) are pure: they read an
:class:`Estimates` and a matching function and return expected seconds per
candidate pair.  Multiply by ``len(candidates)`` for a run estimate — the
linearity the paper verifies in its Figure 5B.

Fidelity notes
--------------
* Selectivities of same-feature predicate groups are estimated *jointly*
  on the sample (they are perfectly correlated through the shared feature
  value); groups of different features are combined by independence, as
  the paper assumes.
* The α recurrence follows the paper exactly, including its simplification
  of ignoring cross-rule reach probabilities inside α itself; reach
  probabilities enter once, at the C3/C4 composition level (Equation 4).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.pairs import CandidateSet
from ..errors import EstimationError
from .memo import ArrayMemo
from .rules import Feature, MatchingFunction, Predicate, Rule

#: Synthetic per-computation cost (seconds) for each cost tier, used by the
#: "calibrated" mode.  The ladder mirrors the paper's Table 3 µs spread.
CALIBRATED_TIER_COSTS: Dict[int, float] = {
    0: 0.2e-6,
    1: 0.5e-6,
    2: 0.8e-6,
    3: 1.2e-6,
    4: 2.0e-6,
    5: 3.5e-6,
    6: 6.8e-6,
    7: 9.0e-6,
    8: 15.0e-6,
    9: 45.0e-6,
}

#: Synthetic memo lookup cost (δ) for the calibrated mode.
CALIBRATED_LOOKUP_COST = 0.05e-6

#: Synthetic size-bound check cost for the calibrated mode — the kernel
#: layer's "pre-predicate" is cheaper than a feature but touches the token
#: cache, so it sits between δ and the cheapest tier.
CALIBRATED_BOUND_COST = 0.1e-6


@dataclass
class Estimates:
    """Estimated costs and selectivities for one (function, candidates) task.

    ``sample_values`` keeps the raw per-feature score vectors over the
    sample so that joint selectivities of arbitrary predicate conjunctions
    can be evaluated empirically later (e.g. when an edit introduces a new
    threshold on an already-sampled feature).
    """

    feature_costs: Dict[str, float]
    lookup_cost: float
    sample_values: Dict[str, np.ndarray]
    sample_size: int
    mode: str = "measured"
    #: predicate pid -> probability its outcome is decided by the kernel
    #: layer's size bound (no feature computation, no memo fill).  Empty
    #: when estimated without kernels/bounds — all formulas then reduce
    #: exactly to the paper's.
    bound_skip_rates: Dict[str, float] = field(default_factory=dict)
    #: seconds for one size-bound check (near-zero "pre-predicate" cost)
    bound_check_cost: float = 0.0
    # Memoization caches — ordering algorithms evaluate the same
    # selectivities and group decompositions O(n^2) times; everything here
    # is derived data, safe to cache because rules/predicates are immutable.
    _predicate_masks: Dict[str, np.ndarray] = field(
        default_factory=dict, repr=False, compare=False
    )
    _joint_cache: Dict[Tuple[str, ...], float] = field(
        default_factory=dict, repr=False, compare=False
    )
    _group_cache: Dict[Rule, list] = field(
        default_factory=dict, repr=False, compare=False
    )

    def cost(self, feature: Feature) -> float:
        """cost(f) in seconds; EstimationError if the feature is unknown."""
        value = self.feature_costs.get(feature.name)
        if value is None:
            raise EstimationError(
                f"no cost estimate for feature {feature.name!r}; re-estimate "
                f"after introducing new features"
            )
        return value

    def has_feature(self, feature: Feature) -> bool:
        return feature.name in self.feature_costs

    def _mask(self, predicate: Predicate) -> np.ndarray:
        """Boolean sample mask of one predicate (cached by pid)."""
        mask = self._predicate_masks.get(predicate.pid)
        if mask is None:
            values = self.sample_values.get(predicate.feature.name)
            if values is None:
                raise EstimationError(
                    f"no sample values for feature {predicate.feature.name!r}"
                )
            op, threshold = predicate.op, predicate.threshold
            if op == ">=":
                mask = values >= threshold
            elif op == ">":
                mask = values > threshold
            elif op == "<=":
                mask = values <= threshold
            elif op == "<":
                mask = values < threshold
            else:
                mask = values == threshold
            self._predicate_masks[predicate.pid] = mask
        return mask

    def selectivity(self, predicate: Predicate) -> float:
        """sel(p): fraction of sample pairs on which the predicate is true."""
        if self.sample_size == 0:
            return 0.0
        return float(self._mask(predicate).mean())

    def joint_selectivity(self, predicates: Sequence[Predicate]) -> float:
        """Empirical selectivity of a conjunction over the sample.

        Exact for same-feature groups (the case Lemma 2/3 needs); for
        mixed-feature conjunctions this measures true correlations that
        the paper's independence assumption ignores — the ablation bench
        compares both.
        """
        if not predicates:
            return 1.0
        if self.sample_size == 0:
            return 0.0
        key = tuple(sorted(predicate.pid for predicate in predicates))
        cached = self._joint_cache.get(key)
        if cached is not None:
            return cached
        surviving = self._mask(predicates[0])
        for predicate in predicates[1:]:
            surviving = surviving & self._mask(predicate)
        result = float(surviving.mean())
        self._joint_cache[key] = result
        return result

    def independent_rule_selectivity(self, rule: Rule) -> float:
        """sel(r) under the paper's independence assumption: the product of
        per-group joint selectivities."""
        selectivity = 1.0
        for group in group_predicates(rule):
            selectivity *= self.joint_selectivity(group.predicates)
        return selectivity

    def with_feature_costs(self, overrides: Dict[str, float]) -> "Estimates":
        """A copy with some feature costs replaced (fresh caches).

        Selectivities stay sample-based — only ``feature_costs`` entries
        named in ``overrides`` change.  Used by cost-model drift detection
        (:func:`repro.observability.drift.detect_drift`) to ask "would the
        chosen order change under *observed* costs?" without mutating the
        session's estimates.
        """
        unknown = set(overrides) - set(self.feature_costs)
        if unknown:
            raise EstimationError(
                f"cannot override costs of unestimated features: "
                f"{sorted(unknown)}"
            )
        return Estimates(
            feature_costs={**self.feature_costs, **overrides},
            lookup_cost=self.lookup_cost,
            sample_values=self.sample_values,
            sample_size=self.sample_size,
            mode=self.mode,
            bound_skip_rates=self.bound_skip_rates,
            bound_check_cost=self.bound_check_cost,
        )


@dataclass
class PredicateGroup:
    """Predicates of one rule sharing one feature, in Lemma 2 order
    (ascending selectivity — the cheaper-to-fail predicate first)."""

    feature: Feature
    predicates: Tuple[Predicate, ...]
    selectivity: float            # joint selectivity of the group
    first_selectivity: float      # selectivity of the first predicate alone

    def __len__(self) -> int:
        return len(self.predicates)


def group_predicates(rule: Rule, estimates: Optional[Estimates] = None) -> List[PredicateGroup]:
    """Group a rule's predicates by feature (the §5.4 canonical form).

    With ``estimates``, predicates inside each group are ordered by Lemma 2
    (ascending selectivity) and group selectivities are filled in; without,
    groups keep rule order and carry selectivity 1.0 placeholders (useful
    for structural analysis only).  Results are cached per (rule,
    estimates) — both are immutable.
    """
    if estimates is not None:
        cached = estimates._group_cache.get(rule)
        if cached is not None:
            return cached
    by_feature: Dict[str, List[Predicate]] = {}
    feature_order: List[Feature] = []
    for predicate in rule.predicates:
        name = predicate.feature.name
        if name not in by_feature:
            by_feature[name] = []
            feature_order.append(predicate.feature)
        by_feature[name].append(predicate)

    groups: List[PredicateGroup] = []
    for feature in feature_order:
        members = by_feature[feature.name]
        if estimates is not None:
            members = sorted(members, key=estimates.selectivity)
            joint = estimates.joint_selectivity(members)
            first = estimates.selectivity(members[0])
        else:
            joint = 1.0
            first = 1.0
        groups.append(
            PredicateGroup(feature, tuple(members), joint, first)
        )
    if estimates is not None:
        estimates._group_cache[rule] = groups
    return groups


# ---------------------------------------------------------------------------
# Expected-cost formulas (per candidate pair, in seconds)
# ---------------------------------------------------------------------------


def group_cost(group: PredicateGroup, estimates: Estimates, memo_probability: float = 0.0) -> float:
    """Expected cost of evaluating one predicate group.

    With ``memo_probability`` = α(f): the first predicate's feature fetch
    costs ``(1-α)·cost(f) + α·δ``; a second same-feature predicate always
    costs δ and only runs if the first was true (Lemma 2's ``c + sel·c'``).

    When the kernel layer's size bounds can decide the group's first
    predicate (``estimates.bound_skip_rates``), the un-memoized fetch is
    discounted: with skip probability ``p`` it costs the near-zero bound
    check plus ``(1-p)·cost(f)``, modeling the bound as a free
    pre-predicate (the ISSUE's "recorded in the cost model" requirement).
    With empty rates the arithmetic below is exactly the paper's.
    """
    skip_rate = estimates.bound_skip_rates.get(group.predicates[0].pid, 0.0)
    if skip_rate:
        compute = estimates.bound_check_cost + (1.0 - skip_rate) * estimates.cost(
            group.feature
        )
    else:
        compute = estimates.cost(group.feature)
    fetch = (
        (1.0 - memo_probability) * compute
        + memo_probability * estimates.lookup_cost
    )
    cost = fetch
    if len(group) > 1:
        cost += group.first_selectivity * estimates.lookup_cost
    return cost


def rule_cost(
    rule: Rule,
    estimates: Estimates,
    alpha: Optional[Dict[str, float]] = None,
) -> float:
    """Expected cost of one rule (Equation 1 / 3, over predicate groups).

    ``alpha`` maps feature name -> memo-presence probability before this
    rule runs (empty/None = cold memo, which degenerates to the paper's
    Equation 3 where every fetch is a computation).

    Models the §5.4 grouped canonical form, not raw rule order: a rule
    that repeats a feature around an intervening predicate is costed as
    if the repeat ran immediately after its group's first member.  If the
    intervening predicate would have exited early, that charges a δ-lookup
    rule-order execution skips — so ``rule_cost`` can exceed
    ``rule_cost_no_memo`` by up to δ per repeated predicate.
    """
    alpha = alpha or {}
    prefix_selectivity = 1.0
    total = 0.0
    for group in group_predicates(rule, estimates):
        total += prefix_selectivity * group_cost(
            group, estimates, alpha.get(group.feature.name, 0.0)
        )
        prefix_selectivity *= group.selectivity
    return total


def rule_cost_no_memo(rule: Rule, estimates: Estimates) -> float:
    """Equation 1 with black-box predicates: every access recomputes
    (Algorithm 3's per-rule cost — same-feature repeats pay full price)."""
    prefix_selectivity = 1.0
    total = 0.0
    for predicate in rule.predicates:
        total += prefix_selectivity * estimates.cost(predicate.feature)
        prefix_selectivity *= estimates.selectivity(predicate)
    return total


def update_alpha(rule: Rule, estimates: Estimates, alpha: Dict[str, float]) -> None:
    """Advance the α state across one rule (the §4.4.4 recurrence):

        α(f, r_i) = (1 - α(f, r_{i-1})) · sel(prev(f, r_i)) + α(f, r_{i-1})

    where ``prev(f, r)`` is the set of groups before f's group in r.
    """
    prefix_selectivity = 1.0
    for group in group_predicates(rule, estimates):
        name = group.feature.name
        previous = alpha.get(name, 0.0)
        # A bound-skipped first predicate never computes the feature, so
        # the memo only fills on the (1 - skip_rate) complement.
        skip_rate = estimates.bound_skip_rates.get(
            group.predicates[0].pid, 0.0
        )
        fill_probability = prefix_selectivity
        if skip_rate:
            fill_probability *= 1.0 - skip_rate
        alpha[name] = (1.0 - previous) * fill_probability + previous
        prefix_selectivity *= group.selectivity


def function_cost_no_memo(function: MatchingFunction, estimates: Estimates) -> float:
    """C3 (Equation 4): early exit, no memo — per-pair expected seconds."""
    reach_probability = 1.0
    total = 0.0
    for rule in function.rules:
        total += reach_probability * rule_cost_no_memo(rule, estimates)
        reach_probability *= 1.0 - estimates.independent_rule_selectivity(rule)
    return total


def function_cost_with_memo(
    function: MatchingFunction, estimates: Estimates
) -> float:
    """C4: early exit + dynamic memoing — per-pair expected seconds.

    Composes Equation 4's rule-level early exit with Equation 2's
    memo-aware fetch costs and the α recurrence.
    """
    alpha: Dict[str, float] = {}
    reach_probability = 1.0
    total = 0.0
    for rule in function.rules:
        total += reach_probability * rule_cost(rule, estimates, alpha)
        update_alpha(rule, estimates, alpha)
        reach_probability *= 1.0 - estimates.independent_rule_selectivity(rule)
    return total


def rudimentary_cost(function: MatchingFunction, estimates: Estimates) -> float:
    """C1: every predicate of every rule, from scratch — per-pair seconds."""
    return sum(
        estimates.cost(predicate.feature)
        for rule in function.rules
        for predicate in rule.predicates
    )


def precompute_cost(
    function: MatchingFunction,
    estimates: Estimates,
    features: Optional[Sequence[Feature]] = None,
) -> float:
    """C2: precompute all features, then match on lookups — per-pair seconds.

    ``features`` defaults to the function's own features (production
    precomputation); pass the analyst's feature superset for the FPR cost.
    The lookup term uses ``freq(f)`` — how many predicates reference f —
    exactly as §4.4.2 defines.
    """
    feature_list = list(features) if features is not None else function.features()
    compute = sum(estimates.cost(feature) for feature in feature_list)
    frequency: Dict[str, int] = {}
    for rule in function.rules:
        for predicate in rule.predicates:
            name = predicate.feature.name
            frequency[name] = frequency.get(name, 0) + 1
    lookups = sum(frequency.values()) * estimates.lookup_cost
    return compute + lookups


def per_pair_cost(
    function: MatchingFunction,
    estimates: Estimates,
    strategy: str = "dynamic_memo",
) -> float:
    """Expected seconds to evaluate one candidate pair under ``strategy``.

    Strategies: ``rudimentary`` (C1), ``precompute`` (C2), ``early_exit``
    (C3), ``dynamic_memo`` (C4).  Besides feeding
    :func:`predicted_runtime`, this is what the parallel partitioner uses
    to size chunks: pairs-per-chunk = target-chunk-seconds / per-pair-cost.
    """
    formulas = {
        "rudimentary": rudimentary_cost,
        "precompute": precompute_cost,
        "early_exit": function_cost_no_memo,
        "dynamic_memo": function_cost_with_memo,
    }
    if strategy not in formulas:
        raise EstimationError(
            f"unknown strategy {strategy!r}; expected one of {sorted(formulas)}"
        )
    return formulas[strategy](function, estimates)


def predicted_runtime(
    function: MatchingFunction,
    candidates: CandidateSet,
    estimates: Estimates,
    strategy: str = "dynamic_memo",
) -> float:
    """Predicted wall-clock seconds for a full run of ``strategy``.

    This is the model curve of Figure 5A.
    """
    return per_pair_cost(function, estimates, strategy) * len(candidates)


# ---------------------------------------------------------------------------
# Estimation
# ---------------------------------------------------------------------------


class CostEstimator:
    """Estimate feature costs and predicate selectivities on a pair sample.

    The paper (§5.5, §7.3) samples 1 % of candidate pairs, evaluates each
    feature on the sample, and derives both per-feature mean costs and
    per-predicate selectivities.  We do the same; ``min_sample`` guards
    against tiny candidate sets where 1 % would be statistically useless.
    """

    def __init__(
        self,
        sample_fraction: float = 0.01,
        min_sample: int = 50,
        seed: int = 0,
        mode: str = "measured",
    ):
        if not 0.0 < sample_fraction <= 1.0:
            raise EstimationError(
                f"sample_fraction must be in (0, 1], got {sample_fraction}"
            )
        if mode not in ("measured", "calibrated"):
            raise EstimationError(
                f"mode must be 'measured' or 'calibrated', got {mode!r}"
            )
        self.sample_fraction = sample_fraction
        self.min_sample = min_sample
        self.seed = seed
        self.mode = mode

    def sample_indices(self, candidates: CandidateSet) -> List[int]:
        """Deterministic sample of pair indices."""
        population = len(candidates)
        if population == 0:
            raise EstimationError("cannot estimate on an empty candidate set")
        size = max(
            min(self.min_sample, population),
            round(population * self.sample_fraction),
        )
        rng = random.Random(self.seed)
        return sorted(rng.sample(range(population), min(size, population)))

    def estimate(
        self,
        function: MatchingFunction,
        candidates: CandidateSet,
        extra_features: Sequence[Feature] = (),
        kernels=None,
    ) -> Estimates:
        """Estimate costs/selectivities for all features of ``function``
        (plus ``extra_features``, e.g. an FPR superset) on one sample.

        ``kernels`` (a :class:`repro.kernels.FeatureKernels`) makes the
        estimate consistent with a kernel-enabled run: measured feature
        costs are taken on the warm-cache path the matchers actually
        execute (so drift detection compares like with like), and when the
        kernels object has bounds enabled, per-predicate
        ``bound_skip_rates`` are measured on the sample.
        """
        features: Dict[str, Feature] = {
            feature.name: feature for feature in function.features()
        }
        for feature in extra_features:
            features.setdefault(feature.name, feature)

        indices = self.sample_indices(candidates)
        pairs = [candidates[index] for index in indices]
        sample_values: Dict[str, np.ndarray] = {}
        feature_costs: Dict[str, float] = {}

        for name, feature in features.items():
            use_kernel = kernels is not None and kernels.supports(feature)
            if use_kernel:
                # Warm the token cache untimed, then time the warm path —
                # in a real run every record is touched by many pairs and
                # features, so warm is the representative regime.
                for pair in pairs:
                    kernels.compute(feature, pair)
                started = time.perf_counter()
                values = np.fromiter(
                    (kernels.compute(feature, pair) for pair in pairs),
                    dtype=np.float64,
                    count=len(pairs),
                )
                elapsed = time.perf_counter() - started
            else:
                started = time.perf_counter()
                values = np.fromiter(
                    (
                        feature.compute(pair.record_a, pair.record_b)
                        for pair in pairs
                    ),
                    dtype=np.float64,
                    count=len(pairs),
                )
                elapsed = time.perf_counter() - started
            sample_values[name] = values
            if self.mode == "measured":
                feature_costs[name] = elapsed / len(pairs)
            else:
                feature_costs[name] = CALIBRATED_TIER_COSTS[feature.cost_tier]

        lookup_cost = (
            self._measure_lookup_cost(len(pairs))
            if self.mode == "measured"
            else CALIBRATED_LOOKUP_COST
        )
        bound_skip_rates: Dict[str, float] = {}
        bound_check_cost = 0.0
        if kernels is not None and kernels.use_bounds and pairs:
            bound_check_cost = (
                self._measure_bound_cost(kernels, function, pairs)
                if self.mode == "measured"
                else CALIBRATED_BOUND_COST
            )
            for rule in function.rules:
                for predicate in rule.predicates:
                    if predicate.pid in bound_skip_rates:
                        continue
                    if not kernels.supports(predicate.feature):
                        continue
                    decided = sum(
                        1
                        for pair in pairs
                        if kernels.bound_decision(predicate, pair) is not None
                    )
                    if decided:
                        bound_skip_rates[predicate.pid] = decided / len(pairs)
        return Estimates(
            feature_costs=feature_costs,
            lookup_cost=lookup_cost,
            sample_values=sample_values,
            sample_size=len(pairs),
            mode=self.mode,
            bound_skip_rates=bound_skip_rates,
            bound_check_cost=bound_check_cost,
        )

    @staticmethod
    def _measure_bound_cost(kernels, function, pairs) -> float:
        """Measure the per-check cost of a size-bound decision (warm cache)."""
        predicates = [
            predicate
            for rule in function.rules
            for predicate in rule.predicates
            if kernels.supports(predicate.feature)
        ]
        if not predicates:
            return 0.0
        probe = predicates[0]
        probe_pairs = pairs[: min(len(pairs), 200)]
        started = time.perf_counter()
        for pair in probe_pairs:
            kernels.bound_decision(probe, pair)
        return (time.perf_counter() - started) / len(probe_pairs)

    @staticmethod
    def _measure_lookup_cost(sample_size: int, repetitions: int = 20000) -> float:
        """Measure δ by timing ArrayMemo gets on a warm toy memo."""
        memo = ArrayMemo(max(sample_size, 1), ["probe"])
        for index in range(memo.n_pairs):
            memo.put(index, "probe", 0.5)
        started = time.perf_counter()
        for iteration in range(repetitions):
            memo.get(iteration % memo.n_pairs, "probe")
        return (time.perf_counter() - started) / repetitions
