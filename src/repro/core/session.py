"""The interactive debugging session — the paper's Figure 1 loop as an API.

A :class:`DebugSession` owns one matching task end to end:

1. ``run()`` — estimate costs on a sample, order the rules (Algorithm 5/6),
   run DM+EE once, and materialize the incremental state.
2. ``apply(change)`` — incremental re-matching via Algorithms 7-10; the
   memo and bitmaps persist, so edits take milliseconds, not another full
   run.  This is the "Run EM" box the paper wants under one second.
3. ``metrics()`` — precision/recall against the session's gold labels
   after every edit (the "Examine results" box).
4. ``explain(a_id, b_id)`` — per-rule, per-predicate breakdown of why a
   pair matches or not: the thing an analyst actually stares at before
   deciding which threshold to move.

``rerun_full()`` re-runs the whole matcher against the persistent memo —
the paper's "precomputation variation" of incremental matching, kept as a
comparison point for the Figure 5C experiment and as a safety valve.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..data.pairs import CandidateSet, PairId
from ..errors import MatchingError, StateError
from ..evaluation.metrics import Confusion, confusion
from .changes import Change
from .cost_model import CostEstimator, Estimates
from .incremental import IncrementalResult, apply_change
from .matchers import DynamicMemoMatcher, MatchResult
from .memo import ArrayMemo, HashMemo
from .ordering import order_function
from .parser import parse_function
from .rules import MatchingFunction
from .state import MatchState


@dataclass
class PredicateTrace:
    """One predicate's outcome for one pair (for :meth:`DebugSession.explain`)."""

    pid: str
    value: float
    passed: bool


@dataclass
class RuleTrace:
    """One rule's outcome for one pair."""

    rule_name: str
    matched: bool
    predicates: List[PredicateTrace]

    def first_failure(self) -> Optional[PredicateTrace]:
        for trace in self.predicates:
            if not trace.passed:
                return trace
        return None


@dataclass
class PairExplanation:
    """Full evaluation trace of one candidate pair."""

    pair_id: PairId
    matched: bool
    rules: List[RuleTrace]

    def matching_rules(self) -> List[str]:
        return [trace.rule_name for trace in self.rules if trace.matched]

    def render(self) -> str:
        """Human-readable multi-line explanation."""
        lines = [
            f"pair {self.pair_id}: {'MATCH' if self.matched else 'NO MATCH'}"
        ]
        for rule in self.rules:
            mark = "+" if rule.matched else "-"
            lines.append(f"  [{mark}] {rule.rule_name}")
            for predicate in rule.predicates:
                ok = "ok " if predicate.passed else "FAIL"
                lines.append(
                    f"        {ok} {predicate.pid}  (value={predicate.value:.4f})"
                )
        return "\n".join(lines)


class DebugSession:
    """Stateful analyst session over one candidate set."""

    def __init__(
        self,
        candidates: CandidateSet,
        function: Union[MatchingFunction, str],
        gold: Optional[Set[PairId]] = None,
        ordering: str = "algorithm6",
        estimator: Optional[CostEstimator] = None,
        memo_backend: str = "array",
        check_cache_first: bool = True,
        paranoid: bool = False,
        observability=None,
        use_kernels: bool = True,
        use_bounds: bool = True,
        engine: str = "auto",
    ):
        """``paranoid=True`` re-validates the incremental state against a
        from-scratch run after every change — O(full run) per edit, test
        use only.  ``observability`` (a
        :class:`repro.observability.Observability`) collects spans,
        metrics, and optional profiles across every run of this session;
        ``None`` (the default) keeps the seed code paths untouched.

        ``use_kernels`` routes token-based features through the session's
        record token cache (:mod:`repro.kernels`) — labels, values, and
        counters are bit-identical to the uncached path.  ``use_bounds``
        additionally lets threshold predicates be decided from token-set
        size bounds without computing the feature; decisions are provably
        identical, but skipped features are not memoized and
        ``stats.bound_skips`` counts the skips.  Both default on; the
        same setting threads into parallel (``run(workers=...)``) and
        streaming runs of this session, so serial/parallel memo equality
        is preserved either way.

        ``engine`` selects the evaluation engine: ``"scalar"`` is the
        per-pair :class:`~repro.core.matchers.PairEvaluator` loop,
        ``"columnar"`` the set-at-a-time plan/executor split of
        :mod:`repro.engine` (bit-identical labels, counters, and state).
        The default ``"auto"`` resolves per plan through the cost model
        (:func:`repro.engine.choose_engine`): columnar when the
        kernel-supported steps carry enough of the expected per-pair work
        to pay for the per-step fallback overhead of the unsupported
        ones, scalar otherwise.  Mixed plans are correct either way —
        the decision only moves wall-clock."""
        if isinstance(function, str):
            function = parse_function(function)
        self.candidates = candidates
        self.initial_function = function
        self.gold = gold
        self.ordering_strategy = ordering
        self.estimator = estimator or CostEstimator()
        self.memo_backend = memo_backend
        self.check_cache_first = check_cache_first
        self.paranoid = paranoid
        self.observability = observability
        self.use_kernels = use_kernels
        self.use_bounds = use_bounds
        if engine not in ("auto", "columnar", "scalar"):
            raise MatchingError(
                f"engine must be 'auto', 'columnar', or 'scalar', got {engine!r}"
            )
        self.engine = engine
        if use_kernels:
            from ..kernels import FeatureKernels

            self.kernels = FeatureKernels(use_bounds=use_bounds)
        else:
            self.kernels = None
        self.estimates: Optional[Estimates] = None
        self.state: Optional[MatchState] = None
        self.history: List[IncrementalResult] = []
        self.last_run: Optional[MatchResult] = None

    # ------------------------------------------------------------------
    # Engine selection
    # ------------------------------------------------------------------

    def _resolve_engine(self, function: MatchingFunction) -> str:
        """The engine a run over ``function`` will actually use.

        ``"auto"`` resolves per call (the function changes across edits)
        by compiling the plan and reading the cost model's
        :class:`~repro.engine.EngineDecision` — columnar exactly when its
        estimated per-pair cost undercuts the scalar loop's, given the
        session's kernels and current estimates.
        """
        if self.engine != "auto":
            return self.engine
        if self.kernels is None:
            return "scalar"
        return self.compile_plan(function).decision.engine

    def compile_plan(self, function: Optional[MatchingFunction] = None):
        """The :class:`~repro.engine.MatchPlan` for the current function.

        Compiled against the session's kernels and cost estimates — the
        workbench ``plan`` command renders its :meth:`describe`.
        """
        from ..engine import plan_function

        if function is None:
            function = (
                self.state.function if self.state is not None
                else self.initial_function
            )
        return plan_function(
            function,
            kernels=self.kernels,
            estimates=self.estimates,
            check_cache_first=self.check_cache_first,
        )

    def _full_matcher(self, memo, recorder):
        """A full-run matcher honoring the resolved engine (reorder/rerun)."""
        if self._resolve_engine(recorder.function) == "columnar":
            from ..engine import ColumnarMatcher

            return ColumnarMatcher(
                memo=memo,
                check_cache_first=self.check_cache_first,
                recorder=recorder,
                kernels=self.kernels,
            )
        return DynamicMemoMatcher(
            memo=memo,
            check_cache_first=self.check_cache_first,
            recorder=recorder,
            kernels=self.kernels,
        )

    def _report_engine_metrics(self, matcher) -> None:
        if self.observability is None:
            return
        executor = getattr(matcher, "last_executor", None)
        if executor is not None:
            executor.report_metrics(self.observability.metrics)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @classmethod
    def from_materialized(
        cls,
        candidates: CandidateSet,
        state: MatchState,
        gold: Optional[Set[PairId]] = None,
        **session_kwargs,
    ) -> "DebugSession":
        """A session adopting an already-materialized :class:`MatchState`.

        The restore path of :func:`repro.core.persistence.load_session`:
        no initial run happens — the state (function, labels, memo,
        bitmaps) is taken as-is, and the session's kernels are attached to
        it so subsequent edits and streaming re-matches go through the
        token cache exactly as they would have in the original process.
        Cost estimates start empty; they rebuild on the next
        :meth:`reorder` (or stay absent — every consumer handles ``None``).
        """
        session = cls(candidates, state.function, gold=gold, **session_kwargs)
        state.kernels = session.kernels
        state.check_cache_first = session.check_cache_first
        session.state = state
        return session

    def run(self, workers: int = 1) -> MatchResult:
        """Initial full matching run: estimate → order → match → materialize.

        ``workers > 1`` shards the run across a process pool (see
        :mod:`repro.parallel`); labels, memo, and materialized state are
        bit-identical to the serial run — only wall-clock changes.  The
        parallel engine falls back to serial automatically when the pool
        cannot be used.
        """
        from ..observability import maybe_span, record_match_stats

        observability = self.observability
        function = self.initial_function
        with maybe_span(
            observability, "run", workers=workers, pairs=len(self.candidates)
        ):
            if self.ordering_strategy not in ("original", "random"):
                with maybe_span(observability, "estimate"):
                    self.estimates = self.estimator.estimate(
                        function, self.candidates, kernels=self.kernels
                    )
            with maybe_span(observability, "order", strategy=self.ordering_strategy):
                function = order_function(
                    function, self.estimates, self.ordering_strategy
                )
            with maybe_span(observability, "match"):
                if workers > 1:
                    result = self._run_parallel(function, workers)
                else:
                    self.state, result = MatchState.from_initial_run(
                        function,
                        self.candidates,
                        memo_backend=self.memo_backend,
                        check_cache_first=self.check_cache_first,
                        profiler=(
                            observability.profiler if observability else None
                        ),
                        kernels=self.kernels,
                        engine=self._resolve_engine(function),
                        metrics=(
                            observability.metrics if observability else None
                        ),
                    )
        if observability is not None:
            record_match_stats(observability.metrics, result.stats, prefix="run")
            if self.kernels is not None:
                self.kernels.report_metrics(observability.metrics)
                self._trace_unsupported(observability)
        self.last_run = result
        return result

    def _trace_unsupported(self, observability) -> None:
        """Record one trace span per newly-seen kernel-unsupported feature.

        Pairs with the ``engine.kernel_unsupported`` counter: the metric
        says *how many* features fell back to per-pair evaluation, the
        spans say *which* and *why* (e.g. a TokenSetSimilarity subclass
        overriding ``compare``, which :meth:`FeatureKernels.supports`
        would otherwise reject silently).
        """
        for name, reason in self.kernels.drain_unsupported():
            with observability.tracer.span(
                "kernel.unsupported", feature=name, reason=reason
            ):
                pass

    def _run_parallel(self, function: MatchingFunction, workers: int) -> MatchResult:
        """Initial run via the parallel engine, materializing the same state
        (memo + bitmaps, via trace replay) a serial run would build."""
        # Imported here: repro.parallel imports repro.core submodules.
        from ..parallel import ParallelMatcher

        names = [feature.name for feature in function.features()]
        memo = (
            ArrayMemo(len(self.candidates), names)
            if self.memo_backend == "array"
            else HashMemo(len(self.candidates), names)
        )
        state = MatchState(
            function,
            self.candidates,
            memo,
            check_cache_first=self.check_cache_first,
            kernels=self.kernels,
        )
        matcher = ParallelMatcher(
            workers=workers,
            memo=memo,
            memo_backend=self.memo_backend,
            check_cache_first=self.check_cache_first,
            recorder=state,
            estimates=self.estimates,
            observability=self.observability,
            kernels=self.kernels,
            # Pass "auto" through unresolved: each worker process re-binds
            # the plan against its *own* kernels and resolves there.
            engine=self.engine,
        )
        result = matcher.run(function, self.candidates)
        state.labels = result.labels.copy()
        self.state = state
        return result

    def apply(self, change: Change) -> IncrementalResult:
        """Apply one edit incrementally (Algorithms 7-10).

        With a columnar engine the affected pairs run through the
        set-at-a-time executor (:mod:`repro.engine.incremental`); the
        resulting state is bit-identical to the scalar algorithms."""
        state = self._require_state()
        if self._resolve_engine(state.function) == "columnar":
            from ..engine import apply_change_columnar

            result = apply_change_columnar(
                state,
                change,
                metrics=(
                    self.observability.metrics if self.observability else None
                ),
            )
        else:
            result = apply_change(state, change)
        self.history.append(result)
        if self.paranoid:
            scratch = DynamicMemoMatcher().run(state.function, self.candidates)
            state.validate_against(scratch.labels)
        return result

    def apply_many(self, changes: Sequence[Change]) -> List[IncrementalResult]:
        """Apply a batch of edits in order, returning each outcome.

        Stops at the first failing change (its exception propagates);
        earlier changes stay applied — matching state is always
        consistent with ``self.function`` even on partial failure.
        """
        return [self.apply(change) for change in changes]

    def reorder(self, strategy: Optional[str] = None) -> MatchResult:
        """Re-optimize the rule order of the *current* (edited) function.

        After a burst of edits, the order chosen for the initial rule set
        may be stale: selectivities shifted, rules came and went.  This
        re-estimates on a fresh sample, re-orders with ``strategy``
        (default: the session's configured one), and rebuilds the
        materialized state with a full re-run — which is cheap now, since
        the memo is warm.  A reorder is mandatory before relying on
        position-based reasoning because the incremental bitmaps'
        attribution invariant is tied to rule positions; hence the state
        rebuild rather than an in-place permutation.
        """
        state = self._require_state()
        strategy = strategy or self.ordering_strategy
        function = state.function
        if strategy not in ("original", "random"):
            self.estimates = self.estimator.estimate(
                function, self.candidates, kernels=self.kernels
            )
        function = order_function(function, self.estimates, strategy)
        fresh = MatchState(
            function,
            self.candidates,
            state.memo,
            check_cache_first=self.check_cache_first,
            kernels=self.kernels,
        )
        matcher = self._full_matcher(state.memo, fresh)
        result = matcher.run(function, self.candidates)
        fresh.labels = result.labels.copy()
        self._report_engine_metrics(matcher)
        self.state = fresh
        self.last_run = result
        return result

    def rerun_full(self) -> MatchResult:
        """Full re-run against the persistent memo (the paper's
        "precomputation variation"); rebuilds state from scratch."""
        state = self._require_state()
        fresh = MatchState(
            state.function,
            self.candidates,
            state.memo,
            check_cache_first=self.check_cache_first,
            kernels=self.kernels,
        )
        matcher = self._full_matcher(state.memo, fresh)
        result = matcher.run(state.function, self.candidates)
        fresh.labels = result.labels.copy()
        self._report_engine_metrics(matcher)
        self.state = fresh
        self.last_run = result
        return result

    def refine(
        self,
        config=None,
        gold: Optional[Set[PairId]] = None,
        seed_rules: Sequence = (),
        feature_universe: Sequence = (),
        feature_space=None,
        **config_overrides,
    ):
        """Run the automated refinement search (see :mod:`repro.refine`).

        Scores candidate edits through the incremental engine against the
        session's gold labels (or an explicit ``gold`` override) and
        returns a :class:`~repro.refine.search.RefinementReport` with the
        Pareto frontier over (precision, recall, expected cost).  The
        session's state is untouched afterwards — apply a chosen frontier
        entry with :meth:`apply_many` (``report.best.edits``).

        ``feature_space`` (a :class:`repro.learning.FeatureSpace`) widens
        the search: its features join the add-predicate/add-rule universe
        and the §7.1 extractor mines whole-rule seeds from it.  Keyword
        overrides (``budget=...``, ``beam_width=...``) build or adjust the
        :class:`~repro.refine.search.RefineConfig`.
        """
        from dataclasses import replace as dataclass_replace

        from ..errors import RefinementError
        from ..refine import RefineConfig, RefinementSearch, extractor_seed_rules

        gold = gold if gold is not None else self.gold
        if not gold:
            raise RefinementError(
                "refinement needs gold labels; build the session with gold= "
                "or pass gold=... explicitly"
            )
        state = self._require_state()
        if config is None:
            config = RefineConfig(**config_overrides)
        elif config_overrides:
            config = dataclass_replace(config, **config_overrides)
        seed_rules = list(seed_rules)
        feature_universe = list(feature_universe)
        if feature_space is not None:
            seed_rules.extend(
                extractor_seed_rules(
                    self.candidates, gold, feature_space, seed=config.seed
                )
            )
            feature_universe.extend(feature_space)
        search = RefinementSearch(
            state,
            gold,
            config=config,
            seed_rules=seed_rules,
            feature_universe=feature_universe,
            observability=self.observability,
            kernels=self.kernels,
            engine=self._resolve_engine(state.function),
        )
        return search.run()

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def function(self) -> MatchingFunction:
        """The current (possibly edited, possibly reordered) function."""
        return self._require_state().function

    def labels(self):
        return self._require_state().labels

    def matched_ids(self) -> List[PairId]:
        state = self._require_state()
        return [
            self.candidates[index].pair_id for index in state.matched_indices()
        ]

    def metrics(
        self, evaluated_indices: Optional[Sequence[int]] = None
    ) -> Confusion:
        """Quality against the session's gold labels (MatchingError if the
        session was built without gold)."""
        if self.gold is None:
            raise MatchingError("session has no gold labels to score against")
        state = self._require_state()
        return confusion(state.labels, self.candidates, self.gold, evaluated_indices)

    def explain(self, a_id: str, b_id: str) -> PairExplanation:
        """Evaluate every rule and predicate for one pair, via the memo.

        Unlike matching, explanation evaluates *everything* (no early
        exit): the analyst needs to see all the near-miss predicates, not
        just the first failing one.  Computed values are memoized, so
        explaining is cheap after the first look.
        """
        state = self._require_state()
        index = self.candidates.index_of(a_id, b_id)
        pair = self.candidates[index]
        rule_traces: List[RuleTrace] = []
        for rule in state.function.rules:
            predicate_traces: List[PredicateTrace] = []
            rule_matched = True
            for predicate in rule.predicates:
                cached = state.memo.get(index, predicate.feature.name)
                if cached is None:
                    cached = predicate.feature.compute(pair.record_a, pair.record_b)
                    state.memo.put(index, predicate.feature.name, cached)
                passed = predicate.evaluate(cached)
                rule_matched = rule_matched and passed
                predicate_traces.append(
                    PredicateTrace(pid=predicate.pid, value=cached, passed=passed)
                )
            rule_traces.append(
                RuleTrace(
                    rule_name=rule.name,
                    matched=rule_matched,
                    predicates=predicate_traces,
                )
            )
        return PairExplanation(
            pair_id=(a_id, b_id),
            matched=bool(state.labels[index]),
            rules=rule_traces,
        )

    def memory_report(self) -> Dict[str, int]:
        """§7.4-style byte accounting of the materialized state."""
        return self._require_state().nbytes()

    def total_incremental_seconds(self) -> float:
        return sum(result.elapsed_seconds for result in self.history)

    def _require_state(self) -> MatchState:
        if self.state is None:
            raise StateError("session not started; call run() first")
        return self.state

    def __repr__(self) -> str:
        started = self.state is not None
        return (
            f"DebugSession({len(self.candidates)} pairs, "
            f"{'started' if started else 'not started'}, "
            f"{len(self.history)} edits applied)"
        )
