"""Edit operations on matching functions — the analyst's vocabulary.

§6.2 of the paper enumerates the changes an analyst makes between runs.
Each is a small immutable description object that (a) validates itself
against the current function, (b) produces the edited function, and
(c) knows which incremental algorithm applies.  The actual incremental
label maintenance lives in :mod:`repro.core.incremental`; these objects
are what a :class:`~repro.core.session.DebugSession` logs and replays.

The strictness direction matters for correctness, not just naming:
Algorithm 7 (re-check only previously-matched pairs) is sound only for
changes that *shrink* a rule's true-set; Algorithm 8 (re-check only
observed-false, currently-unmatched pairs) only for changes that *grow*
it.  ``TightenPredicate``/``RelaxPredicate`` therefore refuse thresholds
that move the wrong way rather than silently corrupting the state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ChangeError
from .rules import MatchingFunction, Predicate, Rule


class Change:
    """Base class for matching-function edits."""

    #: which incremental algorithm (paper numbering) handles this change.
    algorithm: int = 0

    def validate(self, function: MatchingFunction) -> None:
        """Raise ChangeError if this change does not apply to ``function``."""
        raise NotImplementedError

    def apply_to(self, function: MatchingFunction) -> MatchingFunction:
        """Return the edited matching function (does not touch state)."""
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.describe()})"


@dataclass(frozen=True, repr=False)
class AddPredicate(Change):
    """Add a predicate to an existing rule (Algorithm 7).

    Equivalent to tightening "an empty predicate that always evaluates to
    true" (§6.2.1), so it shares Algorithm 7 with TightenPredicate.
    """

    rule_name: str
    predicate: Predicate
    algorithm: int = 7

    def validate(self, function: MatchingFunction) -> None:
        rule = function.rule(self.rule_name)
        if any(p.slot == self.predicate.slot for p in rule.predicates):
            raise ChangeError(
                f"rule {self.rule_name!r} already has a predicate in slot "
                f"{self.predicate.slot!r}; tighten it instead"
            )

    def apply_to(self, function: MatchingFunction) -> MatchingFunction:
        rule = function.rule(self.rule_name)
        return function.with_rule_replaced(
            rule.with_predicates([*rule.predicates, self.predicate])
        )

    def describe(self) -> str:
        return f"add {self.predicate.pid} to {self.rule_name}"


@dataclass(frozen=True, repr=False)
class RemovePredicate(Change):
    """Remove a predicate from a rule (Algorithm 8's removal variant)."""

    rule_name: str
    slot: str
    algorithm: int = 8

    def validate(self, function: MatchingFunction) -> None:
        rule = function.rule(self.rule_name)
        rule.predicate_by_slot(self.slot)  # raises if absent
        if len(rule.predicates) == 1:
            raise ChangeError(
                f"cannot remove the only predicate of rule {self.rule_name!r}; "
                f"remove the rule instead"
            )

    def apply_to(self, function: MatchingFunction) -> MatchingFunction:
        rule = function.rule(self.rule_name)
        kept = [p for p in rule.predicates if p.slot != self.slot]
        return function.with_rule_replaced(rule.with_predicates(kept))

    def describe(self) -> str:
        return f"remove slot {self.slot} from {self.rule_name}"


@dataclass(frozen=True, repr=False)
class TightenPredicate(Change):
    """Move a predicate's threshold in the stricter direction (Algorithm 7)."""

    rule_name: str
    slot: str
    new_threshold: float
    algorithm: int = 7

    def _old_and_new(self, function: MatchingFunction) -> tuple:
        rule = function.rule(self.rule_name)
        old = rule.predicate_by_slot(self.slot)
        new = old.with_threshold(self.new_threshold)
        return old, new

    def validate(self, function: MatchingFunction) -> None:
        old, new = self._old_and_new(function)
        if not new.is_stricter_than(old):
            raise ChangeError(
                f"threshold {self.new_threshold:g} does not tighten "
                f"{old.pid} — use RelaxPredicate for the other direction"
            )

    def apply_to(self, function: MatchingFunction) -> MatchingFunction:
        rule = function.rule(self.rule_name)
        old, new = self._old_and_new(function)
        predicates = [new if p.slot == self.slot else p for p in rule.predicates]
        return function.with_rule_replaced(rule.with_predicates(predicates))

    def describe(self) -> str:
        return f"tighten {self.rule_name}:{self.slot} to {self.new_threshold:g}"


@dataclass(frozen=True, repr=False)
class RelaxPredicate(Change):
    """Move a predicate's threshold in the looser direction (Algorithm 8)."""

    rule_name: str
    slot: str
    new_threshold: float
    algorithm: int = 8

    def _old_and_new(self, function: MatchingFunction) -> tuple:
        rule = function.rule(self.rule_name)
        old = rule.predicate_by_slot(self.slot)
        new = old.with_threshold(self.new_threshold)
        return old, new

    def validate(self, function: MatchingFunction) -> None:
        old, new = self._old_and_new(function)
        if not old.is_stricter_than(new):
            raise ChangeError(
                f"threshold {self.new_threshold:g} does not relax "
                f"{old.pid} — use TightenPredicate for the other direction"
            )

    def apply_to(self, function: MatchingFunction) -> MatchingFunction:
        rule = function.rule(self.rule_name)
        old, new = self._old_and_new(function)
        predicates = [new if p.slot == self.slot else p for p in rule.predicates]
        return function.with_rule_replaced(rule.with_predicates(predicates))

    def describe(self) -> str:
        return f"relax {self.rule_name}:{self.slot} to {self.new_threshold:g}"


@dataclass(frozen=True, repr=False)
class AddRule(Change):
    """Append a new rule to the matching function (Algorithm 10)."""

    rule: Rule
    algorithm: int = 10

    def validate(self, function: MatchingFunction) -> None:
        if self.rule.name in function:
            raise ChangeError(f"rule {self.rule.name!r} already exists")

    def apply_to(self, function: MatchingFunction) -> MatchingFunction:
        return function.with_rule_added(self.rule)

    def describe(self) -> str:
        return f"add rule {self.rule.name} ({len(self.rule)} predicates)"


@dataclass(frozen=True, repr=False)
class RemoveRule(Change):
    """Remove a rule from the matching function (Algorithm 9)."""

    rule_name: str
    algorithm: int = 9

    def validate(self, function: MatchingFunction) -> None:
        function.rule(self.rule_name)  # raises if absent
        if len(function) == 1:
            raise ChangeError("cannot remove the last rule")

    def apply_to(self, function: MatchingFunction) -> MatchingFunction:
        return function.with_rule_removed(self.rule_name)

    def describe(self) -> str:
        return f"remove rule {self.rule_name}"
