"""Incremental matching — Algorithms 7-10 of the paper (§6.2).

Each function takes a live :class:`~repro.core.state.MatchState` and one
:class:`~repro.core.changes.Change`, updates the state's function, labels,
memo, and bitmaps in place, and returns an :class:`IncrementalResult`
with the work counters.  :func:`apply_change` dispatches by change type.

Soundness argument (and one fix to the paper)
---------------------------------------------
All four algorithms restrict re-evaluation using materialized facts:

* Algorithm 7 (add/tighten predicate in rule r): only pairs matched *by r*
  can change; on failure, only rules **after** r need evaluation, because
  every rule before r was observed false for those pairs.
* Algorithm 8 (relax/remove predicate of rule r): only pairs on which the
  edited predicate was observed false can flip to matched.
* Algorithm 9 (remove rule r): only pairs matched by r change; rules
  before r were observed false, so only rules **after** r need evaluation.
* Algorithm 10 (add rule): only currently-unmatched pairs, only the new
  rule (it is appended last).

The "rules before r are false" steps rest on an *attribution invariant*:
for every matched pair, all rules preceding its attributed (first-true)
rule are currently false.  The paper's Algorithm 8 as written re-checks
only **unmatched** pairs, which silently breaks that invariant: relaxing
rule q may make q true for a pair currently matched by a later rule x, and
a subsequent tighten/remove on x would then wrongly unmatch the pair
(rules before x are skipped, so the now-true q is never consulted).  We
therefore extend Algorithm 8's affected set with matched pairs whose
attribution lies *after* the relaxed rule; for those we re-evaluate the
relaxed rule and re-attribute when it is now true.  Labels never change
for such pairs — only the attribution moves — so the asymptotic savings
of the paper's algorithm are preserved while restoring the invariant.
(Property-based tests in ``tests/test_incremental_properties.py`` fail
within a few examples if this extension is disabled.)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ChangeError
from .changes import (
    AddPredicate,
    AddRule,
    Change,
    RelaxPredicate,
    RemovePredicate,
    RemoveRule,
    TightenPredicate,
)
from .matchers import PairEvaluator
from .rules import MatchingFunction, Predicate, Rule
from .state import MatchState
from .stats import MatchStats


@dataclass
class IncrementalResult:
    """Outcome of one incremental change application."""

    change: Change
    stats: MatchStats
    affected_pairs: int
    newly_matched: int
    newly_unmatched: int

    @property
    def elapsed_seconds(self) -> float:
        return self.stats.elapsed_seconds

    def summary(self) -> str:
        return (
            f"{self.change.describe()}: affected={self.affected_pairs} "
            f"+{self.newly_matched}/-{self.newly_unmatched} matches, "
            f"{self.stats.elapsed_seconds * 1000:.2f}ms "
            f"(computed={self.stats.feature_computations}, "
            f"hits={self.stats.memo_hits})"
        )

    def __repr__(self) -> str:
        return f"IncrementalResult({self.summary()})"


def _evaluator(state: MatchState, stats: MatchStats) -> PairEvaluator:
    return PairEvaluator(
        stats,
        memo=state.memo,
        recorder=state,
        check_cache_first=state.check_cache_first,
        kernels=state.kernels,
    )


def _finish(
    change: Change,
    stats: MatchStats,
    started: float,
    affected: int,
    newly_matched: int,
    newly_unmatched: int,
) -> IncrementalResult:
    stats.elapsed_seconds = time.perf_counter() - started
    stats.pairs_evaluated = affected
    return IncrementalResult(
        change=change,
        stats=stats,
        affected_pairs=affected,
        newly_matched=newly_matched,
        newly_unmatched=newly_unmatched,
    )


# ---------------------------------------------------------------------------
# Algorithm 7: add a predicate / tighten a predicate
# ---------------------------------------------------------------------------


def apply_strictening(state: MatchState, change: Change) -> IncrementalResult:
    """Algorithm 7: the rule's true-set can only shrink.

    Re-evaluate the changed predicate on M(r); pairs that fail fall
    through to the rules after r.  Existing predicate-false bits remain
    sound under tightening (false stays false), so nothing is reset.
    """
    started = time.perf_counter()
    stats = MatchStats()
    change.validate(state.function)
    if isinstance(change, AddPredicate):
        rule_name, changed_slot = change.rule_name, change.predicate.slot
    elif isinstance(change, TightenPredicate):
        rule_name, changed_slot = change.rule_name, change.slot
    else:
        raise ChangeError(f"apply_strictening cannot handle {change!r}")

    affected = state.matched_by_rule(rule_name)
    state.function = change.apply_to(state.function)
    rule = state.function.rule(rule_name)
    changed_predicate = rule.predicate_by_slot(changed_slot)
    rule_position = state.function.rule_index(rule_name)
    later_rules = state.function.rules[rule_position + 1 :]

    evaluator = _evaluator(state, stats)
    newly_unmatched = 0
    for pair_index in affected:
        pair = state.candidates[pair_index]
        if evaluator.predicate_true(pair, changed_predicate, rule_name):
            continue  # still matched by this rule
        state.clear_rule_match(pair_index, rule_name)
        if evaluator.first_matching_rule(pair, later_rules) is None:
            state.labels[pair_index] = False
            newly_unmatched += 1
        # else: first_matching_rule already recorded the new attribution.
    return _finish(change, stats, started, len(affected), 0, newly_unmatched)


# ---------------------------------------------------------------------------
# Algorithm 8: remove a predicate / relax a predicate
# ---------------------------------------------------------------------------


def apply_loosening(state: MatchState, change: Change) -> IncrementalResult:
    """Algorithm 8: the rule's true-set can only grow.

    Candidates to flip are the pairs on which the edited predicate was
    observed false (no other pair's evaluation involved this predicate as
    the blocker).  Currently-unmatched ones may become matches; matched
    ones attributed to a *later* rule are re-checked for re-attribution to
    preserve the attribution invariant (see module docstring).

    The edited slot's false-bitmap is rebuilt from this pass's
    observations: a relax makes old false-bits unverifiable, so bits are
    kept only where re-evaluation confirms falseness.
    """
    started = time.perf_counter()
    stats = MatchStats()
    change.validate(state.function)
    if isinstance(change, RemovePredicate):
        rule_name, slot, removed = change.rule_name, change.slot, True
    elif isinstance(change, RelaxPredicate):
        rule_name, slot, removed = change.rule_name, change.slot, False
    else:
        raise ChangeError(f"apply_loosening cannot handle {change!r}")

    failed = state.failed_predicate(rule_name, slot)
    state.function = change.apply_to(state.function)
    rule = state.function.rule(rule_name)
    rule_position = state.function.rule_index(rule_name)
    relaxed_predicate: Optional[Predicate] = (
        None if removed else rule.predicate_by_slot(slot)
    )
    other_predicates = tuple(
        predicate for predicate in rule.predicates if predicate.slot != slot
    )

    if removed:
        state.drop_predicate(rule_name, slot)
    else:
        # Old false-bits are stale under the looser threshold; keep only
        # what this pass re-verifies.
        state.reset_predicate_false(rule_name, slot)

    evaluator = _evaluator(state, stats)
    newly_matched = 0
    examined = 0
    for pair_index in failed:
        currently_matched = bool(state.labels[pair_index])
        attributed = int(state.attribution[pair_index])
        if currently_matched and attributed <= rule_position:
            # Matched by this rule or an earlier one: the invariant only
            # covers rules before the attribution, which don't include r.
            continue
        examined += 1
        pair = state.candidates[pair_index]
        if relaxed_predicate is not None and not evaluator.predicate_true(
            pair, relaxed_predicate, rule_name
        ):
            continue  # still false (bit re-recorded by the evaluator)
        # Edited predicate passes; check the rest of the rule.  The paper's
        # §6.2.2 footnote: with check-cache-first the historical predicate
        # order is pair-dependent, so all other predicates are re-checked.
        rule_true = True
        for predicate in other_predicates:
            if not evaluator.predicate_true(pair, predicate, rule_name):
                rule_true = False
                break
        if not rule_true:
            continue
        if currently_matched:
            # Re-attribution: r precedes the current attribution.
            state.clear_rule_match(
                pair_index, state.function.rules[attributed].name
            )
            state.record_rule_match(pair_index, rule_name)
        else:
            state.record_rule_match(pair_index, rule_name)
            state.labels[pair_index] = True
            newly_matched += 1
    return _finish(change, stats, started, examined, newly_matched, 0)


# ---------------------------------------------------------------------------
# Algorithm 9: remove a rule
# ---------------------------------------------------------------------------


def apply_remove_rule(state: MatchState, change: RemoveRule) -> IncrementalResult:
    """Algorithm 9: pairs matched by the removed rule fall through to the
    rules after it (earlier rules are false by the attribution invariant)."""
    started = time.perf_counter()
    stats = MatchStats()
    change.validate(state.function)
    rule_name = change.rule_name
    affected = state.matched_by_rule(rule_name)
    old_index = state.function.rule_index(rule_name)
    state.function = change.apply_to(state.function)
    state.drop_rule(rule_name, old_index)
    # Positions shifted down by one for rules after the removed one.
    later_rules = state.function.rules[old_index:]

    evaluator = _evaluator(state, stats)
    newly_unmatched = 0
    for pair_index in affected:
        # drop_rule cleared the bitmap wholesale; fix this pair's entry.
        state.attribution[pair_index] = -1
        pair = state.candidates[pair_index]
        if evaluator.first_matching_rule(pair, later_rules) is None:
            state.labels[pair_index] = False
            newly_unmatched += 1
    return _finish(change, stats, started, len(affected), 0, newly_unmatched)


# ---------------------------------------------------------------------------
# Algorithm 10: add a rule
# ---------------------------------------------------------------------------


def apply_add_rule(state: MatchState, change: AddRule) -> IncrementalResult:
    """Algorithm 10: evaluate only the new rule, only on unmatched pairs.

    The new rule is appended at the end of the evaluation order, so for
    every already-matched pair nothing changes (its attributed rule still
    fires first), and for unmatched pairs every older rule is already
    known false.
    """
    started = time.perf_counter()
    stats = MatchStats()
    change.validate(state.function)
    affected = state.unmatched_indices()
    state.function = change.apply_to(state.function)
    new_rules = (state.function.rules[-1],)

    evaluator = _evaluator(state, stats)
    newly_matched = 0
    for pair_index in affected:
        pair = state.candidates[pair_index]
        if evaluator.first_matching_rule(pair, new_rules) is not None:
            state.labels[pair_index] = True
            newly_matched += 1
    return _finish(change, stats, started, len(affected), newly_matched, 0)


# ---------------------------------------------------------------------------
# Dispatch
# ---------------------------------------------------------------------------


def apply_change(state: MatchState, change: Change) -> IncrementalResult:
    """Apply any change with its matching incremental algorithm."""
    if isinstance(change, (AddPredicate, TightenPredicate)):
        return apply_strictening(state, change)
    if isinstance(change, (RemovePredicate, RelaxPredicate)):
        return apply_loosening(state, change)
    if isinstance(change, RemoveRule):
        return apply_remove_rule(state, change)
    if isinstance(change, AddRule):
        return apply_add_rule(state, change)
    raise ChangeError(f"no incremental algorithm for {type(change).__name__}")
