"""Feature memos — the "Γ" of Algorithms 2 and 4.

Two interchangeable backends implement the paper's §7.4 discussion:

* :class:`ArrayMemo` — a dense ``|C| × |F|`` float array with a validity
  bitmask.  O(1) access with tiny constants; memory is |C|·|F|·9 bytes
  whether or not entries are filled.  This is the paper's choice.
* :class:`HashMemo` — a dict keyed by ``(pair_index, feature_name)``.
  Pays hashing on every access but only stores what was computed — the
  alternative the paper suggests "for a data set where [the array does
  not fit in memory]".

Both persist across matching runs: dynamic memoing's payoff in the
debugging loop comes precisely from the memo surviving rule edits.

:class:`ValueCache` is the orthogonal *value-level* cache of Algorithm 2's
"hash table mapping pairs of attribute values to similarity function
outputs": two candidate pairs with identical attribute values share one
computation.  Matchers can layer it under either memo.
"""

from __future__ import annotations

import sys
from abc import ABC, abstractmethod
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple, Union

import numpy as np

from ..errors import MatchingError, UnknownFeatureError

#: How ``update_from`` translates the source memo's pair indices into the
#: destination's: a mapping, a callable, or ``None`` for identity.
IndexMap = Union[Mapping[int, int], Callable[[int], int], None]


class FeatureMemo(ABC):
    """Protocol shared by both memo backends."""

    @abstractmethod
    def get(self, pair_index: int, feature_name: str) -> Optional[float]:
        """Stored value, or ``None`` if not yet computed."""

    @abstractmethod
    def put(self, pair_index: int, feature_name: str, value: float) -> None:
        """Store a computed value."""

    @abstractmethod
    def contains(self, pair_index: int, feature_name: str) -> bool:
        """True iff the value is memoized (used by check-cache-first)."""

    @abstractmethod
    def items(self) -> Iterator[Tuple[int, str, float]]:
        """Iterate all memoized entries as ``(pair_index, feature_name, value)``.

        Order is backend-defined but deterministic for a given put history.
        """

    @abstractmethod
    def __len__(self) -> int:
        """Number of memoized entries."""

    @abstractmethod
    def nbytes(self) -> int:
        """Approximate resident bytes (for the §7.4 memory experiment)."""

    @abstractmethod
    def clear(self) -> None:
        """Drop all entries (fresh debugging session)."""

    @abstractmethod
    def invalidate_pairs(self, pair_indices: Iterable[int]) -> int:
        """Evict every memoized feature value of the given pairs.

        Streaming updates call this when a record changes: its incident
        pairs' feature values are stale, everything else stays warm.
        Returns the number of entries evicted.
        """

    @abstractmethod
    def snapshot(self) -> object:
        """An opaque copy of the memo's contents for later :meth:`restore`.

        Used by the refinement search's rollback API.  Because memoized
        feature values depend only on the record pair — never on the
        matching function — restoring a memo snapshot is *optional* for
        correctness after a rolled-back rule edit; it exists for callers
        that need byte-identical accounting (entry counts, fill
        fractions) as well.
        """

    @abstractmethod
    def restore(self, snapshot: object) -> None:
        """Reset the memo to a state captured by :meth:`snapshot`.

        The snapshot may be restored any number of times; restoring never
        consumes it.
        """

    # -- row-batch access (the columnar engine's view) -------------------
    #
    # Generic implementations loop over the scalar accessors so every
    # backend works out of the box; ArrayMemo overrides them with single
    # fancy-indexed array operations.  Semantics are defined to match the
    # scalar accessors exactly (same entry accounting, same float64
    # read-back), which the engine's bit-identity property relies on.

    def valid_rows(self, feature_name: str, rows) -> np.ndarray:
        """Bool mask over ``rows``: which pairs have the feature memoized."""
        return np.fromiter(
            (self.contains(int(row), feature_name) for row in rows),
            dtype=bool,
            count=len(rows),
        )

    def get_rows(self, feature_name: str, rows) -> np.ndarray:
        """Memoized values for ``rows`` as float64 (all must be present)."""
        return np.fromiter(
            (self.get(int(row), feature_name) for row in rows),
            dtype=np.float64,
            count=len(rows),
        )

    def put_rows(self, feature_name: str, rows, values) -> None:
        """Store one value per row (the batched counterpart of ``put``)."""
        for row, value in zip(rows, values):
            self.put(int(row), feature_name, float(value))

    def update_from(
        self,
        other: "FeatureMemo",
        index_map: IndexMap = None,
        check_conflicts: bool = False,
        on_conflict: str = "overwrite",
    ) -> int:
        """Bulk-merge every entry of ``other`` into this memo.

        ``index_map`` translates the source memo's pair indices into this
        memo's index space (a dict, a callable, or ``None`` for identity) —
        the parallel executor passes each chunk's local→global offset here.

        ``on_conflict`` says what happens when both memos hold a value for
        the same (pair, feature) key:

        * ``"overwrite"`` (default) — the incoming value wins
          (last-write-wins, the historical behavior);
        * ``"keep"`` — the existing value wins, the incoming one is
          dropped (and not counted as copied);
        * ``"error"`` — raise :class:`~repro.errors.MatchingError` when the
          two values *differ*.  Because memoized feature values are
          deterministic functions of the record pair, a differing conflict
          indicates a bug (mis-aligned index map, stale memo); equal
          values are written through silently.

        ``check_conflicts=True`` is the deprecated spelling of
        ``on_conflict="error"`` and is kept for back-compatibility.

        Returns the number of entries copied.
        """
        if check_conflicts:
            on_conflict = "error"
        if on_conflict not in ("overwrite", "keep", "error"):
            raise MatchingError(
                f"on_conflict must be 'overwrite', 'keep', or 'error', "
                f"got {on_conflict!r}"
            )
        if index_map is None:
            translate: Callable[[int], int] = lambda index: index
        elif callable(index_map):
            translate = index_map
        else:
            translate = index_map.__getitem__
        copied = 0
        for pair_index, feature_name, value in other.items():
            target = translate(pair_index)
            if on_conflict != "overwrite":
                existing = self.get(target, feature_name)
                if existing is not None:
                    if on_conflict == "keep":
                        continue
                    if existing != value:
                        raise MatchingError(
                            f"memo merge conflict on pair {target}, feature "
                            f"{feature_name!r}: existing {existing!r} != "
                            f"incoming {value!r}"
                        )
            self.put(target, feature_name, value)
            copied += 1
        return copied


class ArrayMemo(FeatureMemo):
    """Dense ``|C| × |F|`` array memo (the paper's implementation).

    Feature columns are allocated on first use; the column set may grow as
    the analyst introduces new features mid-session (``ensure_feature``),
    with geometric growth so amortized insertion stays O(1).

    ``dtype`` controls value-array precision.  The default ``float64``
    round-trips every Python float exactly (required for the bit-identity
    guarantees of the memo merge and kernel layers); ``float32`` halves
    the value-array footprint at the cost of rounding stored scores to
    single precision on read-back.
    """

    def __init__(
        self,
        n_pairs: int,
        feature_names: Iterable[str] = (),
        dtype=np.float64,
    ):
        if n_pairs < 0:
            raise ValueError(f"n_pairs must be >= 0, got {n_pairs}")
        dtype = np.dtype(dtype)
        if dtype.kind != "f":
            raise ValueError(f"dtype must be a float dtype, got {dtype}")
        self.n_pairs = n_pairs
        self.dtype = dtype
        self._columns: Dict[str, int] = {}
        initial = list(feature_names)
        capacity = max(len(initial), 4)
        self._values = np.zeros((n_pairs, capacity), dtype=dtype)
        self._valid = np.zeros((n_pairs, capacity), dtype=bool)
        self._entries = 0
        for name in initial:
            self.ensure_feature(name)

    def ensure_feature(self, feature_name: str) -> int:
        """Return the column index for ``feature_name``, allocating it if new."""
        column = self._columns.get(feature_name)
        if column is not None:
            return column
        column = len(self._columns)
        if column >= self._values.shape[1]:
            grown = max(4, self._values.shape[1] * 2)
            values = np.zeros((self.n_pairs, grown), dtype=self.dtype)
            valid = np.zeros((self.n_pairs, grown), dtype=bool)
            values[:, : self._values.shape[1]] = self._values
            valid[:, : self._valid.shape[1]] = self._valid
            self._values, self._valid = values, valid
        self._columns[feature_name] = column
        return column

    def _column(self, feature_name: str) -> int:
        column = self._columns.get(feature_name)
        if column is None:
            raise UnknownFeatureError(
                f"feature {feature_name!r} has no memo column; call "
                f"ensure_feature first"
            )
        return column

    def get(self, pair_index: int, feature_name: str) -> Optional[float]:
        column = self._columns.get(feature_name)
        if column is None or not self._valid[pair_index, column]:
            return None
        return float(self._values[pair_index, column])

    def put(self, pair_index: int, feature_name: str, value: float) -> None:
        column = self.ensure_feature(feature_name)
        if not self._valid[pair_index, column]:
            self._entries += 1
        self._values[pair_index, column] = value
        self._valid[pair_index, column] = True

    def contains(self, pair_index: int, feature_name: str) -> bool:
        column = self._columns.get(feature_name)
        return column is not None and bool(self._valid[pair_index, column])

    def valid_rows(self, feature_name: str, rows) -> np.ndarray:
        column = self._columns.get(feature_name)
        if column is None:
            return np.zeros(len(rows), dtype=bool)
        return self._valid[rows, column]

    def get_rows(self, feature_name: str, rows) -> np.ndarray:
        # astype(float64) mirrors the scalar get()'s float() cast, so a
        # float32-backed memo reads back identically on both engines.
        column = self._column(feature_name)
        return self._values[rows, column].astype(np.float64)

    def put_rows(self, feature_name: str, rows, values) -> None:
        column = self.ensure_feature(feature_name)
        newly = int((~self._valid[rows, column]).sum())
        self._values[rows, column] = values
        self._valid[rows, column] = True
        self._entries += newly

    def fill_column(self, feature_name: str, values: np.ndarray) -> None:
        """Bulk-store a full column (used by the precomputation baselines)."""
        if len(values) != self.n_pairs:
            raise ValueError(
                f"column length {len(values)} != n_pairs {self.n_pairs}"
            )
        column = self.ensure_feature(feature_name)
        newly = int((~self._valid[:, column]).sum())
        self._values[:, column] = values
        self._valid[:, column] = True
        self._entries += newly

    def fill_fraction(self, feature_name: str) -> float:
        """Fraction of pairs whose value for this feature is memoized."""
        column = self._columns.get(feature_name)
        if column is None or self.n_pairs == 0:
            return 0.0
        return float(self._valid[:, column].mean())

    def items(self):
        for name, column in self._columns.items():
            valid = self._valid[:, column]
            for pair_index in np.flatnonzero(valid):
                yield int(pair_index), name, float(self._values[pair_index, column])

    def __len__(self) -> int:
        return self._entries

    def nbytes(self) -> int:
        # The column-name index is part of the memo's real footprint: with
        # hundreds of learned features its dict + key strings are not
        # negligible next to a small candidate set's arrays.
        index_bytes = sys.getsizeof(self._columns) + sum(
            sys.getsizeof(name) for name in self._columns
        )
        return int(self._values.nbytes + self._valid.nbytes + index_bytes)

    def clear(self) -> None:
        self._valid[:] = False
        self._entries = 0

    def invalidate_pairs(self, pair_indices: Iterable[int]) -> int:
        rows = np.unique(np.fromiter(pair_indices, dtype=np.int64))
        if rows.size == 0:
            return 0
        evicted = int(self._valid[rows, :].sum())
        self._valid[rows, :] = False
        self._entries -= evicted
        return evicted

    def snapshot(self) -> object:
        return (
            dict(self._columns),
            self._values.copy(),
            self._valid.copy(),
            self._entries,
        )

    def restore(self, snapshot: object) -> None:
        columns, values, valid, entries = snapshot
        self._columns = dict(columns)
        self._values = values.copy()
        self._valid = valid.copy()
        self._entries = entries

    def __repr__(self) -> str:
        return (
            f"ArrayMemo({self.n_pairs} pairs x {len(self._columns)} features, "
            f"{self._entries} entries, {self.nbytes() / 1e6:.1f} MB)"
        )


class HashMemo(FeatureMemo):
    """Sparse dict-backed memo — stores only computed entries."""

    #: rough CPython overhead of one dict entry (key tuple + float + slot).
    _BYTES_PER_ENTRY = 120

    def __init__(self, n_pairs: int = 0, feature_names: Iterable[str] = ()):
        # Signature mirrors ArrayMemo so the two are drop-in interchangeable;
        # the sizing arguments are advisory only.
        self.n_pairs = n_pairs
        self._store: Dict[Tuple[int, str], float] = {}

    def ensure_feature(self, feature_name: str) -> None:
        """No-op (hash memos need no column allocation)."""

    def get(self, pair_index: int, feature_name: str) -> Optional[float]:
        return self._store.get((pair_index, feature_name))

    def put(self, pair_index: int, feature_name: str, value: float) -> None:
        self._store[(pair_index, feature_name)] = value

    def contains(self, pair_index: int, feature_name: str) -> bool:
        return (pair_index, feature_name) in self._store

    def items(self):
        for (pair_index, name), value in self._store.items():
            yield pair_index, name, value

    def __len__(self) -> int:
        return len(self._store)

    def nbytes(self) -> int:
        return len(self._store) * self._BYTES_PER_ENTRY

    def clear(self) -> None:
        self._store.clear()

    def invalidate_pairs(self, pair_indices: Iterable[int]) -> int:
        doomed = set(pair_indices)
        if not doomed:
            return 0
        stale = [key for key in self._store if key[0] in doomed]
        for key in stale:
            del self._store[key]
        return len(stale)

    def snapshot(self) -> object:
        return dict(self._store)

    def restore(self, snapshot: object) -> None:
        self._store = dict(snapshot)

    def __repr__(self) -> str:
        return f"HashMemo({len(self._store)} entries)"


class ValueCache:
    """Cache keyed by attribute *values* rather than pair indices.

    Algorithm 2 stores "a hash table mapping pairs of attribute values to
    similarity function outputs": when many records share values (common
    for brands, categories, cities), distinct pairs reuse one computation.
    The key is symmetric-insensitive only if the measure is symmetric,
    which the package guarantees, so we canonicalize the value order.
    """

    def __init__(self):
        self._store: Dict[Tuple[str, object, object], float] = {}
        self.hits = 0
        self.misses = 0

    def lookup(
        self, feature_name: str, value_a: object, value_b: object
    ) -> Optional[float]:
        key = self._key(feature_name, value_a, value_b)
        cached = self._store.get(key)
        if cached is None:
            self.misses += 1
        else:
            self.hits += 1
        return cached

    def store(
        self, feature_name: str, value_a: object, value_b: object, value: float
    ) -> None:
        self._store[self._key(feature_name, value_a, value_b)] = value

    @staticmethod
    def _key(feature_name: str, value_a: object, value_b: object):
        first, second = str(value_a), str(value_b)
        if second < first:
            first, second = second, first
        return (feature_name, first, second)

    def __len__(self) -> int:
        return len(self._store)
