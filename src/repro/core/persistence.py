"""Persist and restore a debugging session's materialized state.

Analysts iterate on a matching task over hours or days; the memo — the
expensive part of the state — is worth keeping across process restarts.
This module serializes a :class:`~repro.core.state.MatchState` to a
directory:

* ``function.rules`` — the matching function in DSL text (human-readable,
  diffable; re-parsed on load through the caller's feature resolver so
  corpus-bound measures reattach correctly),
* ``state.npz``     — labels, attribution, memo contents, and bitmaps as
  compressed numpy arrays,
* ``stats.json``    — optional full-fidelity :class:`MatchStats` of the
  run that produced the state (phase timings and worker timings included),
* ``meta.json``     — candidate-set fingerprint and format version.

The candidate set itself is NOT serialized — it is deterministic from the
dataset + blocker, and re-blocking is cheap relative to re-computing
similarity scores.  A fingerprint (pair count + hash of the id sequence)
guards against loading state onto a different candidate set, which would
silently misalign every pair index.

Session checkpoints
-------------------
:func:`save_session` / :func:`load_session` widen the unit of durability
from one :class:`MatchState` to one live
:class:`~repro.streaming.session.StreamingSession` — the serving layer's
(:mod:`repro.service`) unit of work.  A checkpoint directory additionally
holds the *live tables* (which deltas have mutated away from any
generator), the candidate order (survivors-then-gained, which a fresh
re-block would not reproduce), gold labels, token caches, accumulated
stats, and the session's configuration.  The blocker itself is rebuilt by
the caller (it may close over lambdas); re-blocking the restored tables
reproduces its delta index exactly, which the streaming adopt path
verifies pair-for-pair.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..data.pairs import CandidateSet
from ..data.table import Record, Table
from ..errors import StateError
from .memo import ArrayMemo, FeatureMemo, HashMemo
from .parser import FeatureResolver, format_function, parse_function
from .state import MatchState
from .stats import MatchStats, WorkerTiming

FORMAT_VERSION = 1
SESSION_FORMAT_VERSION = 1


def candidate_fingerprint(candidates: CandidateSet) -> str:
    """A stable fingerprint of the candidate set's identity and order."""
    digest = hashlib.sha256()
    for a_id, b_id in candidates.id_pairs():
        digest.update(a_id.encode())
        digest.update(b"\x1f")
        digest.update(b_id.encode())
        digest.update(b"\x1e")
    return f"{len(candidates)}:{digest.hexdigest()[:24]}"


def _memo_arrays(memo: FeatureMemo, n_pairs: int) -> Dict[str, np.ndarray]:
    """Extract memo contents as parallel (pair, feature-id, value) arrays."""
    pairs = []
    feature_ids = []
    values = []
    feature_names: Dict[str, int] = {}
    if isinstance(memo, ArrayMemo):
        for name, column in memo._columns.items():
            feature_names.setdefault(name, len(feature_names))
            valid = memo._valid[:, column]
            for pair_index in np.flatnonzero(valid):
                pairs.append(int(pair_index))
                feature_ids.append(feature_names[name])
                values.append(float(memo._values[pair_index, column]))
    elif isinstance(memo, HashMemo):
        for (pair_index, name), value in memo._store.items():
            feature_names.setdefault(name, len(feature_names))
            pairs.append(pair_index)
            feature_ids.append(feature_names[name])
            values.append(value)
    else:
        raise StateError(f"cannot serialize memo type {type(memo).__name__}")
    ordered_names = [None] * len(feature_names)
    for name, index in feature_names.items():
        ordered_names[index] = name
    return {
        "memo_pairs": np.asarray(pairs, dtype=np.int64),
        "memo_features": np.asarray(feature_ids, dtype=np.int32),
        "memo_values": np.asarray(values, dtype=np.float64),
        "memo_feature_names": np.asarray(ordered_names, dtype=object),
    }


def stats_to_dict(stats: MatchStats) -> dict:
    """Full-fidelity JSON-able form of a :class:`MatchStats`.

    Every counter round-trips through :func:`stats_from_dict`, including
    the fields a naive ``vars()`` dump would mangle: ``phase_seconds``
    (dict), ``worker_timings`` (list of :class:`WorkerTiming`), and
    ``computations_by_feature`` (Counter).
    """
    return {
        "feature_computations": stats.feature_computations,
        "memo_hits": stats.memo_hits,
        "predicate_evaluations": stats.predicate_evaluations,
        "bound_skips": stats.bound_skips,
        "rule_evaluations": stats.rule_evaluations,
        "pairs_evaluated": stats.pairs_evaluated,
        "pairs_matched": stats.pairs_matched,
        "elapsed_seconds": stats.elapsed_seconds,
        "deltas_applied": stats.deltas_applied,
        "pairs_gained": stats.pairs_gained,
        "pairs_lost": stats.pairs_lost,
        "pairs_invalidated": stats.pairs_invalidated,
        "computations_by_feature": dict(stats.computations_by_feature),
        "phase_seconds": dict(stats.phase_seconds),
        "worker_timings": [
            {
                "chunk_id": timing.chunk_id,
                "worker_pid": timing.worker_pid,
                "pairs": timing.pairs,
                "elapsed_seconds": timing.elapsed_seconds,
                "attempts": timing.attempts,
                "fallback": timing.fallback,
            }
            for timing in stats.worker_timings
        ],
    }


def stats_from_dict(data: dict) -> MatchStats:
    """Inverse of :func:`stats_to_dict`."""
    stats = MatchStats(
        feature_computations=int(data.get("feature_computations", 0)),
        memo_hits=int(data.get("memo_hits", 0)),
        predicate_evaluations=int(data.get("predicate_evaluations", 0)),
        bound_skips=int(data.get("bound_skips", 0)),
        rule_evaluations=int(data.get("rule_evaluations", 0)),
        pairs_evaluated=int(data.get("pairs_evaluated", 0)),
        pairs_matched=int(data.get("pairs_matched", 0)),
        elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
        deltas_applied=int(data.get("deltas_applied", 0)),
        pairs_gained=int(data.get("pairs_gained", 0)),
        pairs_lost=int(data.get("pairs_lost", 0)),
        pairs_invalidated=int(data.get("pairs_invalidated", 0)),
    )
    stats.computations_by_feature.update(
        {
            str(name): int(count)
            for name, count in data.get("computations_by_feature", {}).items()
        }
    )
    stats.phase_seconds.update(
        {
            str(phase): float(seconds)
            for phase, seconds in data.get("phase_seconds", {}).items()
        }
    )
    stats.worker_timings.extend(
        WorkerTiming(
            chunk_id=int(timing["chunk_id"]),
            worker_pid=int(timing["worker_pid"]),
            pairs=int(timing["pairs"]),
            elapsed_seconds=float(timing["elapsed_seconds"]),
            attempts=int(timing.get("attempts", 1)),
            fallback=bool(timing.get("fallback", False)),
        )
        for timing in data.get("worker_timings", ())
    )
    return stats


def save_state(
    state: MatchState,
    directory: str | Path,
    stats: Optional[MatchStats] = None,
) -> Path:
    """Serialize ``state`` into ``directory`` (created if needed).

    ``stats`` (the run's :class:`MatchStats`, if the caller kept it) is
    stored alongside in full fidelity — phase timings, worker timings,
    and bound-skip counts survive the round-trip — and comes back via
    :func:`load_stats`.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    (directory / "function.rules").write_text(
        format_function(state.function), encoding="utf-8"
    )

    arrays: Dict[str, np.ndarray] = {
        "labels": state.labels,
        "attribution": state.attribution,
    }
    arrays.update(_memo_arrays(state.memo, len(state.candidates)))

    rule_names = sorted(state._rule_matched)
    arrays["rule_bitmap_names"] = np.asarray(rule_names, dtype=object)
    for index, name in enumerate(rule_names):
        arrays[f"rule_bitmap_{index}"] = state._rule_matched[name]

    slot_keys = sorted(state._predicate_false)
    arrays["slot_bitmap_keys"] = np.asarray(
        ["\x1f".join(key) for key in slot_keys], dtype=object
    )
    for index, key in enumerate(slot_keys):
        arrays[f"slot_bitmap_{index}"] = state._predicate_false[key]

    np.savez_compressed(directory / "state.npz", **arrays)

    meta = {
        "version": FORMAT_VERSION,
        "fingerprint": candidate_fingerprint(state.candidates),
        "memo_backend": "hash" if isinstance(state.memo, HashMemo) else "array",
        "check_cache_first": state.check_cache_first,
        "n_pairs": len(state.candidates),
    }
    (directory / "meta.json").write_text(json.dumps(meta, indent=2))
    if stats is not None:
        (directory / "stats.json").write_text(
            json.dumps(stats_to_dict(stats), indent=2, sort_keys=True)
        )
    return directory


def load_stats(directory: str | Path) -> Optional[MatchStats]:
    """The stats saved next to a state, or ``None`` if none were."""
    stats_path = Path(directory) / "stats.json"
    if not stats_path.exists():
        return None
    return stats_from_dict(json.loads(stats_path.read_text()))


def load_state(
    directory: str | Path,
    candidates: CandidateSet,
    resolver: Optional[FeatureResolver] = None,
) -> MatchState:
    """Restore a state saved by :func:`save_state` onto ``candidates``.

    ``resolver`` should be the feature resolver that built the original
    function (e.g. ``workload.space.resolver()``) so corpus-bound
    similarity instances are reattached; the default registry resolver
    rebuilds corpus-free equivalents.
    """
    directory = Path(directory)
    meta_path = directory / "meta.json"
    if not meta_path.exists():
        raise StateError(f"{directory} does not contain a saved state")
    meta = json.loads(meta_path.read_text())
    if meta.get("version") != FORMAT_VERSION:
        raise StateError(
            f"state format version {meta.get('version')} not supported "
            f"(expected {FORMAT_VERSION})"
        )
    fingerprint = candidate_fingerprint(candidates)
    if meta["fingerprint"] != fingerprint:
        raise StateError(
            "saved state belongs to a different candidate set "
            f"(saved {meta['fingerprint']}, current {fingerprint}); "
            "re-block with the same dataset, blocker, and seed"
        )

    function = parse_function(
        (directory / "function.rules").read_text(encoding="utf-8"), resolver
    )
    with np.load(directory / "state.npz", allow_pickle=True) as arrays:
        n_pairs = len(candidates)
        feature_names = list(arrays["memo_feature_names"])
        if meta["memo_backend"] == "hash":
            memo: FeatureMemo = HashMemo(n_pairs, feature_names)
        else:
            memo = ArrayMemo(n_pairs, feature_names)
        for pair_index, feature_index, value in zip(
            arrays["memo_pairs"], arrays["memo_features"], arrays["memo_values"]
        ):
            memo.put(int(pair_index), feature_names[int(feature_index)], float(value))

        state = MatchState(
            function,
            candidates,
            memo,
            check_cache_first=bool(meta["check_cache_first"]),
        )
        state.labels = arrays["labels"].astype(bool)
        state.attribution = arrays["attribution"].astype(np.int32)
        for index, name in enumerate(arrays["rule_bitmap_names"]):
            state._rule_matched[str(name)] = arrays[f"rule_bitmap_{index}"].astype(bool)
        for index, joined in enumerate(arrays["slot_bitmap_keys"]):
            rule_name, slot = str(joined).split("\x1f", 1)
            state._predicate_false[(rule_name, slot)] = arrays[
                f"slot_bitmap_{index}"
            ].astype(bool)
    return state


# ---------------------------------------------------------------------------
# Session checkpoints (tables + candidates + state + caches + stats)
# ---------------------------------------------------------------------------


def _table_to_jsonable(table: Table) -> dict:
    return {
        "name": table.name,
        "attributes": list(table.attributes),
        "records": [
            {"id": record.record_id, "values": record.as_dict()}
            for record in table
        ],
    }


def _table_from_jsonable(data: dict) -> Table:
    return Table(
        data["name"],
        data["attributes"],
        (Record(row["id"], row["values"]) for row in data["records"]),
    )


def _tuplify(value):
    """Recursively convert JSON lists back into the tuples they encoded."""
    if isinstance(value, list):
        return tuple(_tuplify(item) for item in value)
    return value


def _token_cache_to_jsonable(cache) -> List[dict]:
    """Serialize a :class:`~repro.kernels.cache.TokenCache`'s buckets.

    Bucket keys are ``(attribute, tokenizer.cache_key())`` — nested tuples
    of primitives — encoded as nested JSON lists and re-tuplified on load.
    Hit/miss counters travel too, so restored cache stats stay truthful.
    """
    buckets = []
    for key, bucket in cache._buckets.items():
        buckets.append(
            {
                "key": key,
                "label": cache._labels[key],
                "hits": cache.hits[key],
                "misses": cache.misses[key],
                "entries": [
                    {"side": side, "record_id": record_id, "tokens": sorted(tokens)}
                    for (side, record_id), tokens in sorted(bucket.items())
                ],
            }
        )
    return buckets


def _token_cache_restore(cache, buckets: List[dict]) -> None:
    for data in buckets:
        key = _tuplify(data["key"])
        cache._buckets[key] = {
            (entry["side"], entry["record_id"]): frozenset(entry["tokens"])
            for entry in data["entries"]
        }
        cache._labels[key] = data["label"]
        cache.hits[key] = int(data["hits"])
        cache.misses[key] = int(data["misses"])


def save_session(
    streaming,
    directory: str | Path,
    blocker_spec: Optional[dict] = None,
    extra_meta: Optional[dict] = None,
) -> Path:
    """Checkpoint a :class:`~repro.streaming.session.StreamingSession`.

    Everything a restart needs lands in ``directory``: the live tables
    (post-delta, so no generator can rebuild them), the candidate order
    (survivors-then-gained — a fresh re-block would NOT reproduce it, so
    it is stored explicitly), the matching state + run stats (via
    :func:`save_state`), gold labels, token caches, accumulated batch
    stats, and the session configuration.  ``blocker_spec`` is an opaque
    JSON description the caller can turn back into a blocker on load
    (:mod:`repro.service.protocol` defines one such vocabulary).

    The wrapped :class:`~repro.core.session.DebugSession` must have run
    (:class:`~repro.errors.StateError` otherwise).
    """
    session = streaming.session
    if session.state is None:
        raise StateError("cannot checkpoint a session that has not run")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    run_stats = streaming.run_stats()
    save_state(session.state, directory / "state", stats=run_stats)

    (directory / "tables.json").write_text(
        json.dumps(
            {
                "a": _table_to_jsonable(streaming.table_a),
                "b": _table_to_jsonable(streaming.table_b),
            }
        )
    )
    (directory / "candidates.json").write_text(
        json.dumps([list(pair) for pair in session.candidates.id_pairs()])
    )
    if session.gold is not None:
        (directory / "gold.json").write_text(
            json.dumps(sorted([list(pair) for pair in session.gold]))
        )
    if session.kernels is not None:
        (directory / "token_cache.json").write_text(
            json.dumps(_token_cache_to_jsonable(session.kernels.cache))
        )

    batch_stats = streaming.total_batch_stats()
    meta = {
        "version": SESSION_FORMAT_VERSION,
        "blocker_spec": blocker_spec,
        "workers": streaming.workers,
        "parallel_threshold_pairs": streaming.parallel_threshold_pairs,
        "parallel_threshold_seconds": streaming.parallel_threshold_seconds,
        "ordering": session.ordering_strategy,
        "memo_backend": session.memo_backend,
        "check_cache_first": session.check_cache_first,
        "use_kernels": session.use_kernels,
        "use_bounds": session.use_bounds,
        "batches_ingested": streaming.batches_ingested,
        "batch_stats": stats_to_dict(batch_stats),
        "has_run_stats": run_stats is not None,
        "extra": extra_meta or {},
    }
    (directory / "session.json").write_text(json.dumps(meta, indent=2))
    return directory


def load_session(
    directory: str | Path,
    blocker,
    resolver: Optional[FeatureResolver] = None,
):
    """Restore a :func:`save_session` checkpoint onto a fresh blocker.

    ``blocker`` must be behaviorally identical to the one the session ran
    under (rebuild it from the checkpoint's ``blocker_spec``); it is
    re-blocked against the restored tables to warm its delta index, and
    the adopt path verifies it reproduces the checkpointed candidate
    membership exactly.  Returns a
    :class:`~repro.streaming.session.StreamingSession` whose state —
    labels, attribution, bitmaps, memo, token caches, stats — equals the
    checkpointed one entry for entry.
    """
    from ..streaming.session import StreamingSession
    from .session import DebugSession

    directory = Path(directory)
    meta_path = directory / "session.json"
    if not meta_path.exists():
        raise StateError(f"{directory} does not contain a saved session")
    meta = json.loads(meta_path.read_text())
    if meta.get("version") != SESSION_FORMAT_VERSION:
        raise StateError(
            f"session format version {meta.get('version')} not supported "
            f"(expected {SESSION_FORMAT_VERSION})"
        )

    tables = json.loads((directory / "tables.json").read_text())
    table_a = _table_from_jsonable(tables["a"])
    table_b = _table_from_jsonable(tables["b"])
    id_pairs = [
        (a_id, b_id)
        for a_id, b_id in json.loads((directory / "candidates.json").read_text())
    ]
    candidates = CandidateSet.from_id_pairs(table_a, table_b, id_pairs)

    gold = None
    gold_path = directory / "gold.json"
    if gold_path.exists():
        gold = {(a_id, b_id) for a_id, b_id in json.loads(gold_path.read_text())}

    state = load_state(directory / "state", candidates, resolver)
    run_stats = load_stats(directory / "state")

    session = DebugSession.from_materialized(
        candidates,
        state,
        gold=gold,
        ordering=meta["ordering"],
        memo_backend=meta["memo_backend"],
        check_cache_first=meta["check_cache_first"],
        use_kernels=meta["use_kernels"],
        use_bounds=meta["use_bounds"],
    )

    cache_path = directory / "token_cache.json"
    if session.kernels is not None and cache_path.exists():
        _token_cache_restore(
            session.kernels.cache, json.loads(cache_path.read_text())
        )

    streaming = StreamingSession.adopt(
        session,
        table_a,
        table_b,
        blocker,
        workers=int(meta.get("workers", 1)),
        parallel_threshold_pairs=int(meta.get("parallel_threshold_pairs", 2000)),
        parallel_threshold_seconds=float(
            meta.get("parallel_threshold_seconds", 0.05)
        ),
    )
    streaming.seed_restored(
        run_stats=run_stats,
        batch_stats=stats_from_dict(meta["batch_stats"]),
        batches=int(meta.get("batches_ingested", 0)),
    )
    return streaming
