"""Persist and restore a debugging session's materialized state.

Analysts iterate on a matching task over hours or days; the memo — the
expensive part of the state — is worth keeping across process restarts.
This module serializes a :class:`~repro.core.state.MatchState` to a
directory:

* ``function.rules`` — the matching function in DSL text (human-readable,
  diffable; re-parsed on load through the caller's feature resolver so
  corpus-bound measures reattach correctly),
* ``state.npz``     — labels, attribution, memo contents, and bitmaps as
  compressed numpy arrays,
* ``meta.json``     — candidate-set fingerprint and format version.

The candidate set itself is NOT serialized — it is deterministic from the
dataset + blocker, and re-blocking is cheap relative to re-computing
similarity scores.  A fingerprint (pair count + hash of the id sequence)
guards against loading state onto a different candidate set, which would
silently misalign every pair index.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Callable, Dict, Optional

import numpy as np

from ..data.pairs import CandidateSet
from ..errors import StateError
from .memo import ArrayMemo, FeatureMemo, HashMemo
from .parser import FeatureResolver, format_function, parse_function
from .state import MatchState

FORMAT_VERSION = 1


def candidate_fingerprint(candidates: CandidateSet) -> str:
    """A stable fingerprint of the candidate set's identity and order."""
    digest = hashlib.sha256()
    for a_id, b_id in candidates.id_pairs():
        digest.update(a_id.encode())
        digest.update(b"\x1f")
        digest.update(b_id.encode())
        digest.update(b"\x1e")
    return f"{len(candidates)}:{digest.hexdigest()[:24]}"


def _memo_arrays(memo: FeatureMemo, n_pairs: int) -> Dict[str, np.ndarray]:
    """Extract memo contents as parallel (pair, feature-id, value) arrays."""
    pairs = []
    feature_ids = []
    values = []
    feature_names: Dict[str, int] = {}
    if isinstance(memo, ArrayMemo):
        for name, column in memo._columns.items():
            feature_names.setdefault(name, len(feature_names))
            valid = memo._valid[:, column]
            for pair_index in np.flatnonzero(valid):
                pairs.append(int(pair_index))
                feature_ids.append(feature_names[name])
                values.append(float(memo._values[pair_index, column]))
    elif isinstance(memo, HashMemo):
        for (pair_index, name), value in memo._store.items():
            feature_names.setdefault(name, len(feature_names))
            pairs.append(pair_index)
            feature_ids.append(feature_names[name])
            values.append(value)
    else:
        raise StateError(f"cannot serialize memo type {type(memo).__name__}")
    ordered_names = [None] * len(feature_names)
    for name, index in feature_names.items():
        ordered_names[index] = name
    return {
        "memo_pairs": np.asarray(pairs, dtype=np.int64),
        "memo_features": np.asarray(feature_ids, dtype=np.int32),
        "memo_values": np.asarray(values, dtype=np.float64),
        "memo_feature_names": np.asarray(ordered_names, dtype=object),
    }


def save_state(state: MatchState, directory: str | Path) -> Path:
    """Serialize ``state`` into ``directory`` (created if needed)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    (directory / "function.rules").write_text(
        format_function(state.function), encoding="utf-8"
    )

    arrays: Dict[str, np.ndarray] = {
        "labels": state.labels,
        "attribution": state.attribution,
    }
    arrays.update(_memo_arrays(state.memo, len(state.candidates)))

    rule_names = sorted(state._rule_matched)
    arrays["rule_bitmap_names"] = np.asarray(rule_names, dtype=object)
    for index, name in enumerate(rule_names):
        arrays[f"rule_bitmap_{index}"] = state._rule_matched[name]

    slot_keys = sorted(state._predicate_false)
    arrays["slot_bitmap_keys"] = np.asarray(
        ["\x1f".join(key) for key in slot_keys], dtype=object
    )
    for index, key in enumerate(slot_keys):
        arrays[f"slot_bitmap_{index}"] = state._predicate_false[key]

    np.savez_compressed(directory / "state.npz", **arrays)

    meta = {
        "version": FORMAT_VERSION,
        "fingerprint": candidate_fingerprint(state.candidates),
        "memo_backend": "hash" if isinstance(state.memo, HashMemo) else "array",
        "check_cache_first": state.check_cache_first,
        "n_pairs": len(state.candidates),
    }
    (directory / "meta.json").write_text(json.dumps(meta, indent=2))
    return directory


def load_state(
    directory: str | Path,
    candidates: CandidateSet,
    resolver: Optional[FeatureResolver] = None,
) -> MatchState:
    """Restore a state saved by :func:`save_state` onto ``candidates``.

    ``resolver`` should be the feature resolver that built the original
    function (e.g. ``workload.space.resolver()``) so corpus-bound
    similarity instances are reattached; the default registry resolver
    rebuilds corpus-free equivalents.
    """
    directory = Path(directory)
    meta_path = directory / "meta.json"
    if not meta_path.exists():
        raise StateError(f"{directory} does not contain a saved state")
    meta = json.loads(meta_path.read_text())
    if meta.get("version") != FORMAT_VERSION:
        raise StateError(
            f"state format version {meta.get('version')} not supported "
            f"(expected {FORMAT_VERSION})"
        )
    fingerprint = candidate_fingerprint(candidates)
    if meta["fingerprint"] != fingerprint:
        raise StateError(
            "saved state belongs to a different candidate set "
            f"(saved {meta['fingerprint']}, current {fingerprint}); "
            "re-block with the same dataset, blocker, and seed"
        )

    function = parse_function(
        (directory / "function.rules").read_text(encoding="utf-8"), resolver
    )
    with np.load(directory / "state.npz", allow_pickle=True) as arrays:
        n_pairs = len(candidates)
        feature_names = list(arrays["memo_feature_names"])
        if meta["memo_backend"] == "hash":
            memo: FeatureMemo = HashMemo(n_pairs, feature_names)
        else:
            memo = ArrayMemo(n_pairs, feature_names)
        for pair_index, feature_index, value in zip(
            arrays["memo_pairs"], arrays["memo_features"], arrays["memo_values"]
        ):
            memo.put(int(pair_index), feature_names[int(feature_index)], float(value))

        state = MatchState(
            function,
            candidates,
            memo,
            check_cache_first=bool(meta["check_cache_first"]),
        )
        state.labels = arrays["labels"].astype(bool)
        state.attribution = arrays["attribution"].astype(np.int32)
        for index, name in enumerate(arrays["rule_bitmap_names"]):
            state._rule_matched[str(name)] = arrays[f"rule_bitmap_{index}"].astype(bool)
        for index, joined in enumerate(arrays["slot_bitmap_keys"]):
            rule_name, slot = str(joined).split("\x1f", 1)
            state._predicate_false[(rule_name, slot)] = arrays[
                f"slot_bitmap_{index}"
            ].astype(bool)
    return state
