"""The rule language: features, predicates, CNF rules, DNF matching functions.

This is the paper's §3 formalism, made concrete:

* A :class:`Feature` is a similarity function bound to an attribute pair —
  ``Jaccard(a.title, b.title)``.  Its :attr:`name` is the memo key.
* A :class:`Predicate` compares one feature against a constant threshold
  with one of ``>=, >, <=, <, ==``.
* A :class:`Rule` is a conjunction of predicates (one CNF clause each).
* A :class:`MatchingFunction` is a disjunction of rules (DNF).  A candidate
  pair matches iff at least one rule is true.

Everything here is **immutable**.  The interactive debugging loop edits
matching functions constantly; immutability means an edit produces a new
``MatchingFunction`` object while rules and predicates keep stable
identities (their names), which is what the incremental state keys its
bitmaps on.  Mutation-in-place would silently desynchronize those bitmaps.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..data.table import Record
from ..errors import ChangeError, ReproError
from ..similarity.base import SimilarityFunction

#: Comparison operators a predicate may use, mapped to their evaluators.
OPERATORS: Dict[str, Callable[[float, float], bool]] = {
    ">=": lambda value, threshold: value >= threshold,
    ">": lambda value, threshold: value > threshold,
    "<=": lambda value, threshold: value <= threshold,
    "<": lambda value, threshold: value < threshold,
    "==": lambda value, threshold: value == threshold,
}

#: Operators for which *raising* the threshold makes the predicate stricter.
_LOWER_BOUND_OPS = frozenset({">=", ">"})
#: Operators for which *lowering* the threshold makes the predicate stricter.
_UPPER_BOUND_OPS = frozenset({"<=", "<"})


class Feature:
    """A similarity function applied to one (attr_a, attr_b) pair.

    ``name`` uniquely identifies the feature within a matching task and is
    the key used by memos, cost models, and the rule DSL.  The default
    name is ``"{sim}({attr_a},{attr_b})"``.
    """

    __slots__ = ("name", "sim", "attr_a", "attr_b")

    def __init__(
        self,
        sim: SimilarityFunction,
        attr_a: str,
        attr_b: str,
        name: Optional[str] = None,
    ):
        self.sim = sim
        self.attr_a = attr_a
        self.attr_b = attr_b
        self.name = name or f"{sim.name}({attr_a},{attr_b})"

    def compute(self, record_a: Record, record_b: Record) -> float:
        """Compute the similarity score for a record pair (no memoization —
        callers that want memoing go through a matcher's memo)."""
        return self.sim(record_a.get(self.attr_a), record_b.get(self.attr_b))

    @property
    def cost_tier(self) -> int:
        """The similarity function's static cost tier (see Table 3)."""
        return self.sim.cost_tier

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Feature) and self.name == other.name

    def __hash__(self) -> int:
        return hash(self.name)

    def __repr__(self) -> str:
        return f"Feature({self.name!r})"


class Predicate:
    """``feature <op> threshold`` — the atomic unit of a rule.

    The predicate id (:attr:`pid`) is ``"{feature.name}{op}{threshold:g}"``
    *without* the threshold for bitmap identity purposes — see :attr:`slot`:
    threshold edits (tighten/relax) keep the same slot, which is how the
    incremental state carries a predicate's history across threshold
    changes (paper §6.2.1-6.2.2).
    """

    __slots__ = ("feature", "op", "threshold", "_compare", "pid", "slot", "_hash")

    def __init__(self, feature: Feature, op: str, threshold: float):
        compare = OPERATORS.get(op)
        if compare is None:
            raise ReproError(
                f"unknown operator {op!r}; expected one of {sorted(OPERATORS)}"
            )
        self.feature = feature
        self.op = op
        self.threshold = float(threshold)
        self._compare = compare
        #: Full identity including the threshold (display / equality).
        self.pid = f"{feature.name}{op}{self.threshold:g}"
        #: Threshold-free identity: feature + operator direction.  Within a
        #: rule in canonical form there is at most one lower-bound and one
        #: upper-bound predicate per feature (paper §5.4), so the slot is
        #: unique inside a rule and stable across threshold edits — the
        #: identity the incremental bitmaps key on.
        direction = "lb" if op in _LOWER_BOUND_OPS else (
            "ub" if op in _UPPER_BOUND_OPS else "eq"
        )
        self.slot = f"{feature.name}#{direction}"
        self._hash = hash(self.pid)

    def evaluate(self, value: float) -> bool:
        """Apply the comparison to a computed feature value."""
        return self._compare(value, self.threshold)

    def is_stricter_than(self, other: "Predicate") -> bool:
        """True if this predicate's true-set is a subset of ``other``'s.

        Only defined for same-slot predicates; raises otherwise.  Used to
        validate tighten/relax edits before dispatching to the incremental
        algorithms, whose correctness depends on the direction of change.
        """
        if self.slot != other.slot:
            raise ChangeError(
                f"cannot compare strictness across slots "
                f"({self.pid} vs {other.pid})"
            )
        if self.op in _LOWER_BOUND_OPS:
            if self.threshold != other.threshold:
                return self.threshold > other.threshold
            # Same threshold: '>' is stricter than '>='.
            return self.op == ">" and other.op == ">="
        if self.op in _UPPER_BOUND_OPS:
            if self.threshold != other.threshold:
                return self.threshold < other.threshold
            return self.op == "<" and other.op == "<="
        return False

    def with_threshold(self, threshold: float) -> "Predicate":
        """A copy of this predicate with a different threshold."""
        return Predicate(self.feature, self.op, threshold)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Predicate) and self.pid == other.pid

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Predicate({self.pid})"


class Rule:
    """A named conjunction of predicates (one CNF clause per predicate).

    Canonical form (paper §5.4) is enforced: a rule may contain at most
    one lower-bound and one upper-bound predicate per feature.  Redundant
    same-slot predicates would break both the cost model's grouping and
    the incremental bitmaps' slot identity.
    """

    __slots__ = ("name", "predicates")

    def __init__(self, name: str, predicates: Sequence[Predicate]):
        if not predicates:
            raise ReproError(f"rule {name!r} has no predicates")
        slots = [predicate.slot for predicate in predicates]
        if len(set(slots)) != len(slots):
            duplicates = sorted({slot for slot in slots if slots.count(slot) > 1})
            raise ReproError(
                f"rule {name!r} is not in canonical form: duplicate "
                f"predicate slots {duplicates}"
            )
        self.name = name
        self.predicates: Tuple[Predicate, ...] = tuple(predicates)

    def features(self) -> List[Feature]:
        """Distinct features, in first-appearance order."""
        seen: Dict[str, Feature] = {}
        for predicate in self.predicates:
            seen.setdefault(predicate.feature.name, predicate.feature)
        return list(seen.values())

    def predicate_by_slot(self, slot: str) -> Predicate:
        """The predicate occupying ``slot`` (ChangeError if absent)."""
        for predicate in self.predicates:
            if predicate.slot == slot:
                return predicate
        raise ChangeError(f"rule {self.name!r} has no predicate in slot {slot!r}")

    def with_predicates(self, predicates: Sequence[Predicate]) -> "Rule":
        """A copy of this rule with a different predicate list."""
        return Rule(self.name, predicates)

    def evaluate_with(self, scores: Dict[str, float]) -> bool:
        """Evaluate against a full feature-score mapping (testing helper;
        matchers use their own lazy evaluation paths)."""
        return all(
            predicate.evaluate(scores[predicate.feature.name])
            for predicate in self.predicates
        )

    def __len__(self) -> int:
        return len(self.predicates)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Rule)
            and self.name == other.name
            and self.predicates == other.predicates
        )

    def __hash__(self) -> int:
        return hash((self.name, self.predicates))

    def __repr__(self) -> str:
        body = " AND ".join(predicate.pid for predicate in self.predicates)
        return f"Rule({self.name!r}: {body})"


class MatchingFunction:
    """A DNF matching function: a pair matches iff any rule is true.

    Rule names must be unique — they are the identities the incremental
    state and the orderings refer to.
    """

    __slots__ = ("rules", "_by_name")

    def __init__(self, rules: Sequence[Rule]):
        names = [rule.name for rule in rules]
        if len(set(names)) != len(names):
            duplicates = sorted({name for name in names if names.count(name) > 1})
            raise ReproError(f"duplicate rule names: {duplicates}")
        self.rules: Tuple[Rule, ...] = tuple(rules)
        self._by_name: Dict[str, int] = {rule.name: i for i, rule in enumerate(rules)}

    def rule(self, name: str) -> Rule:
        """Look up a rule by name (ChangeError if absent)."""
        index = self._by_name.get(name)
        if index is None:
            raise ChangeError(f"no rule named {name!r}")
        return self.rules[index]

    def rule_index(self, name: str) -> int:
        """Position of the named rule (ChangeError if absent)."""
        index = self._by_name.get(name)
        if index is None:
            raise ChangeError(f"no rule named {name!r}")
        return index

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def features(self) -> List[Feature]:
        """Distinct features across all rules, in first-appearance order.

        This is the paper's ``F`` — the "used features" column of Table 2
        — and the feature set the production-precomputation baseline
        precomputes.
        """
        seen: Dict[str, Feature] = {}
        for rule in self.rules:
            for feature in rule.features():
                seen.setdefault(feature.name, feature)
        return list(seen.values())

    def predicate_count(self) -> int:
        """Total number of predicates across all rules."""
        return sum(len(rule) for rule in self.rules)

    def evaluate_with(self, scores: Dict[str, float]) -> bool:
        """Evaluate against a full feature-score mapping (testing helper)."""
        return any(rule.evaluate_with(scores) for rule in self.rules)

    # ------------------------------------------------------------------
    # Functional edit helpers — each returns a NEW MatchingFunction.
    # ------------------------------------------------------------------

    def with_rule_added(self, rule: Rule) -> "MatchingFunction":
        if rule.name in self._by_name:
            raise ChangeError(f"rule {rule.name!r} already exists")
        return MatchingFunction([*self.rules, rule])

    def with_rule_removed(self, name: str) -> "MatchingFunction":
        index = self.rule_index(name)
        remaining = [rule for i, rule in enumerate(self.rules) if i != index]
        if not remaining:
            raise ChangeError("cannot remove the last rule of a matching function")
        return MatchingFunction(remaining)

    def with_rule_replaced(self, replacement: Rule) -> "MatchingFunction":
        index = self.rule_index(replacement.name)
        rules = list(self.rules)
        rules[index] = replacement
        return MatchingFunction(rules)

    def subset(self, names: Iterable[str]) -> "MatchingFunction":
        """The sub-function containing only the named rules, in this
        function's order (used by the Figure 3/5 rule-count sweeps)."""
        wanted = set(names)
        kept = [rule for rule in self.rules if rule.name in wanted]
        missing = wanted - {rule.name for rule in kept}
        if missing:
            raise ChangeError(f"no such rules: {sorted(missing)}")
        return MatchingFunction(kept)

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self):
        return iter(self.rules)

    def __repr__(self) -> str:
        return (
            f"MatchingFunction({len(self.rules)} rules, "
            f"{self.predicate_count()} predicates, "
            f"{len(self.features())} features)"
        )
