"""Programmatic experiment runners — regenerate the paper's figures as data.

The benchmark suite (``benchmarks/``) wraps these runners in
pytest-benchmark plumbing and shape assertions.  This module is the
library face of the same experiments: call a runner, get a
:class:`Series` of (x, y, …) rows, write it to CSV, plot it with whatever
you like.  ``examples/reproduce_figures.py`` drives all of them.

Each runner takes a :class:`~repro.learning.workload.Workload` (so callers
control scale and seed) and returns deterministic rows given a seed.
"""

from __future__ import annotations

import csv
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from .core import (
    AddRule,
    CostEstimator,
    DebugSession,
    DynamicMemoMatcher,
    EarlyExitMatcher,
    MatchingFunction,
    MatchState,
    PrecomputeMatcher,
    RudimentaryMatcher,
    apply_change,
    greedy_cost_ordering,
    greedy_reduction_ordering,
    predicted_runtime,
    random_ordering,
)
from .learning.workload import Workload


@dataclass
class Series:
    """One experiment's tabular result."""

    name: str
    header: List[str]
    rows: List[List[object]] = field(default_factory=list)

    def add(self, *values: object) -> None:
        if len(values) != len(self.header):
            raise ValueError(
                f"row width {len(values)} != header width {len(self.header)}"
            )
        self.rows.append(list(values))

    def to_csv(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(self.header)
            writer.writerows(self.rows)
        return path

    def render(self) -> str:
        widths = [
            max(len(str(self.header[i])), *(len(str(r[i])) for r in self.rows))
            if self.rows
            else len(str(self.header[i]))
            for i in range(len(self.header))
        ]
        lines = [
            "  ".join(str(h).ljust(w) for h, w in zip(self.header, widths))
        ]
        for row in self.rows:
            lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def column(self, name: str) -> List[object]:
        index = self.header.index(name)
        return [row[index] for row in self.rows]


def _rule_subset(
    function: MatchingFunction, size: int, seed: int
) -> MatchingFunction:
    rng = random.Random(seed)
    names = [rule.name for rule in function.rules]
    return function.subset(rng.sample(names, min(size, len(names))))


def _matcher_for(strategy: str, workload: Workload):
    if strategy == "R":
        return RudimentaryMatcher()
    if strategy == "EE":
        return EarlyExitMatcher()
    if strategy == "PPR+EE":
        return PrecomputeMatcher()
    if strategy == "FPR+EE":
        return PrecomputeMatcher(features=list(workload.space))
    if strategy == "DM+EE":
        return DynamicMemoMatcher()
    raise ValueError(f"unknown strategy {strategy!r}")


def run_strategy_sweep(
    workload: Workload,
    rule_counts: Sequence[int] = (5, 10, 20, 40),
    strategies: Sequence[str] = ("R", "EE", "PPR+EE", "FPR+EE", "DM+EE"),
    pair_budget: int = 1000,
    draws: int = 2,
) -> Series:
    """Figure 3A/3B: seconds per (strategy, rule count) point."""
    candidates = workload.candidates.subset(
        range(min(pair_budget, len(workload.candidates)))
    )
    series = Series(
        "fig3_strategies",
        ["strategy", "rules", "seconds", "computed", "lookups"],
    )
    for strategy in strategies:
        for count in rule_counts:
            seconds = 0.0
            computed = 0
            lookups = 0
            for draw in range(draws):
                function = _rule_subset(workload.function, count, seed=draw)
                result = _matcher_for(strategy, workload).run(function, candidates)
                seconds += result.stats.elapsed_seconds
                computed += result.stats.feature_computations
                lookups += result.stats.memo_hits
            series.add(
                strategy,
                count,
                round(seconds / draws, 4),
                computed // draws,
                lookups // draws,
            )
    return series


def run_ordering_sweep(
    workload: Workload,
    rule_counts: Sequence[int] = (20, 60, 120),
    pair_budget: int = 1200,
    sample_fraction: float = 0.01,
    seed: int = 3,
) -> Series:
    """Figure 3C: DM+EE seconds under random / Algorithm 5 / Algorithm 6."""
    candidates = workload.candidates.subset(
        range(min(pair_budget, len(workload.candidates)))
    )
    series = Series("fig3c_ordering", ["ordering", "rules", "seconds"])
    for count in rule_counts:
        function = _rule_subset(workload.function, count, seed=seed)
        estimator = CostEstimator(
            sample_fraction=sample_fraction, min_sample=50, seed=seed
        )
        estimates = estimator.estimate(function, candidates)
        orderings = {
            "random": random_ordering(function, seed),
            "algorithm5": greedy_cost_ordering(function, estimates),
            "algorithm6": greedy_reduction_ordering(function, estimates),
        }
        for name, ordered in orderings.items():
            result = DynamicMemoMatcher().run(ordered, candidates)
            series.add(name, count, round(result.stats.elapsed_seconds, 4))
    return series


def run_cost_model_sweep(
    workload: Workload,
    rule_counts: Sequence[int] = (20, 60, 120),
    pair_budget: int = 1200,
    seed: int = 3,
) -> Series:
    """Figure 5A: predicted vs actual for random and Algorithm 6 orders."""
    candidates = workload.candidates.subset(
        range(min(pair_budget, len(workload.candidates)))
    )
    series = Series(
        "fig5a_cost_model",
        ["ordering", "rules", "predicted_s", "actual_s", "counters_model_s"],
    )
    for count in rule_counts:
        function = _rule_subset(workload.function, count, seed=seed)
        estimator = CostEstimator(sample_fraction=0.01, min_sample=50, seed=seed)
        estimates = estimator.estimate(function, candidates)
        for name, ordered in (
            ("random", random_ordering(function, seed)),
            ("algorithm6", greedy_reduction_ordering(function, estimates)),
        ):
            predicted = predicted_runtime(ordered, candidates, estimates)
            result = DynamicMemoMatcher().run(ordered, candidates)
            model_units = result.stats.cost_units(
                estimates.feature_costs, estimates.lookup_cost
            )
            series.add(
                name,
                count,
                round(predicted, 4),
                round(result.stats.elapsed_seconds, 4),
                round(model_units, 4),
            )
    return series


def run_pair_scaling(
    workload: Workload,
    pair_counts: Sequence[int] = (250, 500, 1000, 2000),
) -> Series:
    """Figure 5B: DM+EE seconds vs candidate-pair count."""
    series = Series("fig5b_scaling", ["pairs", "seconds", "per_pair_ms"])
    for count in pair_counts:
        candidates = workload.candidates.subset(
            range(min(count, len(workload.candidates)))
        )
        result = DynamicMemoMatcher().run(workload.function, candidates)
        series.add(
            len(candidates),
            round(result.stats.elapsed_seconds, 4),
            round(result.stats.elapsed_seconds / len(candidates) * 1000, 4),
        )
    return series


def run_add_rule_sweep(
    workload: Workload,
    n_rules: int = 30,
    pair_budget: int = 1000,
) -> Series:
    """Figure 5C: per-iteration cost of the add-rule sweep, both variants."""
    candidates = workload.candidates.subset(
        range(min(pair_budget, len(workload.candidates)))
    )
    rules = list(workload.function.rules[:n_rules])
    series = Series(
        "fig5c_add_rule", ["iteration", "incremental_ms", "rerun_ms"]
    )

    def sweep(mode: str) -> List[float]:
        session = DebugSession(
            candidates,
            MatchingFunction(rules[:1]),
            ordering="original",
            check_cache_first=True,
        )
        initial = session.run()
        times = [initial.stats.elapsed_seconds]
        for rule in rules[1:]:
            if mode == "incremental":
                times.append(session.apply(AddRule(rule)).elapsed_seconds)
            else:
                session.state.function = session.state.function.with_rule_added(rule)
                times.append(session.rerun_full().stats.elapsed_seconds)
        return times

    incremental = sweep("incremental")
    rerun = sweep("rerun")
    for index, (a, b) in enumerate(zip(incremental, rerun), start=1):
        series.add(index, round(a * 1000, 3), round(b * 1000, 3))
    return series


def run_change_type_study(
    workload: Workload,
    edits_per_type: int = 20,
    pair_budget: int = 1000,
    seed: int = 17,
) -> Series:
    """Figure 6: mean incremental ms per change type (random valid edits)."""
    from .core import (
        AddPredicate,
        RelaxPredicate,
        RemovePredicate,
        RemoveRule,
        TightenPredicate,
    )

    candidates = workload.candidates.subset(
        range(min(pair_budget, len(workload.candidates)))
    )
    state, _ = MatchState.from_initial_run(
        workload.function, candidates, check_cache_first=True
    )
    rng = random.Random(seed)

    def random_change(kind):
        function = state.function
        rule = function.rules[rng.randrange(len(function.rules))]
        predicate = rule.predicates[rng.randrange(len(rule.predicates))]
        lower_bound = predicate.op in (">=", ">")
        delta = rng.choice([0.1, 0.2, 0.3, 0.4, 0.5])
        if kind == "tighten":
            threshold = (
                min(1.0, predicate.threshold + delta)
                if lower_bound
                else max(0.0, predicate.threshold - delta)
            )
            return TightenPredicate(rule.name, predicate.slot, threshold)
        if kind == "relax":
            threshold = (
                max(-0.001, predicate.threshold - delta)
                if lower_bound
                else min(1.001, predicate.threshold + delta)
            )
            return RelaxPredicate(rule.name, predicate.slot, threshold)
        if kind == "remove_predicate":
            if len(rule.predicates) < 2:
                return None
            return RemovePredicate(rule.name, predicate.slot)
        if kind == "add_predicate":
            donor = function.rules[rng.randrange(len(function.rules))]
            candidate = donor.predicates[rng.randrange(len(donor.predicates))]
            if candidate.slot in {p.slot for p in rule.predicates}:
                return None
            return AddPredicate(rule.name, candidate)
        if kind == "remove_rule":
            if len(function) < 2:
                return None
            return RemoveRule(rule.name)
        if kind == "add_rule":
            donor = function.rules[rng.randrange(len(function.rules))]
            return AddRule(
                type(donor)(f"new_{rng.randrange(10**9)}", donor.predicates)
            )
        raise ValueError(kind)

    series = Series(
        "fig6_change_types", ["change", "mean_ms", "edits_applied"]
    )
    for kind in (
        "add_predicate", "tighten", "remove_rule",
        "remove_predicate", "relax", "add_rule",
    ):
        total = 0.0
        applied = 0
        attempts = 0
        while applied < edits_per_type and attempts < edits_per_type * 20:
            attempts += 1
            change = random_change(kind)
            if change is None:
                continue
            try:
                change.validate(state.function)
            except Exception:
                continue
            outcome = apply_change(state, change)
            total += outcome.elapsed_seconds
            applied += 1
        mean_ms = total / applied * 1000 if applied else float("nan")
        series.add(kind, round(mean_ms, 4), applied)
    return series


def write_all(
    workload: Workload, directory: str | Path, runners: Optional[Dict[str, Callable]] = None
) -> Dict[str, Path]:
    """Run every figure runner and write one CSV per figure."""
    directory = Path(directory)
    runners = runners or {
        "fig3_strategies": lambda: run_strategy_sweep(workload),
        "fig3c_ordering": lambda: run_ordering_sweep(workload),
        "fig5a_cost_model": lambda: run_cost_model_sweep(workload),
        "fig5b_scaling": lambda: run_pair_scaling(workload),
        "fig5c_add_rule": lambda: run_add_rule_sweep(workload),
        "fig6_change_types": lambda: run_change_type_study(workload),
    }
    written: Dict[str, Path] = {}
    for name, runner in runners.items():
        series = runner()
        written[name] = series.to_csv(directory / f"{name}.csv")
    return written
