"""Registry of the six synthetic datasets (paper Table 2 twins).

:func:`load_dataset` is the one-stop entry point used by examples,
benchmarks, and tests::

    dataset = load_dataset("products", seed=7)
    dataset = load_dataset("products", scale=2.0)   # 2x the default sizes

``scale`` multiplies all entity counts, so Figure 5B's pair-count sweep and
"paper-scale" runs use the same generator code path as the fast defaults.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from ..errors import ReproError
from .generators.base import Dataset, DomainGenerator
from .generators.books import BooksGenerator
from .generators.breakfast import BreakfastGenerator
from .generators.movies import MoviesGenerator
from .generators.people import PeopleGenerator
from .generators.products import ProductsGenerator
from .generators.restaurants import RestaurantsGenerator
from .generators.videogames import VideoGamesGenerator

GENERATORS: Dict[str, Type[DomainGenerator]] = {
    ProductsGenerator.name: ProductsGenerator,
    RestaurantsGenerator.name: RestaurantsGenerator,
    BooksGenerator.name: BooksGenerator,
    BreakfastGenerator.name: BreakfastGenerator,
    MoviesGenerator.name: MoviesGenerator,
    VideoGamesGenerator.name: VideoGamesGenerator,
    # Extension: the paper's *introduction* domain (not in its Table 2).
    PeopleGenerator.name: PeopleGenerator,
}


def dataset_names() -> List[str]:
    """All registered dataset names, in the paper's Table 2 order."""
    return list(GENERATORS)


def load_dataset(
    name: str,
    seed: int = 7,
    scale: float = 1.0,
    shared: Optional[int] = None,
    a_only: Optional[int] = None,
    b_only: Optional[int] = None,
) -> Dataset:
    """Generate one of the six datasets deterministically.

    ``scale`` multiplies the generator's default entity counts; explicit
    ``shared``/``a_only``/``b_only`` override the scaled defaults entirely.
    """
    generator_class = GENERATORS.get(name)
    if generator_class is None:
        raise ReproError(
            f"unknown dataset {name!r}; available: {', '.join(GENERATORS)}"
        )
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    generator = generator_class()
    return generator.generate(
        shared=shared if shared is not None else round(generator.default_shared * scale),
        a_only=a_only if a_only is not None else round(generator.default_a_only * scale),
        b_only=b_only if b_only is not None else round(generator.default_b_only * scale),
        seed=seed,
    )
