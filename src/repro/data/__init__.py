"""Data substrate: tables, candidate pairs, CSV IO, and the six synthetic datasets."""

from .csv_io import load_gold, load_pairs, load_table, save_pairs, save_table
from .datasets import GENERATORS, dataset_names, load_dataset
from .generators.base import Dataset, DomainGenerator
from .pairs import CandidatePair, CandidateSet, PairId
from .table import Record, Table

__all__ = [
    "Record",
    "Table",
    "CandidatePair",
    "CandidateSet",
    "PairId",
    "Dataset",
    "DomainGenerator",
    "GENERATORS",
    "dataset_names",
    "load_dataset",
    "load_table",
    "save_table",
    "load_pairs",
    "save_pairs",
    "load_gold",
]
