"""Candidate pairs — the unit of work for every matcher.

Blocking (paper §3) turns the ``|A| × |B|`` cross product into a much
smaller *candidate set*; matching then evaluates the Boolean matching
function once per candidate pair.  :class:`CandidateSet` is that set,
with the two properties every downstream component relies on:

* **Stable indexing.** Each pair has a dense integer index (its position),
  which the memo (``|C| × |F|`` array) and the incremental bitmaps key on.
* **Record access.** Iteration yields :class:`CandidatePair` objects that
  carry both records, so matchers never re-resolve ids.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..errors import BlockingError
from .table import Record, Table

PairId = Tuple[str, str]


class CandidatePair:
    """One candidate (a, b) record pair with its dense index."""

    __slots__ = ("index", "record_a", "record_b")

    def __init__(self, index: int, record_a: Record, record_b: Record):
        self.index = index
        self.record_a = record_a
        self.record_b = record_b

    @property
    def pair_id(self) -> PairId:
        return (self.record_a.record_id, self.record_b.record_id)

    def __repr__(self) -> str:
        return f"CandidatePair({self.index}, {self.pair_id})"


class CandidateSet:
    """An ordered, indexable set of candidate record pairs.

    Construct via a blocker (:mod:`repro.blocking`) or directly from id
    pairs with :meth:`from_id_pairs`.  Duplicate id pairs are rejected —
    a duplicate would double-count in every cost model and bitmap.
    """

    def __init__(self, table_a: Table, table_b: Table):
        self.table_a = table_a
        self.table_b = table_b
        self._pairs: List[CandidatePair] = []
        self._index_by_id: Dict[PairId, int] = {}
        # record id -> indices of incident pairs, per side; maintained by
        # add() so streaming deltas can find a record's pairs in O(degree).
        self._indices_by_a: Dict[str, List[int]] = {}
        self._indices_by_b: Dict[str, List[int]] = {}

    @classmethod
    def from_id_pairs(
        cls, table_a: Table, table_b: Table, id_pairs: Sequence[PairId]
    ) -> "CandidateSet":
        candidates = cls(table_a, table_b)
        for a_id, b_id in id_pairs:
            candidates.add(a_id, b_id)
        return candidates

    def add(self, a_id: str, b_id: str) -> CandidatePair:
        """Append the pair ``(a_id, b_id)``; both ids must resolve."""
        pair_id = (a_id, b_id)
        if pair_id in self._index_by_id:
            raise BlockingError(f"duplicate candidate pair {pair_id}")
        record_a = self.table_a.get(a_id)
        record_b = self.table_b.get(b_id)
        pair = CandidatePair(len(self._pairs), record_a, record_b)
        self._pairs.append(pair)
        self._index_by_id[pair_id] = pair.index
        self._indices_by_a.setdefault(a_id, []).append(pair.index)
        self._indices_by_b.setdefault(b_id, []).append(pair.index)
        return pair

    def __len__(self) -> int:
        return len(self._pairs)

    def __iter__(self) -> Iterator[CandidatePair]:
        return iter(self._pairs)

    def __getitem__(self, index: int) -> CandidatePair:
        return self._pairs[index]

    def index_of(self, a_id: str, b_id: str) -> int:
        """Dense index of the pair, or KeyError if not a candidate."""
        return self._index_by_id[(a_id, b_id)]

    def __contains__(self, pair_id: PairId) -> bool:
        return pair_id in self._index_by_id

    def id_pairs(self) -> List[PairId]:
        """All pair ids in index order."""
        return [pair.pair_id for pair in self._pairs]

    def subset(self, indices: Sequence[int]) -> "CandidateSet":
        """A new candidate set containing only ``indices`` (re-indexed densely).

        Used to build estimation samples and the pair-count sweeps of
        Figure 5B without re-running blocking.
        """
        result = CandidateSet(self.table_a, self.table_b)
        for index in indices:
            pair = self._pairs[index]
            result.add(pair.record_a.record_id, pair.record_b.record_id)
        return result

    def indices_for_record(self, side: str, record_id: str) -> List[int]:
        """Indices of every pair incident to ``record_id`` on ``side``.

        ``side`` is ``"a"`` or ``"b"``.  This is the record→pair-index
        mapping streaming updates use to evict exactly the memo rows and
        bitmap bits an updated record invalidates.
        """
        if side == "a":
            return list(self._indices_by_a.get(record_id, ()))
        if side == "b":
            return list(self._indices_by_b.get(record_id, ()))
        raise BlockingError(f"side must be 'a' or 'b', got {side!r}")

    def gold_indices(self, gold: Set[PairId]) -> List[int]:
        """Indices of pairs whose ids appear in a gold match set."""
        return [
            pair.index for pair in self._pairs if pair.pair_id in gold
        ]

    def __repr__(self) -> str:
        return (
            f"CandidateSet({len(self)} pairs from "
            f"{self.table_a.name!r} x {self.table_b.name!r})"
        )
