"""Tabular data model: :class:`Record` and :class:`Table`.

The EM workflow's input is two tables A and B (paper §3).  We keep the model
deliberately small — a table is an ordered collection of records sharing a
schema, with O(1) lookup by record id — because everything interesting in
this system happens at the candidate-pair level, not the storage level.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..errors import SchemaError


class Record:
    """One row of a table: an immutable id plus an attribute mapping.

    Attribute access goes through :meth:`get`/``[]``; missing attributes
    read as ``None`` via :meth:`get`, which is the convention the
    similarity layer expects for absent values.
    """

    __slots__ = ("record_id", "_values")

    def __init__(self, record_id: str, values: Mapping[str, object]):
        self.record_id = record_id
        self._values = dict(values)

    def get(self, attribute: str, default: object = None) -> object:
        """Return the attribute value, or ``default`` if absent/``None``."""
        value = self._values.get(attribute, default)
        return default if value is None else value

    def __getitem__(self, attribute: str) -> object:
        return self._values[attribute]

    def __contains__(self, attribute: str) -> bool:
        return attribute in self._values

    def attributes(self) -> Tuple[str, ...]:
        return tuple(self._values)

    def as_dict(self) -> Dict[str, object]:
        """A copy of the attribute mapping (mutating it won't alter the record)."""
        return dict(self._values)

    def __repr__(self) -> str:
        preview = ", ".join(f"{k}={v!r}" for k, v in list(self._values.items())[:3])
        return f"Record({self.record_id!r}, {preview}{', ...' if len(self._values) > 3 else ''})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Record)
            and self.record_id == other.record_id
            and self._values == other._values
        )

    def __hash__(self) -> int:
        return hash(self.record_id)


class Table:
    """An ordered collection of :class:`Record` objects with a fixed schema.

    ``attributes`` declares the schema; records may omit attributes (read as
    ``None``) but may not introduce attributes outside the schema — doing so
    raises :class:`~repro.errors.SchemaError`, because a silent extra
    attribute would make feature spaces built from the schema incomplete.
    """

    def __init__(
        self,
        name: str,
        attributes: Sequence[str],
        records: Optional[Iterable[Record]] = None,
    ):
        if len(set(attributes)) != len(attributes):
            raise SchemaError(f"duplicate attribute names in schema: {attributes}")
        self.name = name
        self.attributes: Tuple[str, ...] = tuple(attributes)
        self._records: List[Record] = []
        self._by_id: Dict[str, int] = {}
        if records is not None:
            for record in records:
                self.add(record)

    def add(self, record: Record) -> None:
        """Append a record, validating id uniqueness and schema conformance."""
        if record.record_id in self._by_id:
            raise SchemaError(
                f"duplicate record id {record.record_id!r} in table {self.name!r}"
            )
        extra = set(record.attributes()) - set(self.attributes)
        if extra:
            raise SchemaError(
                f"record {record.record_id!r} has attributes outside the schema "
                f"of table {self.name!r}: {sorted(extra)}"
            )
        self._by_id[record.record_id] = len(self._records)
        self._records.append(record)

    def add_row(self, record_id: str, **values: object) -> Record:
        """Convenience: build and add a record from keyword arguments."""
        record = Record(record_id, values)
        self.add(record)
        return record

    def replace(self, record: Record) -> Record:
        """Swap the record with ``record.record_id`` in place, keeping its
        position (so blocker/candidate iteration order is stable).

        Returns the previous record.  Raises KeyError if the id is absent
        and :class:`~repro.errors.SchemaError` on schema violations —
        mirrors :meth:`add`.
        """
        position = self._by_id.get(record.record_id)
        if position is None:
            raise KeyError(
                f"no record {record.record_id!r} in table {self.name!r}"
            )
        extra = set(record.attributes()) - set(self.attributes)
        if extra:
            raise SchemaError(
                f"record {record.record_id!r} has attributes outside the schema "
                f"of table {self.name!r}: {sorted(extra)}"
            )
        previous = self._records[position]
        self._records[position] = record
        return previous

    def remove(self, record_id: str) -> Record:
        """Delete a record by id, shifting later records down one position.

        O(|table|) — later records re-index, exactly as if the table had
        been built from scratch without the removed record (the property
        streaming equivalence tests rely on).
        """
        position = self._by_id.pop(record_id, None)
        if position is None:
            raise KeyError(f"no record {record_id!r} in table {self.name!r}")
        removed = self._records.pop(position)
        for later in self._records[position:]:
            self._by_id[later.record_id] -= 1
        return removed

    def snapshot(self) -> Tuple[Record, ...]:
        """The records, in order, for a later in-place :meth:`restore`.

        Records are immutable, so a shallow copy of the ordering is a full
        snapshot of the table's contents.
        """
        return tuple(self._records)

    def restore(self, records: Iterable[Record]) -> None:
        """Reset the contents *in place* to ``records`` (keeping identity).

        In-place so that every holder of this table object — candidate
        sets, blockers, sessions — observes the restored contents; used by
        streaming ingestion to roll back a failed batch.
        """
        self._records = list(records)
        self._by_id = {
            record.record_id: index
            for index, record in enumerate(self._records)
        }

    def get(self, record_id: str) -> Record:
        """Return the record with ``record_id`` (KeyError if absent)."""
        try:
            return self._records[self._by_id[record_id]]
        except KeyError:
            raise KeyError(
                f"no record {record_id!r} in table {self.name!r}"
            ) from None

    def __contains__(self, record_id: str) -> bool:
        return record_id in self._by_id

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __getitem__(self, index: int) -> Record:
        return self._records[index]

    def values(self, attribute: str) -> List[object]:
        """All values of one attribute, in record order (``None`` for missing)."""
        if attribute not in self.attributes:
            raise SchemaError(
                f"attribute {attribute!r} not in schema of table {self.name!r}"
            )
        return [record.get(attribute) for record in self._records]

    def __repr__(self) -> str:
        return (
            f"Table({self.name!r}, {len(self)} records, "
            f"attributes={list(self.attributes)})"
        )
