"""Books — synthetic twin of the paper's Amazon/Barnes & Noble dataset.

Books have the strongest near-key of the six domains: ISBN.  The paper's
Table 2 shows this dataset needs only 10 rules over 8 features — when a
near-key exists, few rules suffice.  We reproduce that by making ISBN
mostly reliable (light format drift, occasionally missing) so that learned
rule sets on this dataset are small, exercising the small-rule-set end of
the Figure 3 sweeps.
"""

from __future__ import annotations

import random
from typing import Dict

from .base import DomainGenerator
from .text import Perturber
from . import vocab


class BooksGenerator(DomainGenerator):
    """Synthetic twin of the Amazon/Barnes & Noble books dataset."""

    name = "books"
    source_a = "amazon"
    source_b = "barnes_noble"
    description = "Books, Amazon vs Barnes & Noble"

    attributes = ("title", "author", "isbn", "publisher", "year", "pages")
    attribute_types = {
        "title": "text",
        "author": "text",
        "isbn": "short",
        "publisher": "category",
        "year": "numeric",
        "pages": "numeric",
    }

    # Table 2: 3,099 x 3,560 — nearly balanced tables.
    default_shared = 280
    default_a_only = 120
    default_b_only = 160
    default_distractor_rate = 0.3

    def make_entity(
        self, rng: random.Random, perturber: Perturber, index: int
    ) -> Dict[str, object]:
        title = f"{perturber.pick(vocab.BOOK_TITLE_HEADS)} {perturber.pick(vocab.BOOK_TITLE_TAILS)}"
        author = f"{perturber.pick(vocab.FIRST_NAMES)} {perturber.pick(vocab.LAST_NAMES)}"
        isbn = "978" + "".join(str(rng.randrange(10)) for _ in range(10))
        return {
            "title": title,
            "author": author,
            "isbn": isbn,
            "publisher": perturber.pick(vocab.PUBLISHERS),
            "year": rng.randrange(1965, 2017),
            "pages": rng.randrange(90, 900),
        }

    def view_a(self, entity: Dict[str, object], perturber: Perturber) -> Dict[str, object]:
        title = perturber.maybe_typo(str(entity["title"]), 0.10)
        return {
            "title": title,
            "author": entity["author"],
            "isbn": str(entity["isbn"]),
            "publisher": entity["publisher"],
            "year": str(entity["year"]),
            "pages": str(entity["pages"]),
        }

    def view_b(self, entity: Dict[str, object], perturber: Perturber) -> Dict[str, object]:
        # B&N style: subtitle decorations, "lastname, firstname" authors,
        # hyphenated ISBN, pages off by a few (different binding).
        title = str(entity["title"])
        title = perturber.append_noise_tokens(
            title, ["a novel", "(paperback)", "revised edition"], 0.35
        )
        title = perturber.maybe_typo(title, 0.15)
        title = perturber.case_noise(title, 0.4)
        first, last = str(entity["author"]).split(" ", 1)
        author = f"{last}, {first}" if perturber.rng.random() < 0.5 else str(entity["author"])
        isbn = str(entity["isbn"])
        if perturber.rng.random() < 0.5:
            isbn = f"{isbn[:3]}-{isbn[3:4]}-{isbn[4:8]}-{isbn[8:12]}-{isbn[12:]}"
        pages = int(entity["pages"]) + perturber.rng.randrange(-8, 9)
        return {
            "title": title,
            "author": author,
            "isbn": perturber.maybe_missing(isbn, 0.06),
            "publisher": perturber.maybe_missing(str(entity["publisher"]), 0.15),
            "year": str(entity["year"]),
            "pages": str(max(1, pages)),
        }

    def make_distractor(
        self, entity: Dict[str, object], rng: random.Random, perturber: Perturber
    ) -> Dict[str, object]:
        # A different edition of the same title: new ISBN, shifted year and
        # page count. Whether editions "match" is the analyst's judgement
        # call the paper's debugging loop exists to settle.
        sibling = dict(entity)
        sibling["isbn"] = "978" + "".join(str(rng.randrange(10)) for _ in range(10))
        sibling["year"] = int(entity["year"]) + rng.randrange(1, 6)
        sibling["pages"] = int(entity["pages"]) + rng.randrange(10, 80)
        sibling["publisher"] = perturber.pick(vocab.PUBLISHERS)
        return sibling
