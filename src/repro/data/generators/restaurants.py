"""Restaurants — synthetic twin of the paper's Yelp/Foursquare dataset.

Restaurants are the classic EM benchmark domain (Fodors/Zagat lineage):
the discriminative attributes are ``phone`` (a near-key marred by format
drift) and ``name`` + ``address`` (noisy text).  The paper's introduction
example — matching on name similarity OR phone equality AND name
similarity — is exactly this shape, so the example applications use this
dataset to recreate it.
"""

from __future__ import annotations

import random
from typing import Dict

from .base import DomainGenerator
from .text import Perturber
from . import vocab


class RestaurantsGenerator(DomainGenerator):
    """Synthetic twin of the Yelp/Foursquare restaurants dataset."""

    name = "restaurants"
    source_a = "yelp"
    source_b = "foursquare"
    description = "Restaurants, Yelp vs Foursquare"

    attributes = ("name", "address", "city", "phone", "cuisine", "zipcode")
    attribute_types = {
        "name": "text",
        "address": "text",
        "city": "category",
        "phone": "short",
        "cuisine": "category",
        "zipcode": "short",
    }

    default_shared = 300
    default_a_only = 30
    default_b_only = 2200
    default_distractor_rate = 0.35

    def make_entity(
        self, rng: random.Random, perturber: Perturber, index: int
    ) -> Dict[str, object]:
        head = perturber.pick(vocab.RESTAURANT_HEADS)
        tail = perturber.pick(vocab.RESTAURANT_TAILS)
        name = f"{head} {tail}"
        number = rng.randrange(10, 9900)
        street = perturber.pick(vocab.STREET_NAMES)
        street_type = perturber.pick(vocab.STREET_TYPES)
        return {
            "name": name,
            "address": f"{number} {street} {street_type}",
            "city": perturber.pick(vocab.CITIES),
            "phone": perturber.phone_digits(),
            "cuisine": perturber.pick(vocab.CUISINES),
            "zipcode": f"{rng.randrange(10000, 99999)}",
        }

    def view_a(self, entity: Dict[str, object], perturber: Perturber) -> Dict[str, object]:
        name = perturber.maybe_typo(str(entity["name"]), 0.12)
        address = perturber.abbreviate(str(entity["address"]), 0.5)
        return {
            "name": name,
            "address": address,
            "city": entity["city"],
            "phone": perturber.reformat_phone(str(entity["phone"])),
            "cuisine": entity["cuisine"],
            "zipcode": entity["zipcode"],
        }

    def view_b(self, entity: Dict[str, object], perturber: Perturber) -> Dict[str, object]:
        # Foursquare-style: "restaurant"-type suffixes, heavier typo rate,
        # different phone format, cuisine sometimes missing.
        name = str(entity["name"])
        name = perturber.append_noise_tokens(
            name, ["restaurant", str(entity["cuisine"]), "bar & grill"], 0.35
        )
        name = perturber.maybe_typo(name, 0.22)
        name = perturber.case_noise(name, 0.3)
        address = perturber.abbreviate(str(entity["address"]), 0.3)
        address = perturber.maybe_typo(address, 0.15)
        return {
            "name": name,
            "address": address,
            "city": entity["city"],
            "phone": perturber.reformat_phone(str(entity["phone"])),
            "cuisine": perturber.maybe_missing(str(entity["cuisine"]), 0.20),
            "zipcode": perturber.maybe_missing(str(entity["zipcode"]), 0.10),
        }

    def make_distractor(
        self, entity: Dict[str, object], rng: random.Random, perturber: Perturber
    ) -> Dict[str, object]:
        # Another branch of the "same" restaurant: same name, different
        # address/phone — the classic franchise trap for name-only rules.
        sibling = dict(entity)
        number = rng.randrange(10, 9900)
        street = perturber.pick(vocab.STREET_NAMES)
        street_type = perturber.pick(vocab.STREET_TYPES)
        sibling["address"] = f"{number} {street} {street_type}"
        sibling["phone"] = perturber.phone_digits()
        sibling["zipcode"] = f"{rng.randrange(10000, 99999)}"
        sibling["city"] = perturber.pick(vocab.CITIES)
        return sibling
