"""Synthetic dataset generators — twins of the paper's six crawled datasets."""

from .base import Dataset, DomainGenerator
from .books import BooksGenerator
from .breakfast import BreakfastGenerator
from .movies import MoviesGenerator
from .people import PeopleGenerator
from .products import ProductsGenerator
from .restaurants import RestaurantsGenerator
from .text import Perturber
from .videogames import VideoGamesGenerator

__all__ = [
    "Dataset",
    "DomainGenerator",
    "Perturber",
    "ProductsGenerator",
    "PeopleGenerator",
    "RestaurantsGenerator",
    "BooksGenerator",
    "BreakfastGenerator",
    "MoviesGenerator",
    "VideoGamesGenerator",
]
