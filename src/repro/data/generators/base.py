"""Generator framework producing two-source datasets with gold labels.

Every domain generator follows the same recipe, factored into
:class:`DomainGenerator`:

1. Synthesize ``shared`` canonical *entities* (the real-world objects).
2. Render each shared entity through two source-specific *views* — table A
   gets one rendering, table B another, each with independent noise
   (typos, abbreviation, token drops, format drift, missing values).
   These cross-source pairs are the gold matches.
3. Add ``a_only`` / ``b_only`` entities that exist in just one source.
4. For a fraction of shared entities, add a *distractor* to table B: a
   sibling product (same brand/line, different model) whose strings are
   similar but which must NOT match.  Distractors are what make blocking
   output realistic near-miss candidates — without them every candidate
   pair would be either a trivial match or trivially unrelated, and
   predicate selectivities would collapse to 0/1.

Sizes are parameters, so benchmarks can sweep them; defaults are scaled
(~1/8 of the paper's Table 2) to keep pure-Python runs interactive.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..pairs import PairId
from ..table import Record, Table
from .text import Perturber


@dataclass
class Dataset:
    """A two-source matching task: tables A and B plus gold match labels.

    ``attribute_types`` classifies each schema attribute for the feature
    space builder (:mod:`repro.learning.feature_space`):

    * ``"short"``  — identifier-like (model numbers, phone, isbn, zip);
      gets the cheap character measures.
    * ``"text"``   — titles/names/addresses; gets token + corpus measures.
    * ``"numeric"``— prices, years, counts; gets numeric measures.
    * ``"category"`` — small closed vocabulary; exact measures only.
    """

    name: str
    table_a: Table
    table_b: Table
    gold: Set[PairId]
    attribute_types: Dict[str, str]
    description: str = ""

    def gold_for(self, a_id: str) -> List[str]:
        """All B-side ids gold-matched to ``a_id``."""
        return [b for (a, b) in self.gold if a == a_id]

    def summary(self) -> str:
        """One-line Table 2-style description."""
        return (
            f"{self.name}: |A|={len(self.table_a)} |B|={len(self.table_b)} "
            f"gold={len(self.gold)}"
        )


class DomainGenerator(ABC):
    """Base class for the six per-domain synthetic dataset generators."""

    #: dataset name, e.g. ``"products"``.
    name: str = "generic"
    #: human-readable source names mirroring the paper's Table 2.
    source_a: str = "source1"
    source_b: str = "source2"
    description: str = ""

    #: schema shared by both tables.
    attributes: Tuple[str, ...] = ()
    #: attribute -> type tag (see :class:`Dataset`).
    attribute_types: Dict[str, str] = {}

    # Default sizes; subclasses override to echo Table 2 proportions.
    default_shared: int = 250
    default_a_only: int = 50
    default_b_only: int = 600
    default_distractor_rate: float = 0.4
    default_duplicate_rate: float = 0.05

    def generate(
        self,
        shared: Optional[int] = None,
        a_only: Optional[int] = None,
        b_only: Optional[int] = None,
        distractor_rate: Optional[float] = None,
        duplicate_rate: Optional[float] = None,
        seed: int = 7,
    ) -> Dataset:
        """Produce a :class:`Dataset` deterministically from ``seed``.

        ``shared`` entities appear in both tables (the gold matches);
        ``a_only``/``b_only`` appear in one table; ``distractor_rate`` of
        shared entities additionally spawn a near-miss sibling in B; and
        ``duplicate_rate`` of shared entities are listed *twice* in B
        (marketplace duplicates), both listings gold-matching the same A
        record.
        """
        shared = self.default_shared if shared is None else shared
        a_only = self.default_a_only if a_only is None else a_only
        b_only = self.default_b_only if b_only is None else b_only
        distractor_rate = (
            self.default_distractor_rate if distractor_rate is None else distractor_rate
        )
        duplicate_rate = (
            self.default_duplicate_rate if duplicate_rate is None else duplicate_rate
        )
        if min(shared, a_only, b_only) < 0:
            raise ValueError("entity counts must be non-negative")

        rng = random.Random(seed)
        perturber = Perturber(rng)
        table_a = Table(self.source_a, self.attributes)
        table_b = Table(self.source_b, self.attributes)
        gold: Set[PairId] = set()

        next_entity = 0

        def fresh_entity() -> Dict[str, object]:
            nonlocal next_entity
            entity = self.make_entity(rng, perturber, next_entity)
            next_entity += 1
            return entity

        b_counter = 0

        def add_b(entity: Dict[str, object]) -> str:
            nonlocal b_counter
            b_id = f"b{b_counter}"
            b_counter += 1
            table_b.add(Record(b_id, self.view_b(entity, perturber)))
            return b_id

        for a_counter in range(shared):
            entity = fresh_entity()
            a_id = f"a{a_counter}"
            table_a.add(Record(a_id, self.view_a(entity, perturber)))
            b_id = add_b(entity)
            gold.add((a_id, b_id))
            if rng.random() < duplicate_rate:
                gold.add((a_id, add_b(entity)))
            if rng.random() < distractor_rate:
                add_b(self.make_distractor(entity, rng, perturber))

        for offset in range(a_only):
            entity = fresh_entity()
            table_a.add(Record(f"a{shared + offset}", self.view_a(entity, perturber)))

        for _ in range(b_only):
            add_b(fresh_entity())

        return Dataset(
            name=self.name,
            table_a=table_a,
            table_b=table_b,
            gold=gold,
            attribute_types=dict(self.attribute_types),
            description=self.description,
        )

    # ------------------------------------------------------------------
    # Domain hooks
    # ------------------------------------------------------------------

    @abstractmethod
    def make_entity(
        self, rng: random.Random, perturber: Perturber, index: int
    ) -> Dict[str, object]:
        """Synthesize the canonical attribute values of one entity."""

    @abstractmethod
    def view_a(self, entity: Dict[str, object], perturber: Perturber) -> Dict[str, object]:
        """Render the entity as a source-A record (noisy)."""

    @abstractmethod
    def view_b(self, entity: Dict[str, object], perturber: Perturber) -> Dict[str, object]:
        """Render the entity as a source-B record (independently noisy)."""

    def make_distractor(
        self, entity: Dict[str, object], rng: random.Random, perturber: Perturber
    ) -> Dict[str, object]:
        """A near-miss sibling of ``entity`` (same family, different item).

        The default implementation perturbs the entity heavily; domains
        override to change model numbers / volumes / years in a targeted
        way.
        """
        sibling = dict(entity)
        for key, value in sibling.items():
            if isinstance(value, str):
                sibling[key] = perturber.typos(value, 3)
        return sibling
