"""Products (electronics) — the paper's primary Walmart/Amazon dataset.

This is the workload every figure in the paper is drawn from: |A| = 2,554
Walmart items, |B| = 22,074 Amazon items, 291,649 candidate pairs, 255
rules over 33 features on ``title`` and ``modelno``.  Our synthetic twin
keeps the same schema emphasis — a verbose, noisy ``title`` and a terse,
discriminative ``modelno`` — because the paper's sample rules (its Figure
4) live entirely on those two attributes, mixing cheap model-number
measures with expensive title measures.

Source-style asymmetries baked in:

* Walmart-style view (A): clean title casing, model number usually intact,
  price without decoration.
* Amazon-style view (B): marketing suffixes appended to titles, more
  abbreviation and token noise, model numbers reformatted (separators
  dropped/changed) and occasionally missing, price jittered a few percent.

Distractors are same-brand siblings with a different model number and one
changed spec token — the near-misses that force rules to rely on more than
brand/title overlap.
"""

from __future__ import annotations

import random
from typing import Dict

from .base import DomainGenerator
from .text import Perturber
from . import vocab


class ProductsGenerator(DomainGenerator):
    """Synthetic twin of the Walmart/Amazon electronics dataset."""

    name = "products"
    source_a = "walmart"
    source_b = "amazon"
    description = "Electronics products, Walmart vs Amazon (paper's primary dataset)"

    attributes = ("title", "modelno", "brand", "price", "category")
    attribute_types = {
        "title": "text",
        "modelno": "short",
        "brand": "category",
        "price": "numeric",
        "category": "category",
    }

    default_shared = 280
    default_a_only = 40
    default_b_only = 2200
    default_distractor_rate = 0.5

    def make_entity(
        self, rng: random.Random, perturber: Perturber, index: int
    ) -> Dict[str, object]:
        brand = perturber.pick(vocab.ELECTRONICS_BRANDS)
        noun = perturber.pick(vocab.ELECTRONICS_NOUNS)
        adjective = perturber.pick(vocab.ADJECTIVES)
        spec = perturber.pick(vocab.ELECTRONICS_SPECS)
        color = perturber.pick(vocab.COLORS)
        modelno = perturber.model_number(vocab.MODEL_PREFIXES)
        title = f"{brand} {adjective} {noun} {spec} {color}"
        price = round(rng.uniform(9.0, 900.0), 2)
        return {
            "title": title,
            "modelno": modelno,
            "brand": brand,
            "price": price,
            "category": noun,
        }

    def view_a(self, entity: Dict[str, object], perturber: Perturber) -> Dict[str, object]:
        title = str(entity["title"])
        title = perturber.maybe_typo(title, 0.15)
        title = perturber.abbreviate(title, 0.10)
        modelno = perturber.maybe_typo(str(entity["modelno"]), 0.05)
        return {
            "title": title,
            "modelno": modelno,
            "brand": entity["brand"],
            "price": f"{entity['price']:.2f}",
            "category": entity["category"],
        }

    def view_b(self, entity: Dict[str, object], perturber: Perturber) -> Dict[str, object]:
        title = str(entity["title"]) + f" {entity['modelno']}"
        title = perturber.append_noise_tokens(title, vocab.MARKETING, 0.45)
        title = perturber.drop_tokens(title, 0.08)
        title = perturber.shuffle_tokens(title, 0.25)
        title = perturber.abbreviate(title, 0.30)
        title = perturber.maybe_typo(title, 0.25)
        title = perturber.case_noise(title, 0.3)
        modelno = str(entity["modelno"]).replace("-", perturber.pick(["", "-", " "]))
        modelno = perturber.maybe_typo(modelno, 0.08)
        price = perturber.jitter_number(float(entity["price"]), relative=0.04)
        return {
            "title": title,
            "modelno": perturber.maybe_missing(modelno, 0.12),
            "brand": perturber.maybe_missing(str(entity["brand"]), 0.05),
            "price": f"{max(0.99, price):.2f}",
            "category": entity["category"],
        }

    def make_distractor(
        self, entity: Dict[str, object], rng: random.Random, perturber: Perturber
    ) -> Dict[str, object]:
        sibling = dict(entity)
        # Same brand and product line, different unit: new model number,
        # one spec swapped, price moved meaningfully.
        sibling["modelno"] = perturber.model_number(vocab.MODEL_PREFIXES)
        tokens = str(entity["title"]).split()
        tokens[-1] = perturber.pick(vocab.COLORS)
        if len(tokens) > 3:
            tokens[-2] = perturber.pick(vocab.ELECTRONICS_SPECS)
        sibling["title"] = " ".join(tokens)
        sibling["price"] = round(float(entity["price"]) * rng.uniform(0.6, 1.6), 2)
        return sibling
