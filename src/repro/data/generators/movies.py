"""Movies — synthetic twin of the paper's Amazon/BestBuy dataset.

The interesting wrinkle: the "same" movie is sold in several physical
formats (DVD, Blu-ray, 4K), and sources encode the format inside the title
("Midnight Horizon [Blu-ray]").  Whether different formats of the same film
match is precisely the kind of rule-debugging decision the paper's analyst
loop iterates on.  Table 2: 55 rules over 33 features — the widest feature
usage of the six datasets, which our generator encourages by spreading
signal across title, director, year and runtime.
"""

from __future__ import annotations

import random
from typing import Dict

from .base import DomainGenerator
from .text import Perturber
from . import vocab


class MoviesGenerator(DomainGenerator):
    """Synthetic twin of the Amazon/BestBuy movies dataset."""

    name = "movies"
    source_a = "amazon"
    source_b = "bestbuy"
    description = "Movies, Amazon vs BestBuy"

    attributes = ("title", "director", "year", "studio", "rating", "runtime")
    attribute_types = {
        "title": "text",
        "director": "text",
        "year": "numeric",
        "studio": "category",
        "rating": "category",
        "runtime": "numeric",
    }

    # Table 2: 5,526 x 4,373 — A is the larger table for once.
    default_shared = 260
    default_a_only = 320
    default_b_only = 150
    default_distractor_rate = 0.4

    def make_entity(
        self, rng: random.Random, perturber: Perturber, index: int
    ) -> Dict[str, object]:
        title = f"{perturber.pick(vocab.MOVIE_TITLE_HEADS)} {perturber.pick(vocab.MOVIE_TITLE_TAILS)}"
        director = f"{perturber.pick(vocab.FIRST_NAMES)} {perturber.pick(vocab.LAST_NAMES)}"
        return {
            "title": title,
            "director": director,
            "year": rng.randrange(1978, 2017),
            "studio": perturber.pick(vocab.STUDIOS),
            "rating": perturber.pick(vocab.MPAA_RATINGS),
            "runtime": rng.randrange(82, 195),
        }

    def view_a(self, entity: Dict[str, object], perturber: Perturber) -> Dict[str, object]:
        title = str(entity["title"])
        if perturber.rng.random() < 0.5:
            title += f" [{perturber.pick(vocab.MOVIE_FORMATS)}]"
        title = perturber.maybe_typo(title, 0.10)
        return {
            "title": title,
            "director": entity["director"],
            "year": str(entity["year"]),
            "studio": entity["studio"],
            "rating": entity["rating"],
            "runtime": str(entity["runtime"]),
        }

    def view_b(self, entity: Dict[str, object], perturber: Perturber) -> Dict[str, object]:
        title = str(entity["title"])
        if perturber.rng.random() < 0.6:
            title += f" ({perturber.pick(vocab.MOVIE_FORMATS)})"
        title = perturber.maybe_typo(title, 0.18)
        title = perturber.case_noise(title, 0.35)
        director = str(entity["director"])
        if perturber.rng.random() < 0.3:
            # BestBuy-style initials: "j. smith"
            first, last = director.split(" ", 1)
            director = f"{first[0]}. {last}"
        runtime = int(entity["runtime"]) + perturber.rng.randrange(-3, 4)
        return {
            "title": title,
            "director": perturber.maybe_missing(director, 0.12),
            "year": str(entity["year"]),
            "studio": perturber.maybe_missing(str(entity["studio"]), 0.18),
            "rating": entity["rating"],
            "runtime": str(max(40, runtime)),
        }

    def make_distractor(
        self, entity: Dict[str, object], rng: random.Random, perturber: Perturber
    ) -> Dict[str, object]:
        sibling = dict(entity)
        # A sequel: same franchise words plus a numeral, a few years later,
        # usually the same director and studio.
        sibling["title"] = f"{entity['title']} {rng.randrange(2, 4)}"
        sibling["year"] = int(entity["year"]) + rng.randrange(2, 6)
        sibling["runtime"] = rng.randrange(82, 195)
        return sibling
