"""Text perturbation engine for the synthetic dataset generators.

The paper evaluates on six crawled datasets we cannot redistribute.  What
its algorithms actually depend on is the *shape* of the string noise between
two sources describing the same entity: typos, dropped/reordered tokens,
abbreviations, format drift, and missing values.  :class:`Perturber`
produces exactly that noise, deterministically from a seeded RNG, so the
synthetic twins exercise the same similarity-score distributions (and hence
predicate selectivities) the real data would.
"""

from __future__ import annotations

import random
import string
from typing import Callable, Dict, List, Optional, Sequence

_KEYBOARD_NEIGHBORS: Dict[str, str] = {
    "q": "wa", "w": "qes", "e": "wrd", "r": "etf", "t": "ryg", "y": "tuh",
    "u": "yij", "i": "uok", "o": "ipl", "p": "ol",
    "a": "qsz", "s": "awdx", "d": "sefc", "f": "drgv", "g": "fthb",
    "h": "gyjn", "j": "hukm", "k": "jil", "l": "kop",
    "z": "asx", "x": "zsdc", "c": "xdfv", "v": "cfgb", "b": "vghn",
    "n": "bhjm", "m": "njk",
}

#: Common retail-title abbreviations, applied token-wise in both directions.
ABBREVIATIONS: Dict[str, str] = {
    "black": "blk", "white": "wht", "silver": "slv", "inch": "in",
    "gigabyte": "gb", "terabyte": "tb", "megapixel": "mp", "wireless": "wl",
    "bluetooth": "bt", "edition": "ed", "generation": "gen",
    "professional": "pro", "ultimate": "ult", "standard": "std",
    "deluxe": "dlx", "limited": "ltd", "collection": "coll",
    "volume": "vol", "street": "st", "avenue": "ave", "boulevard": "blvd",
    "restaurant": "rest", "original": "orig", "chocolate": "choc",
    "organic": "org", "ounce": "oz", "pound": "lb", "count": "ct",
    "package": "pkg", "assorted": "asst",
}


class Perturber:
    """Deterministic string/record noise generator.

    All randomness flows through the injected ``random.Random`` so that a
    generator seeded once reproduces its dataset byte-for-byte — a property
    the benchmark suite relies on when comparing strategies on "the same"
    workload.
    """

    def __init__(self, rng: random.Random):
        self.rng = rng

    # ------------------------------------------------------------------
    # Character-level noise
    # ------------------------------------------------------------------

    def typo(self, text: str) -> str:
        """Apply one random character edit (substitute/insert/delete/swap).

        Substitutions prefer keyboard-adjacent characters, matching how
        real data-entry typos distribute.
        """
        if len(text) < 2:
            return text
        position = self.rng.randrange(len(text))
        operation = self.rng.randrange(4)
        if operation == 0:  # substitute with a keyboard neighbour
            original = text[position].lower()
            neighbours = _KEYBOARD_NEIGHBORS.get(original, string.ascii_lowercase)
            replacement = self.rng.choice(neighbours)
            return text[:position] + replacement + text[position + 1 :]
        if operation == 1:  # insert
            inserted = self.rng.choice(string.ascii_lowercase)
            return text[:position] + inserted + text[position:]
        if operation == 2:  # delete
            return text[:position] + text[position + 1 :]
        # transpose with the next character
        if position == len(text) - 1:
            position -= 1
        return (
            text[:position]
            + text[position + 1]
            + text[position]
            + text[position + 2 :]
        )

    def typos(self, text: str, count: int) -> str:
        """Apply ``count`` independent typos."""
        for _ in range(count):
            text = self.typo(text)
        return text

    def maybe_typo(self, text: str, probability: float) -> str:
        """Apply one typo with the given probability."""
        if self.rng.random() < probability:
            return self.typo(text)
        return text

    # ------------------------------------------------------------------
    # Token-level noise
    # ------------------------------------------------------------------

    def drop_tokens(self, text: str, probability: float) -> str:
        """Drop each token independently with ``probability`` (keeps >= 1)."""
        tokens = text.split()
        if len(tokens) <= 1:
            return text
        kept = [token for token in tokens if self.rng.random() >= probability]
        if not kept:
            kept = [self.rng.choice(tokens)]
        return " ".join(kept)

    def shuffle_tokens(self, text: str, probability: float) -> str:
        """With ``probability``, swap one random adjacent token pair."""
        tokens = text.split()
        if len(tokens) < 2 or self.rng.random() >= probability:
            return text
        position = self.rng.randrange(len(tokens) - 1)
        tokens[position], tokens[position + 1] = tokens[position + 1], tokens[position]
        return " ".join(tokens)

    def abbreviate(self, text: str, probability: float) -> str:
        """Token-wise abbreviation using the retail abbreviation table."""
        tokens = text.split()
        changed = []
        for token in tokens:
            lowered = token.lower()
            if lowered in ABBREVIATIONS and self.rng.random() < probability:
                changed.append(ABBREVIATIONS[lowered])
            else:
                changed.append(token)
        return " ".join(changed)

    def append_noise_tokens(self, text: str, pool: Sequence[str], probability: float) -> str:
        """With ``probability``, append one marketing-style filler token."""
        if pool and self.rng.random() < probability:
            return text + " " + self.rng.choice(pool)
        return text

    def case_noise(self, text: str, probability: float) -> str:
        """With ``probability``, change the casing style of the whole value."""
        if self.rng.random() >= probability:
            return text
        style = self.rng.randrange(3)
        if style == 0:
            return text.upper()
        if style == 1:
            return text.lower()
        return text.title()

    # ------------------------------------------------------------------
    # Value-level noise
    # ------------------------------------------------------------------

    def maybe_missing(self, value: Optional[str], probability: float) -> Optional[str]:
        """Replace the value with ``None`` with the given probability."""
        if value is not None and self.rng.random() < probability:
            return None
        return value

    def jitter_number(self, value: float, relative: float = 0.0, absolute: float = 0.0) -> float:
        """Add bounded uniform noise to a numeric value."""
        jittered = value
        if relative:
            jittered *= 1.0 + self.rng.uniform(-relative, relative)
        if absolute:
            jittered += self.rng.uniform(-absolute, absolute)
        return jittered

    def reformat_phone(self, digits: str) -> str:
        """Render a 10-digit phone number in one of several styles."""
        if len(digits) != 10:
            return digits
        style = self.rng.randrange(4)
        if style == 0:
            return f"({digits[:3]}) {digits[3:6]}-{digits[6:]}"
        if style == 1:
            return f"{digits[:3]}-{digits[3:6]}-{digits[6:]}"
        if style == 2:
            return f"{digits[:3]}.{digits[3:6]}.{digits[6:]}"
        return digits

    # ------------------------------------------------------------------
    # Identifier synthesis
    # ------------------------------------------------------------------

    def model_number(self, prefix_pool: Sequence[str]) -> str:
        """Synthesize a model number like ``"SG-4821B"``."""
        prefix = self.rng.choice(prefix_pool)
        digits = "".join(self.rng.choice(string.digits) for _ in range(4))
        suffix = self.rng.choice(string.ascii_uppercase) if self.rng.random() < 0.5 else ""
        separator = self.rng.choice(["-", "", " "])
        return f"{prefix}{separator}{digits}{suffix}"

    def phone_digits(self) -> str:
        """Ten random digits with a plausible area code (no leading 0/1)."""
        first = self.rng.choice("23456789")
        rest = "".join(self.rng.choice(string.digits) for _ in range(9))
        return first + rest

    def words(self, pool: Sequence[str], count: int) -> List[str]:
        """``count`` words sampled with replacement from ``pool``."""
        return [self.rng.choice(pool) for _ in range(count)]

    def pick(self, pool: Sequence[str]) -> str:
        """One uniform choice from ``pool``."""
        return self.rng.choice(pool)
