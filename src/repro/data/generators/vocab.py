"""Word pools for the six synthetic domains.

All names are invented or generic; the pools only need to be large enough
that token-level similarity scores spread over ``[0, 1]`` the way the real
crawled data's do.  Pool sizes control vocabulary overlap between unrelated
entities, which in turn controls how many near-miss candidate pairs
blocking produces.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Shared
# ---------------------------------------------------------------------------

ADJECTIVES = [
    "ultra", "super", "compact", "portable", "premium", "classic", "digital",
    "smart", "advanced", "slim", "mini", "mega", "turbo", "essential",
    "modern", "vintage", "deluxe", "universal", "dynamic", "active",
]

COLORS = [
    "black", "white", "silver", "red", "blue", "green", "gray", "gold",
    "purple", "pink", "orange", "charcoal", "ivory", "teal",
]

MARKETING = [
    "new", "sealed", "bundle", "refurbished", "sale", "genuine", "official",
    "bestseller", "exclusive", "imported", "(renewed)", "w/warranty",
]

FIRST_NAMES = [
    "james", "mary", "robert", "patricia", "john", "jennifer", "michael",
    "linda", "david", "elizabeth", "william", "barbara", "richard", "susan",
    "joseph", "jessica", "thomas", "sarah", "carlos", "maria", "wei", "yuki",
    "ahmed", "fatima", "ivan", "olga", "pierre", "claire", "marco", "lucia",
]

LAST_NAMES = [
    "smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
    "davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
    "wilson", "anderson", "thomas", "taylor", "moore", "jackson", "martin",
    "lee", "perez", "thompson", "white", "harris", "sanchez", "clark",
    "ramirez", "lewis", "robinson", "walker", "young", "allen", "king",
]

CITIES = [
    "madison", "austin", "portland", "denver", "seattle", "boston",
    "chicago", "nashville", "phoenix", "atlanta", "oakland", "tucson",
]

STREET_NAMES = [
    "main", "oak", "maple", "cedar", "pine", "washington", "lake", "hill",
    "park", "river", "sunset", "college", "church", "spring", "mill",
    "union", "prospect", "highland", "jefferson", "franklin",
]

STREET_TYPES = ["street", "avenue", "boulevard", "road", "lane", "drive"]

# ---------------------------------------------------------------------------
# Products (electronics) — Walmart vs Amazon
# ---------------------------------------------------------------------------

ELECTRONICS_BRANDS = [
    "sonavox", "technira", "lumicore", "veltron", "quantix", "aerophon",
    "nexar", "cirrustech", "pixelon", "omnivolt", "zentra", "helixon",
    "braventa", "clarivox", "duratek", "fluxart", "gigaline", "hypernix",
]

ELECTRONICS_NOUNS = [
    "headphones", "speaker", "camera", "laptop", "tablet", "monitor",
    "keyboard", "mouse", "router", "charger", "earbuds", "soundbar",
    "projector", "webcam", "microphone", "printer", "scanner", "drive",
    "adapter", "dock",
]

MODEL_PREFIXES = [
    "SX", "TR", "LM", "VX", "QN", "AP", "NX", "CT", "PX", "OV", "ZN", "HX",
]

ELECTRONICS_SPECS = [
    "1080p", "4k", "wireless", "bluetooth", "usb-c", "noise cancelling",
    "16gb", "32gb", "64gb", "dual band", "rechargeable", "hd",
]

# ---------------------------------------------------------------------------
# Restaurants — Yelp vs Foursquare
# ---------------------------------------------------------------------------

RESTAURANT_HEADS = [
    "golden", "blue", "red", "silver", "happy", "royal", "little", "grand",
    "old", "new", "corner", "garden", "sunny", "lucky", "crystal", "cozy",
]

RESTAURANT_TAILS = [
    "dragon", "lotus", "olive", "fork", "spoon", "table", "kitchen",
    "bistro", "grill", "diner", "cafe", "tavern", "cantina", "trattoria",
    "brasserie", "smokehouse", "noodle house", "pizzeria", "taqueria",
]

CUISINES = [
    "italian", "mexican", "chinese", "thai", "indian", "japanese",
    "american", "french", "mediterranean", "korean", "vietnamese",
    "greek", "spanish", "ethiopian",
]

# ---------------------------------------------------------------------------
# Books — Amazon vs Barnes & Noble
# ---------------------------------------------------------------------------

BOOK_TITLE_HEADS = [
    "the secret", "a brief history", "shadows", "the art", "chronicles",
    "the last", "whispers", "the garden", "echoes", "the house", "a theory",
    "the silent", "dreams", "the burning", "fragments", "the lost",
]

BOOK_TITLE_TAILS = [
    "of time", "of the north", "of memory", "of glass", "of the river",
    "of winter", "of small things", "of the mountain", "of light",
    "of forgotten roads", "of the harvest", "of iron", "of salt",
    "of the deep", "of tomorrow", "of stone",
]

PUBLISHERS = [
    "harbor press", "lantern books", "foxglove publishing", "meridian house",
    "bluestem press", "gilded page", "northlight editions", "quillword",
]

BOOK_GENRES = [
    "fiction", "mystery", "biography", "history", "science", "fantasy",
    "romance", "thriller", "poetry", "self-help",
]

# ---------------------------------------------------------------------------
# Breakfast foods — Walmart vs Amazon
# ---------------------------------------------------------------------------

BREAKFAST_BRANDS = [
    "morningfield", "sunharvest", "goldengrain", "oakmills", "crispvale",
    "honeybrook", "meadowfare", "nutrapex", "wholeoat", "berryland",
]

BREAKFAST_NOUNS = [
    "granola", "oatmeal", "cereal", "pancake mix", "syrup", "muesli",
    "breakfast bars", "instant porridge", "waffle mix", "toaster pastries",
]

FLAVORS = [
    "honey almond", "maple brown sugar", "cinnamon", "blueberry",
    "strawberry", "vanilla", "chocolate", "peanut butter", "apple",
    "mixed berry", "coconut", "banana nut",
]

PACK_SIZES = ["12 oz", "16 oz", "18 oz", "24 oz", "32 oz", "6 ct", "8 ct", "12 ct"]

# ---------------------------------------------------------------------------
# Movies — Amazon vs BestBuy
# ---------------------------------------------------------------------------

MOVIE_TITLE_HEADS = [
    "midnight", "crimson", "the hollow", "iron", "silent", "the glass",
    "broken", "the seventh", "wild", "the paper", "frozen", "the velvet",
    "savage", "the amber", "electric", "the marble",
]

MOVIE_TITLE_TAILS = [
    "horizon", "protocol", "kingdom", "valley", "crossing", "covenant",
    "harvest", "directive", "labyrinth", "reckoning", "sanctuary",
    "paradox", "vendetta", "odyssey", "equation", "frontier",
]

STUDIOS = [
    "parallax pictures", "northgate films", "silverline studios",
    "cobalt entertainment", "redwood media", "atlas features",
]

MPAA_RATINGS = ["G", "PG", "PG-13", "R"]

MOVIE_FORMATS = ["dvd", "blu-ray", "blu-ray + dvd", "4k ultra hd"]

# ---------------------------------------------------------------------------
# Video games — TheGamesDB vs MobyGames
# ---------------------------------------------------------------------------

GAME_TITLE_HEADS = [
    "legend", "shadow", "star", "dragon", "cyber", "mystic", "turbo",
    "phantom", "crystal", "rogue", "astro", "neon", "storm", "pixel",
    "iron", "solar",
]

GAME_TITLE_TAILS = [
    "quest", "racer", "warrior", "saga", "commander", "chronicles",
    "arena", "tactics", "odyssey", "rebellion", "frontier", "legacy",
    "uprising", "dungeon", "galaxy", "empire",
]

PLATFORMS = [
    "pc", "playstation 4", "playstation 5", "xbox one", "xbox series x",
    "nintendo switch", "wii u", "playstation 3", "xbox 360",
]

GAME_GENRES = [
    "action", "adventure", "rpg", "strategy", "simulation", "sports",
    "racing", "puzzle", "platformer", "shooter", "fighting",
]

DEVELOPERS = [
    "ironpixel studios", "novaforge", "bitholm games", "cedarlight",
    "polyhedral works", "glasscannon interactive", "farpoint labs",
    "quietriver games",
]
