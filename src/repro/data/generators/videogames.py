"""Video games — synthetic twin of the paper's TheGamesDB/MobyGames dataset.

Game catalogs cross-list the same title on many platforms, so ``platform``
plays the disambiguating role that ``size`` plays for groceries: "Star
Quest (PC)" and "Star Quest (Switch)" are different catalog entities.
Community-maintained sources also disagree on edition suffixes ("Game of
the Year Edition", "Remastered"), which the generator injects as B-side
title noise.
"""

from __future__ import annotations

import random
from typing import Dict

from .base import DomainGenerator
from .text import Perturber
from . import vocab


class VideoGamesGenerator(DomainGenerator):
    """Synthetic twin of the TheGamesDB/MobyGames video-games dataset."""

    name = "videogames"
    source_a = "thegamesdb"
    source_b = "mobygames"
    description = "Video games, TheGamesDB vs MobyGames"

    attributes = ("title", "platform", "developer", "genre", "year")
    attribute_types = {
        "title": "text",
        "platform": "category",
        "developer": "text",
        "genre": "category",
        "year": "numeric",
    }

    # Table 2: 3,742 x 6,739.
    default_shared = 260
    default_a_only = 80
    default_b_only = 360
    default_distractor_rate = 0.5

    def make_entity(
        self, rng: random.Random, perturber: Perturber, index: int
    ) -> Dict[str, object]:
        title = f"{perturber.pick(vocab.GAME_TITLE_HEADS)} {perturber.pick(vocab.GAME_TITLE_TAILS)}"
        if rng.random() < 0.3:
            title += f" {rng.randrange(2, 6)}"  # franchises have numbers
        return {
            "title": title,
            "platform": perturber.pick(vocab.PLATFORMS),
            "developer": perturber.pick(vocab.DEVELOPERS),
            "genre": perturber.pick(vocab.GAME_GENRES),
            "year": rng.randrange(1995, 2017),
        }

    def view_a(self, entity: Dict[str, object], perturber: Perturber) -> Dict[str, object]:
        title = perturber.maybe_typo(str(entity["title"]), 0.08)
        return {
            "title": title,
            "platform": entity["platform"],
            "developer": entity["developer"],
            "genre": entity["genre"],
            "year": str(entity["year"]),
        }

    def view_b(self, entity: Dict[str, object], perturber: Perturber) -> Dict[str, object]:
        title = str(entity["title"])
        title = perturber.append_noise_tokens(
            title,
            ["remastered", "goty edition", "definitive edition", "hd"],
            0.3,
        )
        title = perturber.maybe_typo(title, 0.18)
        title = perturber.case_noise(title, 0.4)
        developer = perturber.maybe_typo(str(entity["developer"]), 0.15)
        return {
            "title": title,
            "platform": entity["platform"],
            "developer": perturber.maybe_missing(developer, 0.15),
            "genre": perturber.maybe_missing(str(entity["genre"]), 0.10),
            "year": str(entity["year"]),
        }

    def make_distractor(
        self, entity: Dict[str, object], rng: random.Random, perturber: Perturber
    ) -> Dict[str, object]:
        sibling = dict(entity)
        # The same game on another platform, sometimes a year later (ports),
        # or the next numbered entry in the franchise.
        if rng.random() < 0.6:
            others = [p for p in vocab.PLATFORMS if p != entity["platform"]]
            sibling["platform"] = perturber.pick(others)
            sibling["year"] = int(entity["year"]) + rng.randrange(0, 2)
        else:
            sibling["title"] = f"{entity['title']} {rng.randrange(2, 6)}"
            sibling["year"] = int(entity["year"]) + rng.randrange(2, 5)
        return sibling
