"""People — the paper's *introduction* domain, as a seventh dataset.

Not one of the six evaluation datasets: the paper's running example
(its Figure 2, and the (Matthew Richardson, 206-453-1978) pair of the
first paragraph) is person records with name/phone/zip/street.  This
generator makes that example executable at scale, so the B1 → B2 rule
evolution of the introduction can be demonstrated on data with the same
shape: phones as a format-drifting near-key, names with nicknames and
typos, street addresses with abbreviation noise.
"""

from __future__ import annotations

import random
from typing import Dict

from .base import DomainGenerator
from .text import Perturber
from . import vocab

#: Common nickname pairs — the name noise that defeats exact matching.
NICKNAMES: Dict[str, str] = {
    "james": "jim", "robert": "bob", "william": "bill", "richard": "dick",
    "michael": "mike", "elizabeth": "liz", "jennifer": "jen",
    "patricia": "pat", "thomas": "tom", "joseph": "joe", "david": "dave",
    "susan": "sue", "barbara": "barb", "jessica": "jess",
}


class PeopleGenerator(DomainGenerator):
    """Synthetic person records, two directory-style sources."""

    name = "people"
    source_a = "directory1"
    source_b = "directory2"
    description = "Person records (the paper's Figure 2 introduction domain)"

    attributes = ("name", "phone", "zip", "street")
    attribute_types = {
        "name": "text",
        "phone": "short",
        "zip": "short",
        "street": "text",
    }

    default_shared = 250
    default_a_only = 50
    default_b_only = 400
    default_distractor_rate = 0.3

    def make_entity(
        self, rng: random.Random, perturber: Perturber, index: int
    ) -> Dict[str, object]:
        first = perturber.pick(vocab.FIRST_NAMES)
        last = perturber.pick(vocab.LAST_NAMES)
        number = rng.randrange(10, 9900)
        street = perturber.pick(vocab.STREET_NAMES)
        street_type = perturber.pick(vocab.STREET_TYPES)
        return {
            "first": first,
            "last": last,
            "phone": perturber.phone_digits(),
            "zip": f"{rng.randrange(10000, 99999)}",
            "street": f"{number} {street} {street_type}",
        }

    def view_a(self, entity: Dict[str, object], perturber: Perturber) -> Dict[str, object]:
        name = f"{entity['first']} {entity['last']}"
        name = perturber.maybe_typo(name, 0.10)
        return {
            "name": name,
            "phone": perturber.reformat_phone(str(entity["phone"])),
            "zip": str(entity["zip"]),
            "street": perturber.abbreviate(str(entity["street"]), 0.4),
        }

    def view_b(self, entity: Dict[str, object], perturber: Perturber) -> Dict[str, object]:
        first = str(entity["first"])
        # Directory 2 uses nicknames and middle initials.
        if first in NICKNAMES and perturber.rng.random() < 0.5:
            first = NICKNAMES[first]
        name = f"{first} {entity['last']}"
        if perturber.rng.random() < 0.25:
            middle = perturber.pick("abcdefghjklmnprstw")
            name = f"{first} {middle}. {entity['last']}"
        name = perturber.maybe_typo(name, 0.15)
        name = perturber.case_noise(name, 0.3)
        # Phones sometimes listed without area code — the paper's
        # "(206-453-1978)" vs "(453 1978)" example.
        phone = str(entity["phone"])
        if perturber.rng.random() < 0.2:
            phone = phone[3:]
        else:
            phone = perturber.reformat_phone(phone)
        return {
            "name": name,
            "phone": phone,
            "zip": perturber.maybe_missing(str(entity["zip"]), 0.10),
            "street": perturber.maybe_typo(
                perturber.abbreviate(str(entity["street"]), 0.2), 0.15
            ),
        }

    def make_distractor(
        self, entity: Dict[str, object], rng: random.Random, perturber: Perturber
    ) -> Dict[str, object]:
        # A relative at the same address: same last name and street,
        # different first name and phone — the classic household trap.
        sibling = dict(entity)
        sibling["first"] = perturber.pick(vocab.FIRST_NAMES)
        sibling["phone"] = perturber.phone_digits()
        return sibling
