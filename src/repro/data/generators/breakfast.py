"""Breakfast foods — synthetic twin of the paper's Walmart/Amazon dataset.

Grocery items are the hardest of the six domains for string matching: the
same granola appears in three pack sizes, five flavours, and the flavour
words appear in every competitor's titles too.  The ``size`` attribute is
the crucial disambiguator — two records are the same product only if
flavour AND size line up, which pushes learned rules toward multi-predicate
conjunctions (Table 2: 59 rules over 14 features).
"""

from __future__ import annotations

import random
from typing import Dict

from .base import DomainGenerator
from .text import Perturber
from . import vocab


class BreakfastGenerator(DomainGenerator):
    """Synthetic twin of the Walmart/Amazon breakfast-foods dataset."""

    name = "breakfast"
    source_a = "walmart"
    source_b = "amazon"
    description = "Breakfast foods, Walmart vs Amazon"

    attributes = ("title", "brand", "flavor", "size", "price")
    attribute_types = {
        "title": "text",
        "brand": "category",
        "flavor": "text",
        "size": "short",
        "price": "numeric",
    }

    # Table 2: 3,669 x 4,165 — balanced tables, many near-duplicates.
    default_shared = 260
    default_a_only = 100
    default_b_only = 180
    default_distractor_rate = 0.6  # flavour/size siblings are the norm here

    def make_entity(
        self, rng: random.Random, perturber: Perturber, index: int
    ) -> Dict[str, object]:
        brand = perturber.pick(vocab.BREAKFAST_BRANDS)
        noun = perturber.pick(vocab.BREAKFAST_NOUNS)
        flavor = perturber.pick(vocab.FLAVORS)
        size = perturber.pick(vocab.PACK_SIZES)
        return {
            "title": f"{brand} {flavor} {noun} {size}",
            "brand": brand,
            "flavor": flavor,
            "size": size,
            "price": round(rng.uniform(1.5, 25.0), 2),
        }

    def view_a(self, entity: Dict[str, object], perturber: Perturber) -> Dict[str, object]:
        title = perturber.abbreviate(str(entity["title"]), 0.25)
        title = perturber.maybe_typo(title, 0.12)
        return {
            "title": title,
            "brand": entity["brand"],
            "flavor": entity["flavor"],
            "size": entity["size"],
            "price": f"{entity['price']:.2f}",
        }

    def view_b(self, entity: Dict[str, object], perturber: Perturber) -> Dict[str, object]:
        title = str(entity["title"])
        title = perturber.append_noise_tokens(
            title, ["pack of 1", "family size", "value pack", "non-gmo"], 0.4
        )
        title = perturber.abbreviate(title, 0.35)
        title = perturber.shuffle_tokens(title, 0.3)
        title = perturber.maybe_typo(title, 0.2)
        size = str(entity["size"]).replace(" ", perturber.pick(["", " ", "-"]))
        price = perturber.jitter_number(float(entity["price"]), relative=0.06)
        return {
            "title": title,
            "brand": perturber.maybe_missing(str(entity["brand"]), 0.08),
            "flavor": perturber.maybe_missing(str(entity["flavor"]), 0.25),
            "size": size,
            "price": f"{max(0.5, price):.2f}",
        }

    def make_distractor(
        self, entity: Dict[str, object], rng: random.Random, perturber: Perturber
    ) -> Dict[str, object]:
        sibling = dict(entity)
        # Same product line, different flavour or pack size — the grocery
        # near-miss that title-overlap rules always stumble over.
        if rng.random() < 0.5:
            sibling["flavor"] = perturber.pick(vocab.FLAVORS)
        else:
            sibling["size"] = perturber.pick(vocab.PACK_SIZES)
        sibling["title"] = (
            f"{sibling['brand']} {sibling['flavor']} "
            f"{str(entity['title']).split()[-3]} {sibling['size']}"
        )
        sibling["price"] = round(float(entity["price"]) * rng.uniform(0.8, 1.4), 2)
        return sibling
