"""CSV persistence for tables, candidate sets, and gold labels.

The interactive debugging workflow is long-lived: analysts snapshot a
dataset once and iterate on rules for hours.  These helpers let examples
and benchmarks persist generated datasets so repeated runs skip the
generation step, and let users bring their own data.

File formats
------------
* **Tables** — plain CSV with a header; the id column is configurable
  (default ``"id"``).  Empty cells load as ``None``.
* **Pairs / gold** — two-column CSV ``a_id,b_id`` with a header.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Sequence, Set, Tuple

from ..errors import SchemaError
from .table import Record, Table


def save_table(table: Table, path: str | Path, id_column: str = "id") -> None:
    """Write ``table`` to CSV with the record id in ``id_column``."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow([id_column, *table.attributes])
        for record in table:
            row = [record.record_id]
            for attribute in table.attributes:
                value = record.get(attribute)
                row.append("" if value is None else str(value))
            writer.writerow(row)


def load_table(path: str | Path, name: str | None = None, id_column: str = "id") -> Table:
    """Load a table from CSV; empty cells become ``None``."""
    path = Path(path)
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"{path} is empty; expected a CSV header") from None
        if id_column not in header:
            raise SchemaError(
                f"{path} has no {id_column!r} column (header: {header})"
            )
        id_index = header.index(id_column)
        attributes = [column for column in header if column != id_column]
        table = Table(name or path.stem, attributes)
        for row_number, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != len(header):
                raise SchemaError(
                    f"{path}:{row_number}: expected {len(header)} cells, got {len(row)}"
                )
            values = {}
            for position, column in enumerate(header):
                if position == id_index:
                    continue
                values[column] = row[position] if row[position] != "" else None
            table.add(Record(row[id_index], values))
    return table


def save_pairs(pairs: Sequence[Tuple[str, str]], path: str | Path) -> None:
    """Write id pairs (candidate set or gold labels) to a two-column CSV."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["a_id", "b_id"])
        for a_id, b_id in pairs:
            writer.writerow([a_id, b_id])


def load_pairs(path: str | Path) -> List[Tuple[str, str]]:
    """Load id pairs from a two-column CSV written by :func:`save_pairs`."""
    path = Path(path)
    result: List[Tuple[str, str]] = []
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None:
            raise SchemaError(f"{path} is empty; expected a CSV header")
        for row_number, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != 2:
                raise SchemaError(
                    f"{path}:{row_number}: expected 2 cells, got {len(row)}"
                )
            result.append((row[0], row[1]))
    return result


def load_gold(path: str | Path) -> Set[Tuple[str, str]]:
    """Load gold labels as a set (order-free membership checks)."""
    return set(load_pairs(path))
