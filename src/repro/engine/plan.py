"""Planner: lower a :class:`MatchingFunction` into an explicit ``MatchPlan``.

The plan/executor split follows the relational idiom: the DSL parser
produces the logical form (an ordered DNF), the planner annotates each
predicate step with what the cost model and kernel layer know about it
(estimated cost, selectivity, bound-skip rate, kernel support), and the
columnar executor (:mod:`repro.engine.executor`) interprets the plan
set-at-a-time.

The plan is purely *descriptive*: evaluation order is the function's
rule/predicate order (plus the same per-pair check-cache-first regrouping
the scalar evaluator applies at runtime), so labels, counters, and trace
output stay bit-identical to the scalar path.  Annotations exist for
introspection (the workbench ``plan`` command) and for shipping cost
context to parallel workers — the executor never branches on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..core.rules import MatchingFunction, Predicate, Rule
from ..errors import EstimationError

#: Annotation key: (rule name, predicate pid).
AnnotationKey = Tuple[str, str]

#: Annotation value: (est_cost, est_selectivity, bound_skip_rate).
Annotation = Tuple[Optional[float], Optional[float], Optional[float]]


@dataclass(frozen=True)
class PredicateStep:
    """One predicate of one rule, annotated for the columnar executor."""

    predicate: Predicate
    #: the kernel layer can batch-compute this feature (token-set measure
    #: with unforked compare/score_sets).
    kernel_supported: bool
    #: the measure additionally exposes a size-only upper bound, so the
    #: executor's bound pre-filter can decide rows without computing.
    bound_eligible: bool
    est_cost: Optional[float] = None
    est_selectivity: Optional[float] = None
    bound_skip_rate: Optional[float] = None

    @property
    def feature_name(self) -> str:
        return self.predicate.feature.name

    def describe(self) -> str:
        tags = []
        if self.kernel_supported:
            tags.append("kernel")
        else:
            tags.append("scalar")
        if self.bound_eligible:
            tags.append("bound")
        cost = "?" if self.est_cost is None else f"{self.est_cost * 1e6:.2f}us"
        sel = "?" if self.est_selectivity is None else f"{self.est_selectivity:.3f}"
        skip = (
            "" if self.bound_skip_rate is None
            else f" bound_skip={self.bound_skip_rate:.3f}"
        )
        return (
            f"{self.predicate.pid}  cost={cost} sel={sel}{skip} "
            f"[{','.join(tags)}]"
        )


@dataclass(frozen=True)
class RuleStep:
    """One rule: its predicate steps in static (parser) order."""

    rule: Rule
    steps: Tuple[PredicateStep, ...]

    @property
    def fully_kernel_supported(self) -> bool:
        return all(step.kernel_supported for step in self.steps)


@dataclass(frozen=True)
class MatchPlan:
    """An ordered, annotated physical plan for one matching function.

    ``check_cache_first`` and ``use_bounds`` record the evaluation-mode
    flags the plan was compiled under so an executor bound to the plan
    reproduces the scalar evaluator's exact control flow.
    """

    function: MatchingFunction
    rule_steps: Tuple[RuleStep, ...]
    check_cache_first: bool = False
    use_bounds: bool = False

    @property
    def fully_kernel_supported(self) -> bool:
        return all(step.fully_kernel_supported for step in self.rule_steps)

    def describe(self) -> str:
        """Human-readable plan dump (the workbench ``plan`` command)."""
        flags = []
        flags.append(
            "check_cache_first=on" if self.check_cache_first else "check_cache_first=off"
        )
        flags.append("bounds=on" if self.use_bounds else "bounds=off")
        flags.append(
            "fully kernel-supported" if self.fully_kernel_supported
            else "partial scalar fallback"
        )
        lines = [
            f"MatchPlan: {len(self.rule_steps)} rules, {', '.join(flags)}"
        ]
        for rule_step in self.rule_steps:
            tag = "kernel" if rule_step.fully_kernel_supported else "mixed"
            lines.append(f"  rule {rule_step.rule.name} [{tag}]")
            for position, step in enumerate(rule_step.steps, start=1):
                lines.append(f"    {position}. {step.describe()}")
        return "\n".join(lines)

    def spec(self) -> "PlanSpec":
        """A picklable, function-free shadow of this plan (for workers)."""
        annotations: Dict[AnnotationKey, Annotation] = {}
        for rule_step in self.rule_steps:
            for step in rule_step.steps:
                annotations[(rule_step.rule.name, step.predicate.pid)] = (
                    step.est_cost,
                    step.est_selectivity,
                    step.bound_skip_rate,
                )
        return PlanSpec(
            check_cache_first=self.check_cache_first,
            use_bounds=self.use_bounds,
            annotations=annotations,
        )


@dataclass
class PlanSpec:
    """Picklable plan shadow shipped in :class:`repro.parallel.ChunkTask`.

    Carries only the compile flags and the parent's cost annotations;
    kernel support is *recomputed* on bind because the worker has its own
    :class:`~repro.kernels.FeatureKernels` (or none at all) and support
    must reflect the kernels that will actually execute the plan.
    """

    check_cache_first: bool = False
    use_bounds: bool = False
    annotations: Dict[AnnotationKey, Annotation] = field(default_factory=dict)

    def bind(self, function: MatchingFunction, kernels=None) -> MatchPlan:
        """Rebuild a full :class:`MatchPlan` against ``function``."""
        plan = plan_function(
            function,
            kernels=kernels,
            check_cache_first=self.check_cache_first,
            use_bounds=self.use_bounds,
        )
        rule_steps = []
        for rule_step in plan.rule_steps:
            steps = []
            for step in rule_step.steps:
                annotation = self.annotations.get(
                    (rule_step.rule.name, step.predicate.pid)
                )
                if annotation is None:
                    steps.append(step)
                    continue
                cost, selectivity, skip_rate = annotation
                steps.append(
                    PredicateStep(
                        predicate=step.predicate,
                        kernel_supported=step.kernel_supported,
                        bound_eligible=step.bound_eligible,
                        est_cost=cost,
                        est_selectivity=selectivity,
                        bound_skip_rate=skip_rate,
                    )
                )
            rule_steps.append(RuleStep(rule=rule_step.rule, steps=tuple(steps)))
        return MatchPlan(
            function=function,
            rule_steps=tuple(rule_steps),
            check_cache_first=self.check_cache_first,
            use_bounds=self.use_bounds,
        )


def plan_function(
    function: MatchingFunction,
    kernels=None,
    estimates=None,
    check_cache_first: bool = False,
    use_bounds: Optional[bool] = None,
) -> MatchPlan:
    """Compile ``function`` into a :class:`MatchPlan`.

    ``use_bounds`` defaults to the kernels' own ``use_bounds`` flag (off
    without kernels).  ``estimates`` (a :class:`repro.core.cost_model.Estimates`)
    is optional; unknown costs/selectivities annotate as ``None`` rather
    than failing the compile — plans must be buildable mid-edit, before
    re-estimation has seen newly introduced features.
    """
    if use_bounds is None:
        use_bounds = bool(kernels is not None and kernels.use_bounds)
    rule_steps = []
    for rule in function.rules:
        steps = []
        for predicate in rule.predicates:
            feature = predicate.feature
            supported = kernels is not None and kernels.supports(feature)
            bound_eligible = bool(
                supported and use_bounds and kernels.has_bound(feature)
            )
            cost = selectivity = skip_rate = None
            if estimates is not None:
                cost = estimates.feature_costs.get(feature.name)
                try:
                    selectivity = estimates.selectivity(predicate)
                except EstimationError:
                    selectivity = None
                skip_rate = estimates.bound_skip_rates.get(predicate.pid)
            steps.append(
                PredicateStep(
                    predicate=predicate,
                    kernel_supported=supported,
                    bound_eligible=bound_eligible,
                    est_cost=cost,
                    est_selectivity=selectivity,
                    bound_skip_rate=skip_rate,
                )
            )
        rule_steps.append(RuleStep(rule=rule, steps=tuple(steps)))
    return MatchPlan(
        function=function,
        rule_steps=tuple(rule_steps),
        check_cache_first=check_cache_first,
        use_bounds=use_bounds,
    )
