"""Planner: lower a :class:`MatchingFunction` into an explicit ``MatchPlan``.

The plan/executor split follows the relational idiom: the DSL parser
produces the logical form (an ordered DNF), the planner annotates each
predicate step with what the cost model and kernel layer know about it
(estimated cost, selectivity, bound-skip rate, kernel support), and the
columnar executor (:mod:`repro.engine.executor`) interprets the plan
set-at-a-time.

The plan is purely *descriptive*: evaluation order is the function's
rule/predicate order (plus the same per-pair check-cache-first regrouping
the scalar evaluator applies at runtime), so labels, counters, and trace
output stay bit-identical to the scalar path.  Annotations exist for
introspection (the workbench ``plan`` command), for shipping cost
context to parallel workers, and for the per-plan engine choice
(:func:`choose_engine`, stored as :attr:`MatchPlan.decision`) that an
``engine="auto"`` session resolves through — the executor itself never
branches on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from ..core.cost_model import CALIBRATED_BOUND_COST, CALIBRATED_TIER_COSTS
from ..core.rules import MatchingFunction, Predicate, Rule
from ..errors import EstimationError

#: Annotation key: (rule name, predicate pid).
AnnotationKey = Tuple[str, str]

#: Annotation value: (est_cost, est_selectivity, bound_skip_rate).
Annotation = Tuple[Optional[float], Optional[float], Optional[float]]

#: Per-step interpreter overhead of the scalar per-pair loop (predicate
#: dispatch, memo probe, profiler hooks) — measured on the learned
#: products workload, same order of magnitude as a tier-3 feature.
SCALAR_STEP_OVERHEAD = 1.5e-6
#: Amortized per-(step, surviving row) overhead of a batched kernel step
#: (mask arithmetic + column gather, spread over the whole column).
COLUMNAR_SUPPORTED_OVERHEAD = 0.1e-6
#: Per-row overhead of a columnar *fallback* step: the executor drops to
#: per-pair evaluation but still pays index gathering and mask writes on
#: top of the scalar loop's own dispatch cost.
COLUMNAR_FALLBACK_OVERHEAD = 2.0e-6


@dataclass(frozen=True)
class PredicateStep:
    """One predicate of one rule, annotated for the columnar executor."""

    predicate: Predicate
    #: the kernel layer has a batched column plan for this feature (one of
    #: the token-set / normalized-string / numeric / corpus-vector
    #: families, with the family pipeline unforked).
    kernel_supported: bool
    #: the measure additionally exposes a cheap upper bound (token-set
    #: sizes, string lengths), so the executor's bound pre-filter can
    #: decide rows without computing.
    bound_eligible: bool
    est_cost: Optional[float] = None
    est_selectivity: Optional[float] = None
    bound_skip_rate: Optional[float] = None
    #: why the kernel layer rejected this feature (``None`` when
    #: supported) — surfaced by the workbench ``plan`` command.
    unsupported_reason: Optional[str] = None

    @property
    def feature_name(self) -> str:
        return self.predicate.feature.name

    def describe(self) -> str:
        tags = []
        if self.kernel_supported:
            tags.append("kernel")
        else:
            tags.append("scalar")
        if self.bound_eligible:
            tags.append("bound")
        cost = "?" if self.est_cost is None else f"{self.est_cost * 1e6:.2f}us"
        sel = "?" if self.est_selectivity is None else f"{self.est_selectivity:.3f}"
        skip = (
            "" if self.bound_skip_rate is None
            else f" bound_skip={self.bound_skip_rate:.3f}"
        )
        reason = (
            "" if self.unsupported_reason is None
            else f"  -- {self.unsupported_reason}"
        )
        return (
            f"{self.predicate.pid}  cost={cost} sel={sel}{skip} "
            f"[{','.join(tags)}]{reason}"
        )


@dataclass(frozen=True)
class RuleStep:
    """One rule: its predicate steps in static (parser) order."""

    rule: Rule
    steps: Tuple[PredicateStep, ...]

    @property
    def fully_kernel_supported(self) -> bool:
        return all(step.kernel_supported for step in self.steps)


@dataclass(frozen=True)
class EngineDecision:
    """The cost model's engine choice for one plan.

    ``engine`` is what an ``"auto"`` session resolves to (``"columnar"``
    or ``"scalar"``); ``mode`` refines it for display: ``"columnar"``
    (every step kernel-supported), ``"mixed"`` (columnar chosen despite
    per-step scalar fallbacks), or ``"scalar"``.  Costs are estimated
    seconds per candidate pair for a full evaluation under each engine.
    """

    engine: str
    mode: str
    columnar_cost: float
    scalar_cost: float
    supported_steps: int
    total_steps: int
    reason: str

    def describe(self) -> str:
        return (
            f"engine: {self.engine} ({self.mode})  "
            f"columnar~{self.columnar_cost * 1e6:.2f}us/pair "
            f"scalar~{self.scalar_cost * 1e6:.2f}us/pair  "
            f"{self.reason}"
        )


def choose_engine(plan: "MatchPlan") -> EngineDecision:
    """Pick columnar vs scalar for ``plan`` from its cost annotations.

    Models one full evaluation of an average candidate pair.  Short
    circuits make later work conditional, so each step is weighted by the
    probability it runs: a rule is reached only if no earlier rule fired
    (``reach *= 1 - rule_selectivity``), and a predicate within a rule
    only if every earlier predicate of that rule held (prefix product of
    selectivities).  The *compute* term (feature cost, discounted by the
    bound pre-filter where eligible) is identical under both engines —
    kernels replicate the scalar arithmetic — so the decision reduces to
    per-step overheads: the scalar loop pays dispatch/memo-probe per
    step, a supported columnar step amortizes to almost nothing, and a
    columnar *fallback* step costs more than scalar (it adds index
    gathering and mask writes on top of the same per-pair evaluation).
    Columnar therefore wins exactly when supported steps carry enough of
    the expected work to pay for the unsupported ones.

    Steps missing annotations fall back to calibrated tier costs,
    selectivity 0.5, and skip rate 0.0 — plans must be decidable
    mid-edit, before re-estimation has seen new features.
    """
    scalar_cost = 0.0
    columnar_cost = 0.0
    supported = 0
    total = 0
    reach = 1.0
    for rule_step in plan.rule_steps:
        prefix = 1.0
        for step in rule_step.steps:
            total += 1
            if step.kernel_supported:
                supported += 1
            cost = step.est_cost
            if cost is None:
                cost = CALIBRATED_TIER_COSTS.get(
                    step.predicate.feature.sim.cost_tier, 5.0e-6
                )
            selectivity = step.est_selectivity
            if selectivity is None:
                selectivity = 0.5
            skip = step.bound_skip_rate or 0.0
            weight = reach * prefix
            if step.bound_eligible:
                compute = skip * CALIBRATED_BOUND_COST + (1.0 - skip) * (
                    CALIBRATED_BOUND_COST + cost
                )
            else:
                compute = cost
            scalar_cost += weight * (compute + SCALAR_STEP_OVERHEAD)
            columnar_cost += weight * (
                compute
                + (
                    COLUMNAR_SUPPORTED_OVERHEAD
                    if step.kernel_supported
                    else COLUMNAR_FALLBACK_OVERHEAD
                )
            )
            prefix *= selectivity
        # ``prefix`` now holds the rule's conjunction selectivity.
        reach *= 1.0 - prefix
    engine = "columnar" if columnar_cost < scalar_cost else "scalar"
    if engine == "columnar":
        mode = "columnar" if supported == total else "mixed"
    else:
        mode = "scalar"
    reason = f"{supported}/{total} steps kernel-supported"
    return EngineDecision(
        engine=engine,
        mode=mode,
        columnar_cost=columnar_cost,
        scalar_cost=scalar_cost,
        supported_steps=supported,
        total_steps=total,
        reason=reason,
    )


@dataclass(frozen=True)
class MatchPlan:
    """An ordered, annotated physical plan for one matching function.

    ``check_cache_first`` and ``use_bounds`` record the evaluation-mode
    flags the plan was compiled under so an executor bound to the plan
    reproduces the scalar evaluator's exact control flow.
    """

    function: MatchingFunction
    rule_steps: Tuple[RuleStep, ...]
    check_cache_first: bool = False
    use_bounds: bool = False
    #: the cost model's engine choice; always populated by
    #: :func:`plan_function` and :meth:`PlanSpec.bind`.
    decision: Optional[EngineDecision] = None

    @property
    def fully_kernel_supported(self) -> bool:
        return all(step.fully_kernel_supported for step in self.rule_steps)

    def describe(self) -> str:
        """Human-readable plan dump (the workbench ``plan`` command)."""
        flags = []
        flags.append(
            "check_cache_first=on" if self.check_cache_first else "check_cache_first=off"
        )
        flags.append("bounds=on" if self.use_bounds else "bounds=off")
        flags.append(
            "fully kernel-supported" if self.fully_kernel_supported
            else "partial scalar fallback"
        )
        lines = [
            f"MatchPlan: {len(self.rule_steps)} rules, {', '.join(flags)}"
        ]
        if self.decision is not None:
            lines.append(f"  {self.decision.describe()}")
        for rule_step in self.rule_steps:
            tag = "kernel" if rule_step.fully_kernel_supported else "mixed"
            lines.append(f"  rule {rule_step.rule.name} [{tag}]")
            for position, step in enumerate(rule_step.steps, start=1):
                lines.append(f"    {position}. {step.describe()}")
        return "\n".join(lines)

    def spec(self) -> "PlanSpec":
        """A picklable, function-free shadow of this plan (for workers)."""
        annotations: Dict[AnnotationKey, Annotation] = {}
        for rule_step in self.rule_steps:
            for step in rule_step.steps:
                annotations[(rule_step.rule.name, step.predicate.pid)] = (
                    step.est_cost,
                    step.est_selectivity,
                    step.bound_skip_rate,
                )
        return PlanSpec(
            check_cache_first=self.check_cache_first,
            use_bounds=self.use_bounds,
            annotations=annotations,
        )


@dataclass
class PlanSpec:
    """Picklable plan shadow shipped in :class:`repro.parallel.ChunkTask`.

    Carries only the compile flags and the parent's cost annotations;
    kernel support is *recomputed* on bind because the worker has its own
    :class:`~repro.kernels.FeatureKernels` (or none at all) and support
    must reflect the kernels that will actually execute the plan.
    """

    check_cache_first: bool = False
    use_bounds: bool = False
    annotations: Dict[AnnotationKey, Annotation] = field(default_factory=dict)

    def bind(self, function: MatchingFunction, kernels=None) -> MatchPlan:
        """Rebuild a full :class:`MatchPlan` against ``function``."""
        plan = plan_function(
            function,
            kernels=kernels,
            check_cache_first=self.check_cache_first,
            use_bounds=self.use_bounds,
        )
        rule_steps = []
        for rule_step in plan.rule_steps:
            steps = []
            for step in rule_step.steps:
                annotation = self.annotations.get(
                    (rule_step.rule.name, step.predicate.pid)
                )
                if annotation is None:
                    steps.append(step)
                    continue
                cost, selectivity, skip_rate = annotation
                steps.append(
                    replace(
                        step,
                        est_cost=cost,
                        est_selectivity=selectivity,
                        bound_skip_rate=skip_rate,
                    )
                )
            rule_steps.append(RuleStep(rule=rule_step.rule, steps=tuple(steps)))
        bound = MatchPlan(
            function=function,
            rule_steps=tuple(rule_steps),
            check_cache_first=self.check_cache_first,
            use_bounds=self.use_bounds,
        )
        # Re-decide the engine against the *worker's* kernels and the
        # parent's cost annotations — support was recomputed above, so
        # the same spec can resolve differently per process.
        return replace(bound, decision=choose_engine(bound))


def plan_function(
    function: MatchingFunction,
    kernels=None,
    estimates=None,
    check_cache_first: bool = False,
    use_bounds: Optional[bool] = None,
) -> MatchPlan:
    """Compile ``function`` into a :class:`MatchPlan`.

    ``use_bounds`` defaults to the kernels' own ``use_bounds`` flag (off
    without kernels).  ``estimates`` (a :class:`repro.core.cost_model.Estimates`)
    is optional; unknown costs/selectivities annotate as ``None`` rather
    than failing the compile — plans must be buildable mid-edit, before
    re-estimation has seen newly introduced features.
    """
    if use_bounds is None:
        use_bounds = bool(kernels is not None and kernels.use_bounds)
    rule_steps = []
    for rule in function.rules:
        steps = []
        for predicate in rule.predicates:
            feature = predicate.feature
            supported = kernels is not None and kernels.supports(feature)
            if supported:
                reason = None
            elif kernels is None:
                reason = "no kernel layer bound (scalar session)"
            else:
                reason = kernels.support_reason(feature)
            bound_eligible = bool(
                supported and use_bounds and kernels.has_bound(feature)
            )
            cost = selectivity = skip_rate = None
            if estimates is not None:
                cost = estimates.feature_costs.get(feature.name)
                try:
                    selectivity = estimates.selectivity(predicate)
                except EstimationError:
                    selectivity = None
                skip_rate = estimates.bound_skip_rates.get(predicate.pid)
            steps.append(
                PredicateStep(
                    predicate=predicate,
                    kernel_supported=supported,
                    bound_eligible=bound_eligible,
                    est_cost=cost,
                    est_selectivity=selectivity,
                    bound_skip_rate=skip_rate,
                    unsupported_reason=reason,
                )
            )
        rule_steps.append(RuleStep(rule=rule, steps=tuple(steps)))
    plan = MatchPlan(
        function=function,
        rule_steps=tuple(rule_steps),
        check_cache_first=check_cache_first,
        use_bounds=use_bounds,
    )
    return replace(plan, decision=choose_engine(plan))
