"""Columnar evaluation engine: plan/executor split for set-at-a-time matching.

Three stages (see ``docs/performance.md`` and ``DESIGN.md``):

* :mod:`repro.engine.plan` — the **planner** lowers a parsed
  :class:`~repro.core.rules.MatchingFunction` into a :class:`MatchPlan` of
  ordered predicate steps annotated with cost-model estimates, kernel
  support, and bound eligibility (plus a picklable :class:`PlanSpec` for
  parallel workers);
* :mod:`repro.engine.executor` — the **columnar executor** evaluates each
  step as one vectorized mask over the surviving candidate indices, with
  per-step scalar fallback for similarities without kernels, bit-identical
  to the scalar :class:`~repro.core.matchers.PairEvaluator` path;
* :mod:`repro.engine.incremental` — columnar mirrors of the paper's
  incremental Algorithms 7-10, so rule edits (and the refinement search's
  scorer) run as mask passes over the materialized state.
"""

from .executor import ColumnarExecutor, ColumnarMatcher
from .incremental import (
    apply_add_rule_columnar,
    apply_change_columnar,
    apply_loosening_columnar,
    apply_remove_rule_columnar,
    apply_strictening_columnar,
)
from .plan import (
    EngineDecision,
    MatchPlan,
    PlanSpec,
    PredicateStep,
    RuleStep,
    choose_engine,
    plan_function,
)

__all__ = [
    "ColumnarExecutor",
    "ColumnarMatcher",
    "EngineDecision",
    "MatchPlan",
    "PlanSpec",
    "PredicateStep",
    "RuleStep",
    "choose_engine",
    "apply_add_rule_columnar",
    "apply_change_columnar",
    "apply_loosening_columnar",
    "apply_remove_rule_columnar",
    "apply_strictening_columnar",
    "plan_function",
]
