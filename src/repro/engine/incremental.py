"""Columnar mirrors of the incremental algorithms (paper Algorithms 7-10).

Each function is the set-at-a-time counterpart of its scalar twin in
:mod:`repro.core.incremental`: the same affected-pair selection from the
materialized bitmaps, the same re-evaluation order, the same state
mutations — but every predicate/rule re-evaluation runs through the
:class:`~repro.engine.executor.ColumnarExecutor` as one mask pass over
the affected rows instead of a per-pair Python loop.

This is what makes the refinement search's scorer set-at-a-time: each
candidate edit is one (or a few) vectorized passes over the checkpointed
state, with ``refine.full_rematches == 0`` preserved because the mirrors
consume exactly the same materialized facts the scalar algorithms do.

Counter conservation holds for the same reason as the full-run executor:
pairs are independent, so batching their re-evaluations changes no
per-pair outcome and no counter sum (see the soundness discussion in
:mod:`repro.core.incremental`, which applies verbatim).
"""

from __future__ import annotations

import time

import numpy as np

from ..core.changes import (
    AddPredicate,
    AddRule,
    Change,
    RelaxPredicate,
    RemovePredicate,
    RemoveRule,
    TightenPredicate,
)
from ..core.incremental import IncrementalResult, _finish
from ..core.state import MatchState
from ..core.stats import MatchStats
from ..errors import ChangeError
from .executor import ColumnarExecutor
from .plan import plan_function


def _executor(
    state: MatchState, stats: MatchStats, profiler=None
) -> ColumnarExecutor:
    """An executor over the state's *current* function (call after apply_to)."""
    plan = plan_function(
        state.function,
        kernels=state.kernels,
        check_cache_first=state.check_cache_first,
    )
    return ColumnarExecutor(
        plan,
        state.candidates,
        state.memo,
        stats,
        recorder=state,
        profiler=profiler,
        kernels=state.kernels,
    )


def _rows(indices) -> np.ndarray:
    return np.asarray(indices, dtype=np.int64)


# ---------------------------------------------------------------------------
# Algorithm 7: add a predicate / tighten a predicate
# ---------------------------------------------------------------------------


def apply_strictening_columnar(
    state: MatchState, change: Change
) -> "tuple[IncrementalResult, ColumnarExecutor]":
    started = time.perf_counter()
    stats = MatchStats()
    change.validate(state.function)
    if isinstance(change, AddPredicate):
        rule_name, changed_slot = change.rule_name, change.predicate.slot
    elif isinstance(change, TightenPredicate):
        rule_name, changed_slot = change.rule_name, change.slot
    else:
        raise ChangeError(f"apply_strictening cannot handle {change!r}")

    affected = _rows(state.matched_by_rule(rule_name))
    state.function = change.apply_to(state.function)
    rule = state.function.rule(rule_name)
    changed_predicate = rule.predicate_by_slot(changed_slot)
    rule_position = state.function.rule_index(rule_name)

    executor = _executor(state, stats)
    newly_unmatched = 0
    if affected.size:
        passing = executor.predicate_rows(changed_predicate, rule_name, affected)
        failing = np.setdiff1d(affected, passing, assume_unique=True)
        if failing.size:
            state.clear_rule_match_rows(failing, rule_name)
            rematched = executor.match_rows(failing, start_rule=rule_position + 1)
            fell_out = failing[~rematched]
            state.labels[fell_out] = False
            newly_unmatched = int(fell_out.size)
    result = _finish(
        change, stats, started, int(affected.size), 0, newly_unmatched
    )
    return result, executor


# ---------------------------------------------------------------------------
# Algorithm 8: remove a predicate / relax a predicate
# ---------------------------------------------------------------------------


def apply_loosening_columnar(
    state: MatchState, change: Change
) -> "tuple[IncrementalResult, ColumnarExecutor]":
    started = time.perf_counter()
    stats = MatchStats()
    change.validate(state.function)
    if isinstance(change, RemovePredicate):
        rule_name, slot, removed = change.rule_name, change.slot, True
    elif isinstance(change, RelaxPredicate):
        rule_name, slot, removed = change.rule_name, change.slot, False
    else:
        raise ChangeError(f"apply_loosening cannot handle {change!r}")

    failed = _rows(state.failed_predicate(rule_name, slot))
    state.function = change.apply_to(state.function)
    rule = state.function.rule(rule_name)
    rule_position = state.function.rule_index(rule_name)
    relaxed_predicate = None if removed else rule.predicate_by_slot(slot)
    other_predicates = tuple(
        predicate for predicate in rule.predicates if predicate.slot != slot
    )

    if removed:
        state.drop_predicate(rule_name, slot)
    else:
        state.reset_predicate_false(rule_name, slot)

    executor = _executor(state, stats)
    # Skip pairs matched by this rule or an earlier one (the invariant
    # only covers rules before the attribution, which don't include r).
    matched_mask = state.labels[failed] if failed.size else np.zeros(0, dtype=bool)
    attributed = state.attribution[failed] if failed.size else np.zeros(0, dtype=np.int32)
    skip = matched_mask & (attributed <= rule_position)
    examined = failed[~skip]

    rows = examined
    if relaxed_predicate is not None and rows.size:
        rows = executor.predicate_rows(relaxed_predicate, rule_name, rows)
    for predicate in other_predicates:
        if rows.size == 0:
            break
        rows = executor.predicate_rows(predicate, rule_name, rows)

    newly_matched = 0
    if rows.size:
        currently_matched = state.labels[rows]
        re_attributed = rows[currently_matched]
        fresh = rows[~currently_matched]
        if re_attributed.size:
            # Bulk re-attribution, grouped by the old attributed rule so
            # each group's bitmap clears in one fancy-indexed write.
            old_attrs = state.attribution[re_attributed]
            for old_index in np.unique(old_attrs):
                group = re_attributed[old_attrs == old_index]
                state.clear_rule_match_rows(
                    group, state.function.rules[int(old_index)].name
                )
        state.record_rule_match_rows(rows, rule_name)
        if fresh.size:
            state.labels[fresh] = True
            newly_matched = int(fresh.size)
    result = _finish(
        change, stats, started, int(examined.size), newly_matched, 0
    )
    return result, executor


# ---------------------------------------------------------------------------
# Algorithm 9: remove a rule
# ---------------------------------------------------------------------------


def apply_remove_rule_columnar(
    state: MatchState, change: RemoveRule
) -> "tuple[IncrementalResult, ColumnarExecutor]":
    started = time.perf_counter()
    stats = MatchStats()
    change.validate(state.function)
    rule_name = change.rule_name
    affected = _rows(state.matched_by_rule(rule_name))
    old_index = state.function.rule_index(rule_name)
    state.function = change.apply_to(state.function)
    state.drop_rule(rule_name, old_index)

    executor = _executor(state, stats)
    newly_unmatched = 0
    if affected.size:
        # drop_rule cleared the bitmap wholesale; fix these pairs' entries.
        state.attribution[affected] = -1
        rematched = executor.match_rows(affected, start_rule=old_index)
        fell_out = affected[~rematched]
        state.labels[fell_out] = False
        newly_unmatched = int(fell_out.size)
    result = _finish(
        change, stats, started, int(affected.size), 0, newly_unmatched
    )
    return result, executor


# ---------------------------------------------------------------------------
# Algorithm 10: add a rule
# ---------------------------------------------------------------------------


def apply_add_rule_columnar(
    state: MatchState, change: AddRule
) -> "tuple[IncrementalResult, ColumnarExecutor]":
    started = time.perf_counter()
    stats = MatchStats()
    change.validate(state.function)
    affected = _rows(state.unmatched_indices())
    state.function = change.apply_to(state.function)

    executor = _executor(state, stats)
    newly_matched = 0
    if affected.size:
        matched = executor.match_rows(
            affected, start_rule=len(state.function.rules) - 1
        )
        won = affected[matched]
        state.labels[won] = True
        newly_matched = int(won.size)
    result = _finish(
        change, stats, started, int(affected.size), newly_matched, 0
    )
    return result, executor


# ---------------------------------------------------------------------------
# Dispatch
# ---------------------------------------------------------------------------


def apply_change_columnar(
    state: MatchState, change: Change, metrics=None
) -> IncrementalResult:
    """Apply any change through the columnar incremental mirrors.

    Drop-in for :func:`repro.core.incremental.apply_change` — identical
    state mutations, labels, bitmaps, and stats counters — with every
    re-evaluation batched through the columnar executor.  ``metrics``
    (a metrics registry) optionally receives the ``engine.*`` counters.
    """
    if isinstance(change, (AddPredicate, TightenPredicate)):
        result, executor = apply_strictening_columnar(state, change)
    elif isinstance(change, (RemovePredicate, RelaxPredicate)):
        result, executor = apply_loosening_columnar(state, change)
    elif isinstance(change, RemoveRule):
        result, executor = apply_remove_rule_columnar(state, change)
    elif isinstance(change, AddRule):
        result, executor = apply_add_rule_columnar(state, change)
    else:
        raise ChangeError(f"no incremental algorithm for {type(change).__name__}")
    if metrics is not None:
        executor.report_metrics(metrics)
    return result
