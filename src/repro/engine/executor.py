"""Columnar executor: set-at-a-time evaluation of a :class:`MatchPlan`.

Where the scalar :class:`~repro.core.matchers.PairEvaluator` walks
``for pair in candidates`` and evaluates rules tuple-at-a-time, the
columnar executor processes one *rule* at a time over the whole surviving
candidate index-set:

* inter-rule early exit becomes index-set shrinking (rows matched by a
  rule leave the surviving set);
* intra-rule early exit becomes per-predicate row filtering (rows that
  fail a predicate drop out of the rule's pipeline but stay alive for the
  next rule);
* dynamic memoing becomes column reuse — one ``memo.valid_rows`` mask
  splits a step's rows into memo hits (one gather) and misses (one
  batched kernel computation landed via ``memo.put_rows``);
* cheap bounds become a mask-level pre-filter: rows whose predicate a
  size-only bound decides skip the fetch entirely, exactly like the
  scalar ``try_bound`` path;
* check-cache-first becomes a partition: rows are grouped by their
  memo-validity vector over the rule's features, and each group runs the
  same cached-predicates-first order the scalar evaluator would pick for
  those pairs.

Conservation property (enforced by the property suite): labels,
``MatchStats`` counters, memo contents, trace bitmaps, and profiler
*counts* are bit-identical to the scalar path.  Pairs are independent and
the memo is keyed per (pair, feature), so reordering the evaluation from
pair-major to rule-major changes no per-pair outcome and no counter sum.
Only wall-clock observations (batch-timed means instead of per-call
samples) and trace *ordering* differ — both explicitly order-insensitive.

Features without a kernel fall back per-step to a per-pair
``feature.compute`` loop over just the rows that need them, counted in
``scalar_fallbacks``.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..core.matchers import Matcher, TraceRecorder
from ..core.memo import ArrayMemo, FeatureMemo, HashMemo
from ..core.rules import MatchingFunction, Predicate, Rule
from ..core.stats import MatchStats
from ..errors import MatchingError
from .plan import MatchPlan, RuleStep, plan_function

_EMPTY_ROWS = np.empty(0, dtype=np.int64)


def _compare_rows(predicate: Predicate, values: np.ndarray) -> np.ndarray:
    """One vectorized predicate evaluation over a float64 value column.

    Matches ``predicate.evaluate(float(value))`` element-wise: the values
    are float64 (memo reads cast up) and the threshold is a Python float,
    so the comparison semantics are identical to the scalar path.
    """
    op = predicate.op
    threshold = predicate.threshold
    if op == ">=":
        return values >= threshold
    if op == ">":
        return values > threshold
    if op == "<=":
        return values <= threshold
    if op == "<":
        return values < threshold
    return values == threshold


class ColumnarExecutor:
    """Evaluates a :class:`MatchPlan` over sets of candidate row indices.

    One instance per run (or per incremental change application); the
    ``mask_evals`` / ``scalar_fallbacks`` counters are engine-level
    observability — deliberately *not* part of :class:`MatchStats`, which
    must stay identical between engines.
    """

    def __init__(
        self,
        plan: MatchPlan,
        candidates,
        memo: FeatureMemo,
        stats: MatchStats,
        recorder: Optional[TraceRecorder] = None,
        profiler=None,
        kernels=None,
    ):
        self.plan = plan
        self.candidates = candidates
        self.memo = memo
        self.stats = stats
        self.recorder = recorder
        self.profiler = profiler
        self.kernels = kernels
        #: vectorized predicate-mask evaluations performed.
        self.mask_evals = 0
        #: per-pair feature computations taken on the scalar fallback path
        #: (similarity without a kernel).
        self.scalar_fallbacks = 0

    # ------------------------------------------------------------- metrics

    def report_metrics(self, registry) -> None:
        """Fold engine counters into a metrics registry."""
        if self.mask_evals:
            registry.counter("engine.mask_evals").inc(self.mask_evals)
        if self.scalar_fallbacks:
            registry.counter("engine.scalar_fallbacks").inc(self.scalar_fallbacks)

    # ------------------------------------------------------- trace bridges

    def _record_rule_match_rows(self, rows: np.ndarray, rule_name: str) -> None:
        recorder = self.recorder
        if recorder is None or rows.size == 0:
            return
        bulk = getattr(recorder, "record_rule_match_rows", None)
        if bulk is not None:
            bulk(rows, rule_name)
            return
        for row in rows:
            recorder.record_rule_match(int(row), rule_name)

    def _record_predicate_false_rows(
        self, rows: np.ndarray, rule_name: str, slot: str
    ) -> None:
        recorder = self.recorder
        if recorder is None or rows.size == 0:
            return
        bulk = getattr(recorder, "record_predicate_false_rows", None)
        if bulk is not None:
            bulk(rows, rule_name, slot)
            return
        for row in rows:
            recorder.record_predicate_false(int(row), rule_name, slot)

    # ------------------------------------------------------ feature access

    def _compute_rows(self, predicate: Predicate, rows: np.ndarray) -> np.ndarray:
        """Compute the predicate's feature for ``rows`` (cold entries only).

        Mirrors the scalar ``PairEvaluator.feature_value`` compute branch:
        supported features run through the kernels (token-cached, batched
        where the measure vectorizes), the rest loop per pair over
        ``feature.compute`` — the scalar fallback.
        """
        feature = predicate.feature
        kernels = self.kernels
        if kernels is not None and kernels.supports(feature):
            return kernels.compute_rows(feature, self.candidates, rows)
        self.scalar_fallbacks += int(rows.size)
        candidates = self.candidates
        return np.fromiter(
            (
                feature.compute(
                    candidates[int(row)].record_a, candidates[int(row)].record_b
                )
                for row in rows
            ),
            dtype=np.float64,
            count=int(rows.size),
        )

    def _fetch_values(
        self, predicate: Predicate, rows: np.ndarray, valid: np.ndarray
    ) -> np.ndarray:
        """Feature values for ``rows`` via memo-hit gather + batched compute.

        ``valid`` is the memo-validity mask for ``rows``.  Counter
        semantics mirror the scalar path exactly: one ``memo_hits`` per
        valid row, one ``record_computation`` per cold row; cold values
        are memoized.  Profiler feature timing uses the same deterministic
        modular sampling — the batch contributes the same number of
        histogram observations the per-pair loop would have, each valued
        at the batch mean.
        """
        name = predicate.feature.name
        memo = self.memo
        stats = self.stats
        n_hits = int(valid.sum())
        n_cold = int(rows.size) - n_hits
        if n_cold == 0:
            stats.memo_hits += n_hits
            return memo.get_rows(name, rows)
        cold_rows = rows[~valid]
        profiler = self.profiler
        if profiler is not None:
            sampled = profiler.count_features(name, n_cold)
            if sampled:
                started = profiler.clock()
                computed = self._compute_rows(predicate, cold_rows)
                elapsed = profiler.clock() - started
                profiler.record_feature_bulk(name, sampled, elapsed / n_cold)
            else:
                computed = self._compute_rows(predicate, cold_rows)
        else:
            computed = self._compute_rows(predicate, cold_rows)
        stats.feature_computations += n_cold
        stats.computations_by_feature[name] += n_cold
        memo.put_rows(name, cold_rows, computed)
        if n_hits == 0:
            return computed
        stats.memo_hits += n_hits
        values = np.empty(int(rows.size), dtype=np.float64)
        values[valid] = memo.get_rows(name, rows[valid])
        values[~valid] = computed
        return values

    # ------------------------------------------------------ predicate step

    def predicate_rows(
        self, predicate: Predicate, rule_name: str, rows: np.ndarray
    ) -> np.ndarray:
        """Rows of ``rows`` on which ``predicate`` holds (sorted if sorted in).

        The columnar mirror of ``PairEvaluator.predicate_true`` — bound
        pre-filter, memo fetch, batched compute, one vectorized compare —
        with identical counter and trace semantics.  Public because the
        incremental mirrors (:mod:`repro.engine.incremental`) re-evaluate
        single predicates in the scalar algorithms' exact order.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return _EMPTY_ROWS
        stats = self.stats
        profiler = self.profiler
        kernels = self.kernels
        name = predicate.feature.name
        valid = self.memo.valid_rows(name, rows)
        bound_true = _EMPTY_ROWS
        if kernels is not None and kernels.use_bounds:
            unknown = rows[~valid]
            if unknown.size:
                decisions = kernels.bound_rows(predicate, self.candidates, unknown)
                decided = decisions >= 0
                n_decided = int(decided.sum())
                if n_decided:
                    stats.bound_skips += n_decided
                    bound_true = unknown[decisions == 1]
                    bound_false = unknown[decisions == 0]
                    if profiler is not None:
                        profiler.record_predicate_bulk(
                            predicate.pid, n_decided, int(bound_true.size)
                        )
                        profiler.record_bound_skip_bulk(predicate.pid, n_decided)
                    self._record_predicate_false_rows(
                        bound_false, rule_name, predicate.slot
                    )
                    # Decided rows skip the fetch entirely (no compute, no
                    # memo write) — exactly the scalar try_bound path.
                    keep = valid.copy()
                    keep[~valid] = ~decided
                    rows = rows[keep]
                    valid = valid[keep]
                    if rows.size == 0:
                        return np.sort(bound_true) if bound_true.size else _EMPTY_ROWS
        values = self._fetch_values(predicate, rows, valid)
        stats.predicate_evaluations += int(rows.size)
        mask = _compare_rows(predicate, values)
        self.mask_evals += 1
        if profiler is not None:
            profiler.record_predicate_bulk(
                predicate.pid, int(rows.size), int(mask.sum())
            )
        self._record_predicate_false_rows(rows[~mask], rule_name, predicate.slot)
        survivors = rows[mask]
        if bound_true.size:
            survivors = np.sort(np.concatenate([survivors, bound_true]))
        return survivors

    # ----------------------------------------------------------- rule step

    def _rule_pipeline(
        self, rule: Rule, predicates, rows: np.ndarray
    ) -> np.ndarray:
        for predicate in predicates:
            if rows.size == 0:
                return _EMPTY_ROWS
            rows = self.predicate_rows(predicate, rule.name, rows)
        return rows

    def _rule_rows(self, rule_step: RuleStep, active: np.ndarray) -> np.ndarray:
        """Rows of ``active`` on which the whole rule holds.

        With ``check_cache_first`` on, rows are partitioned by their
        memo-validity vector over the rule's distinct features (captured
        at rule start, like the scalar ``_rule_predicate_order``), and
        each partition evaluates cached predicates before uncached ones —
        stable order within each group.  Partitions are disjoint row
        sets, so their processing order cannot affect any counter sum.
        """
        rule = rule_step.rule
        stats = self.stats
        stats.rule_evaluations += int(active.size)
        profiler = self.profiler
        sampled = 0
        if profiler is not None:
            sampled = profiler.count_rules(rule.name, int(active.size))
            started = profiler.clock() if sampled else 0.0

        features = rule.features()
        if not self.plan.check_cache_first or len(features) <= 1:
            survivors = self._rule_pipeline(rule, rule.predicates, active)
        else:
            validity = np.column_stack(
                [self.memo.valid_rows(feature.name, active) for feature in features]
            )
            groups, inverse = np.unique(validity, axis=0, return_inverse=True)
            inverse = np.asarray(inverse).reshape(-1)
            if len(groups) == 1:
                cached_set = {
                    feature.name
                    for feature, flag in zip(features, groups[0])
                    if flag
                }
                order = [
                    p for p in rule.predicates if p.feature.name in cached_set
                ] + [
                    p for p in rule.predicates if p.feature.name not in cached_set
                ]
                survivors = self._rule_pipeline(rule, order, active)
            else:
                parts: List[np.ndarray] = []
                for group_index in range(len(groups)):
                    part_rows = active[inverse == group_index]
                    cached_set = {
                        feature.name
                        for feature, flag in zip(features, groups[group_index])
                        if flag
                    }
                    order = [
                        p for p in rule.predicates if p.feature.name in cached_set
                    ] + [
                        p
                        for p in rule.predicates
                        if p.feature.name not in cached_set
                    ]
                    part = self._rule_pipeline(rule, order, part_rows)
                    if part.size:
                        parts.append(part)
                survivors = (
                    np.sort(np.concatenate(parts)) if parts else _EMPTY_ROWS
                )

        if profiler is not None and sampled:
            elapsed = profiler.clock() - started
            profiler.record_rule_bulk(
                rule.name, sampled, elapsed / max(int(active.size), 1)
            )
        return survivors

    # ------------------------------------------------------ function level

    def match_rows(self, rows, start_rule: int = 0) -> np.ndarray:
        """Match labels for ``rows``, as a bool mask aligned with ``rows``.

        The columnar mirror of ``first_matching_rule`` over
        ``plan.rule_steps[start_rule:]``: each rule is evaluated over the
        rows no earlier rule matched; matched rows are recorded via the
        recorder (attribution) and leave the surviving set.  Labels are
        *not* written — callers own the label array.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return np.zeros(0, dtype=bool)
        surviving = np.sort(rows)
        matched_parts: List[np.ndarray] = []
        for rule_step in self.plan.rule_steps[start_rule:]:
            if surviving.size == 0:
                break
            matched = self._rule_rows(rule_step, surviving)
            if matched.size:
                self._record_rule_match_rows(matched, rule_step.rule.name)
                matched_parts.append(matched)
                surviving = np.setdiff1d(surviving, matched, assume_unique=True)
        if not matched_parts:
            return np.zeros(int(rows.size), dtype=bool)
        all_matched = np.concatenate(matched_parts)
        return np.isin(rows, all_matched)


class ColumnarMatcher(Matcher):
    """Drop-in matcher running the columnar engine end to end.

    Same contract as :class:`~repro.core.matchers.DynamicMemoMatcher`
    (DM+EE semantics, persistent memo, recorder/profiler/kernels hooks),
    evaluated set-at-a-time through a compiled :class:`MatchPlan`.  The
    executor used by the last run is exposed as :attr:`last_executor` so
    callers can fold ``engine.*`` counters into their metrics registry.
    """

    strategy_name = "columnar"

    def __init__(
        self,
        memo: Optional[FeatureMemo] = None,
        memo_backend: str = "array",
        check_cache_first: bool = False,
        recorder: Optional[TraceRecorder] = None,
        profiler=None,
        kernels=None,
        plan: Optional[MatchPlan] = None,
    ):
        if memo_backend not in ("array", "hash"):
            raise MatchingError(
                f"memo_backend must be 'array' or 'hash', got {memo_backend!r}"
            )
        self.memo = memo
        self.memo_backend = memo_backend
        self.check_cache_first = check_cache_first
        self.recorder = recorder
        self.profiler = profiler
        self.kernels = kernels
        self.plan = plan
        self.last_memo: Optional[FeatureMemo] = memo
        self.last_executor: Optional[ColumnarExecutor] = None

    def _make_memo(
        self, function: MatchingFunction, candidates
    ) -> FeatureMemo:
        names = [feature.name for feature in function.features()]
        if self.memo_backend == "array":
            return ArrayMemo(len(candidates), names)
        return HashMemo(len(candidates), names)

    def _run(self, function, candidates, labels, stats) -> None:
        memo = self.memo if self.memo is not None else self._make_memo(function, candidates)
        self.last_memo = memo
        plan = self.plan
        if plan is None or plan.function is not function:
            plan = plan_function(
                function,
                kernels=self.kernels,
                check_cache_first=self.check_cache_first,
            )
        executor = ColumnarExecutor(
            plan,
            candidates,
            memo,
            stats,
            recorder=self.recorder,
            profiler=self.profiler,
            kernels=self.kernels,
        )
        self.last_executor = executor
        rows = np.arange(len(candidates), dtype=np.int64)
        labels[:] = executor.match_rows(rows)
