"""FeatureKernels: cached, batched, bound-aware feature computation.

This is the façade the matchers talk to.  It owns one
:class:`~repro.kernels.cache.TokenCache` (token sets) and one
:class:`~repro.kernels.cache.DerivedValueCache` (normalized strings,
parsed numbers, TF-IDF vectors) and exposes three operations:

* :meth:`FeatureKernels.compute` — per-pair feature value through the
  record caches.  Bit-identical to ``Feature.compute``: raw ``None`` on
  either side scores 0.0 (mirroring ``SimilarityFunction.__call__``),
  otherwise the cached derived forms feed the measure's family scoring
  hook (``score_sets`` / ``score_norms`` / ``score_numbers`` /
  ``score_vectors``), the exact same code the uncached path runs.
* :meth:`FeatureKernels.compute_column` / :meth:`compute_rows` — a whole
  score column in one pass.  Families with a vectorized hook
  (``from_counts``, ``from_numbers``, or the interned hash-compare of the
  exact family) gather inputs in a single Python loop and score on
  float64 ndarrays; the hook replicates the scalar arithmetic
  operation-for-operation, so the column equals the per-pair loop
  bit-for-bit.  Families without one batch the cached per-pair scoring.
* :meth:`FeatureKernels.try_bound` / :meth:`bound_rows` — decide a
  threshold predicate from cheap per-record statistics alone (token-set
  sizes via ``upper_bound``, normalized string lengths via
  ``upper_bound_lengths``).  The bound provably dominates every computed
  score for the observed statistics, so a decision is only returned when
  it is what the full evaluation would produce.

Kernel families
---------------
Eligibility is per *family* base class, provided the subclass keeps the
base's ``compare`` (and family scoring pipeline) intact:

* :class:`~repro.similarity.token_based.TokenSetSimilarity` — token-set
  measures (Jaccard, Dice, cosine, trigram, Soundex, ...).
* :class:`~repro.similarity.base.NormalizedStringSimilarity` — exact and
  character measures (exact match, Levenshtein family, Jaro family,
  prefix/suffix), with the exact subfamily
  (:class:`~repro.similarity.base.ExactStringSimilarity`) additionally
  scored as a vectorized interned-id hash compare.
* :class:`~repro.similarity.numeric.NumericSimilarity` — parsed-number
  measures, scored as direct NumPy columns.
* :class:`~repro.similarity.tfidf.CorpusVectorSimilarity` — TF-IDF
  family, with the per-record weighted vector cached against the bound
  corpus (plans are invalidated when ``bind_corpus`` swaps it).

Everything else (Monge-Elkan, bag measures, user measures overriding
``compare``) falls through to the seed per-pair path untouched; the
reason is recorded and surfaced via :meth:`FeatureKernels.support_reason`,
a one-time ``engine.kernel_unsupported`` metric, and
:meth:`drain_unsupported` trace facts, so coverage regressions are
observable instead of silent.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..similarity.base import (
    ExactStringSimilarity,
    NormalizedStringSimilarity,
    coerce,
)
from ..similarity.numeric import NumericSimilarity, parse_number
from ..similarity.tfidf import CorpusVectorSimilarity
from ..similarity.token_based import TokenSetSimilarity
from .cache import DerivedValueCache, TokenCache


def _decide(bound: float, op: str, threshold: float) -> Optional[bool]:
    """The predicate outcome a score upper bound proves, else None.

    Sound by construction: ``score <= bound`` for every computed score,
    so ``bound < t`` proves ``score >= t`` is False (and ``bound <= t``
    proves ``score <= t`` is True).
    """
    if op == ">=":
        return False if bound < threshold else None
    if op == ">":
        return False if bound <= threshold else None
    if op == "==":
        return False if bound < threshold else None
    if op == "<=":
        return True if bound <= threshold else None
    if op == "<":
        return True if bound < threshold else None
    return None


class _TokenPlan:
    """Hot-path handles for one token-set feature."""

    __slots__ = (
        "sim",
        "tokenizer",
        "attr_a",
        "attr_b",
        "key_a",
        "key_b",
        "from_counts",
        "has_bound",
    )

    def __init__(self, feature, cache: TokenCache):
        sim = feature.sim
        self.sim = sim
        self.tokenizer = sim.tokenizer
        self.attr_a = feature.attr_a
        self.attr_b = feature.attr_b
        self.key_a = cache.bucket(feature.attr_a, sim.tokenizer)
        self.key_b = cache.bucket(feature.attr_b, sim.tokenizer)
        self.from_counts = sim.from_counts
        self.has_bound = type(sim).upper_bound is not TokenSetSimilarity.upper_bound

    def stale(self) -> bool:
        return False

    def sets(self, cache: TokenCache, pair):
        record_a, record_b = pair.record_a, pair.record_b
        if record_a.get(self.attr_a) is None or record_b.get(self.attr_b) is None:
            return None
        set_a = cache.token_set(
            self.key_a, "a", record_a, self.attr_a, self.tokenizer
        )
        set_b = cache.token_set(
            self.key_b, "b", record_b, self.attr_b, self.tokenizer
        )
        return set_a, set_b

    def score_pair(self, caches, pair) -> float:
        sets = self.sets(caches[0], pair)
        if sets is None:
            return 0.0
        return self.sim.score_sets(*sets)

    def scores(self, caches, pairs, n: int) -> np.ndarray:
        cache = caches[0]
        if self.from_counts is None:
            return np.fromiter(
                (self.score_pair(caches, pair) for pair in pairs),
                dtype=np.float64,
                count=n,
            )
        intersection = np.empty(n, dtype=np.int64)
        size_x = np.ones(n, dtype=np.int64)
        size_y = np.ones(n, dtype=np.int64)
        special = []  # (row, score) for None/empty rows the formula skips
        key_a, key_b = self.key_a, self.key_b
        attr_a, attr_b = self.attr_a, self.attr_b
        tokenizer = self.tokenizer
        for row, pair in enumerate(pairs):
            record_a, record_b = pair.record_a, pair.record_b
            if record_a.get(attr_a) is None or record_b.get(attr_b) is None:
                intersection[row] = 0
                special.append((row, 0.0))
                continue
            set_a = cache.token_set(key_a, "a", record_a, attr_a, tokenizer)
            set_b = cache.token_set(key_b, "b", record_b, attr_b, tokenizer)
            len_a, len_b = len(set_a), len(set_b)
            if len_a == 0 or len_b == 0:
                intersection[row] = 0
                special.append((row, 1.0 if len_a == len_b else 0.0))
                continue
            intersection[row] = len(set_a & set_b)
            size_x[row] = len_a
            size_y[row] = len_b
        column = np.asarray(
            self.from_counts(intersection, size_x, size_y), dtype=np.float64
        )
        for row, score in special:
            column[row] = score
        return column

    def bound_value(self, caches, pair) -> Optional[float]:
        sets = self.sets(caches[0], pair)
        if sets is None:
            return None  # full path is already trivially cheap (0.0)
        set_a, set_b = sets
        if not set_a or not set_b:
            return None
        return self.sim.upper_bound(len(set_a), len(set_b))


class _StringPlan:
    """Hot-path handles for one normalized-string feature.

    The cached derived form is the normalized string (``None`` for a raw
    ``None`` value).  Exact measures score as a vectorized interned-id
    compare; other members batch the cached per-pair ``score_norms``.
    """

    __slots__ = (
        "sim",
        "attr_a",
        "attr_b",
        "key_a",
        "key_b",
        "exact",
        "has_bound",
        "_derive",
    )

    def __init__(self, feature, values: DerivedValueCache):
        sim = feature.sim
        self.sim = sim
        self.attr_a = feature.attr_a
        self.attr_b = feature.attr_b
        kind = ("norm", sim.normalize_key)
        label = f"norm:{sim.normalize_key}"
        self.key_a = values.bucket(feature.attr_a, kind, label)
        self.key_b = values.bucket(feature.attr_b, kind, label)
        self.exact = isinstance(sim, ExactStringSimilarity)
        self.has_bound = (
            type(sim).upper_bound_lengths
            is not NormalizedStringSimilarity.upper_bound_lengths
        )
        normalize = sim.kernel_normalize

        def derive(raw):
            if raw is None:
                return None
            return normalize(coerce(raw))

        self._derive = derive

    def stale(self) -> bool:
        return False

    def norms(self, values: DerivedValueCache, pair):
        norm_a = values.value(
            self.key_a, "a", pair.record_a, self.attr_a, self._derive
        )
        norm_b = values.value(
            self.key_b, "b", pair.record_b, self.attr_b, self._derive
        )
        return norm_a, norm_b

    def score_pair(self, caches, pair) -> float:
        norm_a, norm_b = self.norms(caches[1], pair)
        if norm_a is None or norm_b is None:
            return 0.0
        return self.sim.score_norms(norm_a, norm_b)

    def scores(self, caches, pairs, n: int) -> np.ndarray:
        values = caches[1]
        if not self.exact:
            # Batched column over cached norms: one normalization per
            # record, the exact scalar score_norms per surviving pair.
            return np.fromiter(
                (self.score_pair(caches, pair) for pair in pairs),
                dtype=np.float64,
                count=n,
            )
        # Exact family: intern each distinct normalized value to an int id
        # once, then one vectorized equality compare scores the column.
        # score_norms is equality plus the both-empty convention, so the
        # hash-compare reproduces it exactly (empty interns to one id).
        ids = {}
        ids_a = np.empty(n, dtype=np.int64)
        ids_b = np.empty(n, dtype=np.int64)
        key_a, key_b = self.key_a, self.key_b
        attr_a, attr_b = self.attr_a, self.attr_b
        derive = self._derive
        for row, pair in enumerate(pairs):
            norm_a = values.value(key_a, "a", pair.record_a, attr_a, derive)
            norm_b = values.value(key_b, "b", pair.record_b, attr_b, derive)
            if norm_a is None or norm_b is None:
                ids_a[row] = -1  # None rows score 0.0: -1 never equals -2
                ids_b[row] = -2
                continue
            id_a = ids.get(norm_a)
            if id_a is None:
                id_a = ids[norm_a] = len(ids)
            id_b = ids.get(norm_b)
            if id_b is None:
                id_b = ids[norm_b] = len(ids)
            ids_a[row] = id_a
            ids_b[row] = id_b
        column = np.where(ids_a == ids_b, 1.0, 0.0)
        empty_id = ids.get("")
        if empty_id is not None and self.sim.empty_equal_score != 1.0:
            both_empty = (ids_a == empty_id) & (ids_b == empty_id)
            column[both_empty] = self.sim.empty_equal_score
        return column

    def bound_value(self, caches, pair) -> Optional[float]:
        norm_a, norm_b = self.norms(caches[1], pair)
        if norm_a is None or norm_b is None:
            return None  # full path is already trivially cheap (0.0)
        return self.sim.upper_bound_lengths(len(norm_a), len(norm_b))


class _NumericPlan:
    """Hot-path handles for one parsed-number feature.

    The cached derived form is the parsed float (``None`` for a raw
    ``None`` value *or* a parse failure — both score 0.0).
    """

    __slots__ = (
        "sim",
        "attr_a",
        "attr_b",
        "key_a",
        "key_b",
        "from_numbers",
        "has_bound",
    )

    def __init__(self, feature, values: DerivedValueCache):
        sim = feature.sim
        self.sim = sim
        self.attr_a = feature.attr_a
        self.attr_b = feature.attr_b
        kind = ("number",)
        self.key_a = values.bucket(feature.attr_a, kind, "number")
        self.key_b = values.bucket(feature.attr_b, kind, "number")
        self.from_numbers = sim.from_numbers
        self.has_bound = False

    def stale(self) -> bool:
        return False

    @staticmethod
    def _derive(raw):
        if raw is None:
            return None
        return parse_number(coerce(raw))

    def score_pair(self, caches, pair) -> float:
        values = caches[1]
        nx = values.value(self.key_a, "a", pair.record_a, self.attr_a, self._derive)
        ny = values.value(self.key_b, "b", pair.record_b, self.attr_b, self._derive)
        if nx is None or ny is None:
            return 0.0
        return self.sim.score_numbers(nx, ny)

    def scores(self, caches, pairs, n: int) -> np.ndarray:
        values = caches[1]
        if self.from_numbers is None:
            return np.fromiter(
                (self.score_pair(caches, pair) for pair in pairs),
                dtype=np.float64,
                count=n,
            )
        numbers_x = np.zeros(n, dtype=np.float64)
        numbers_y = np.zeros(n, dtype=np.float64)
        unparsed: List[int] = []  # rows that score 0.0 before the formula
        key_a, key_b = self.key_a, self.key_b
        attr_a, attr_b = self.attr_a, self.attr_b
        derive = self._derive
        for row, pair in enumerate(pairs):
            nx = values.value(key_a, "a", pair.record_a, attr_a, derive)
            ny = values.value(key_b, "b", pair.record_b, attr_b, derive)
            if nx is None or ny is None:
                unparsed.append(row)
                continue
            numbers_x[row] = nx
            numbers_y[row] = ny
        column = np.asarray(
            self.from_numbers(numbers_x, numbers_y), dtype=np.float64
        )
        for row in unparsed:
            column[row] = 0.0
        return column

    def bound_value(self, caches, pair) -> Optional[float]:
        return None


class _VectorPlan:
    """Hot-path handles for one corpus-vector (TF-IDF family) feature.

    The cached derived form is the ``(tokenized_to_nothing, weighted
    vector)`` pair — valid only against the corpus it was weighted by, so
    the bucket kind includes the corpus identity and :meth:`stale`
    invalidates the plan when ``bind_corpus`` swaps the corpus.  The plan
    holds a strong reference to the corpus so the ``id()`` in the bucket
    key cannot be recycled while the plan is alive.
    """

    __slots__ = ("sim", "corpus", "attr_a", "attr_b", "key_a", "key_b", "has_bound")

    def __init__(self, feature, values: DerivedValueCache):
        sim = feature.sim
        self.sim = sim
        self.corpus = sim.corpus
        self.attr_a = feature.attr_a
        self.attr_b = feature.attr_b
        kind = ("tfidf", sim.tokenizer.cache_key(), id(sim.corpus))
        label = f"tfidf:{sim.tokenizer.name}"
        self.key_a = values.bucket(feature.attr_a, kind, label)
        self.key_b = values.bucket(feature.attr_b, kind, label)
        self.has_bound = False

    def stale(self) -> bool:
        return self.sim.corpus is not self.corpus

    def _derive(self, raw):
        if raw is None:
            return None
        return self.sim.weight_vector(coerce(raw))

    def score_pair(self, caches, pair) -> float:
        values = caches[1]
        weighted_a = values.value(
            self.key_a, "a", pair.record_a, self.attr_a, self._derive
        )
        weighted_b = values.value(
            self.key_b, "b", pair.record_b, self.attr_b, self._derive
        )
        if weighted_a is None or weighted_b is None:
            return 0.0
        empty_a, vector_a = weighted_a
        empty_b, vector_b = weighted_b
        return self.sim.score_vectors(empty_a, vector_a, empty_b, vector_b)

    def scores(self, caches, pairs, n: int) -> np.ndarray:
        # Scoring is inherently pair-wise Python; the win is the cached
        # per-record weighting (tokenize + idf + normalize once).
        return np.fromiter(
            (self.score_pair(caches, pair) for pair in pairs),
            dtype=np.float64,
            count=n,
        )

    def bound_value(self, caches, pair) -> Optional[float]:
        return None


class FeatureKernels:
    """Record-cached feature computation with optional bound skipping.

    One instance per matching scope (a :class:`~repro.core.session.DebugSession`,
    a parallel worker shard, a streaming session).  ``use_bounds`` gates
    :meth:`try_bound` only; caching and batched computation are always on
    because they are pure speedups with bit-identical outputs, whereas a
    bound decision changes *which* features get computed and memoized.
    """

    def __init__(self, cache: Optional[TokenCache] = None, use_bounds: bool = False):
        self.cache = cache if cache is not None else TokenCache()
        self.values = DerivedValueCache()
        self.use_bounds = use_bounds
        #: predicate pid -> number of evaluations decided from bounds alone
        self.bound_skips: Dict[str, int] = {}
        self._plans: Dict[str, object] = {}
        #: feature name -> human-readable reason the kernel path declined it
        self._unsupported: Dict[str, str] = {}
        self._unsupported_counted: set = set()
        self._unsupported_drained: set = set()
        self._reported = {"hits": 0, "misses": 0, "skips": 0}

    @property
    def _caches(self) -> tuple:
        return (self.cache, self.values)

    # ---------------------------------------------------------- eligibility

    def supports(self, feature) -> bool:
        """True when ``feature`` can run through the cached kernel path."""
        return self._plan(feature) is not None

    def has_bound(self, feature) -> bool:
        """True when the feature's measure exposes a cheap upper bound."""
        plan = self._plan(feature)
        return plan is not None and plan.has_bound

    def support_reason(self, feature) -> Optional[str]:
        """Why ``feature`` is not kernel-supported, or None if it is."""
        if self._plan(feature) is not None:
            return None
        return self._unsupported[feature.name]

    def _classify(self, feature) -> Tuple[Optional[object], Optional[str]]:
        """(plan, None) for a supported feature, (None, reason) otherwise."""
        sim = feature.sim
        if isinstance(sim, TokenSetSimilarity):
            # A subclass overriding compare/score_sets has forked the
            # scoring path; routing it through cached sets could change
            # its output.
            if type(sim).compare is not TokenSetSimilarity.compare:
                return None, f"{type(sim).__name__} overrides TokenSetSimilarity.compare"
            if type(sim).score_sets is not TokenSetSimilarity.score_sets:
                return None, f"{type(sim).__name__} overrides TokenSetSimilarity.score_sets"
            return _TokenPlan(feature, self.cache), None
        if isinstance(sim, NormalizedStringSimilarity):
            if type(sim).compare is not NormalizedStringSimilarity.compare:
                return None, (
                    f"{type(sim).__name__} overrides NormalizedStringSimilarity.compare"
                )
            return _StringPlan(feature, self.values), None
        if isinstance(sim, NumericSimilarity):
            if type(sim).compare is not NumericSimilarity.compare:
                return None, f"{type(sim).__name__} overrides NumericSimilarity.compare"
            return _NumericPlan(feature, self.values), None
        if isinstance(sim, CorpusVectorSimilarity):
            if type(sim).compare is not CorpusVectorSimilarity.compare:
                return None, (
                    f"{type(sim).__name__} overrides CorpusVectorSimilarity.compare"
                )
            if type(sim).score_vectors is not CorpusVectorSimilarity.score_vectors:
                return None, (
                    f"{type(sim).__name__} overrides CorpusVectorSimilarity.score_vectors"
                )
            return _VectorPlan(feature, self.values), None
        return None, f"{type(sim).__name__} has no kernel family (per-pair scalar only)"

    def _plan(self, feature):
        plan = self._plans.get(feature.name, False)
        if plan is not False and (plan is None or not plan.stale()):
            return plan
        plan, reason = self._classify(feature)
        self._plans[feature.name] = plan
        if reason is not None:
            self._unsupported[feature.name] = reason
        return plan

    def drain_unsupported(self) -> List[Tuple[str, str]]:
        """(feature name, reason) pairs not yet drained — one-shot, for
        trace facts; each unsupported feature is reported exactly once."""
        fresh = [
            (name, reason)
            for name, reason in sorted(self._unsupported.items())
            if name not in self._unsupported_drained
        ]
        self._unsupported_drained.update(name for name, _ in fresh)
        return fresh

    # -------------------------------------------------------------- compute

    def compute(self, feature, pair) -> float:
        """``feature.compute(pair)`` through the record caches."""
        plan = self._plan(feature)
        if plan is None:
            return feature.compute(pair.record_a, pair.record_b)
        return plan.score_pair(self._caches, pair)

    def compute_column(self, feature, candidates) -> np.ndarray:
        """The feature's score for every pair, as one float64 column."""
        n = len(candidates)
        plan = self._plan(feature)
        if plan is None:
            return np.fromiter(
                (
                    feature.compute(pair.record_a, pair.record_b)
                    for pair in candidates
                ),
                dtype=np.float64,
                count=n,
            )
        return plan.scores(self._caches, iter(candidates), n)

    def compute_rows(self, feature, candidates, rows) -> np.ndarray:
        """The feature's score for the given candidate rows, as float64.

        The row-subset counterpart of :meth:`compute_column` — the same
        gathering loop and the same vectorized formula, so values and
        record-cache traffic are identical to calling :meth:`compute` per
        pair.
        """
        n = len(rows)
        plan = self._plan(feature)
        if plan is None:
            return np.fromiter(
                (
                    feature.compute(
                        candidates[int(row)].record_a,
                        candidates[int(row)].record_b,
                    )
                    for row in rows
                ),
                dtype=np.float64,
                count=n,
            )
        return plan.scores(
            self._caches, (candidates[int(row)] for row in rows), n
        )

    # --------------------------------------------------------- invalidation

    def invalidate_records(self, side: str, record_ids) -> int:
        """Evict cached derived values for ``record_ids`` on ``side``.

        Streaming ingest calls this for every record a delta batch touched;
        the next access re-derives the record's current value.  Returns
        the number of evicted entries across both caches.
        """
        ids = list(record_ids)
        return self.cache.invalidate_records(side, ids) + (
            self.values.invalidate_records(side, ids)
        )

    # --------------------------------------------------------------- bounds

    def bound_decision(self, predicate, pair) -> Optional[bool]:
        """The predicate's outcome if cheap statistics decide it, else None.

        Pure query — no counters.  See :func:`_decide` for soundness.
        """
        plan = self._plan(predicate.feature)
        if plan is None or not plan.has_bound:
            return None
        bound = plan.bound_value(self._caches, pair)
        if bound is None:
            return None
        return _decide(bound, predicate.op, predicate.threshold)

    def try_bound(self, predicate, pair) -> Optional[bool]:
        """Like :meth:`bound_decision`, but counts decided skips."""
        decided = self.bound_decision(predicate, pair)
        if decided is not None:
            pid = predicate.pid
            self.bound_skips[pid] = self.bound_skips.get(pid, 0) + 1
        return decided

    def bound_rows(self, predicate, candidates, rows) -> np.ndarray:
        """Per-row bound decisions as int8: 1 true, 0 false, -1 undecided.

        The batched counterpart of :meth:`try_bound` — same per-pair
        decision logic and record-cache traffic, with decided rows counted
        into :attr:`bound_skips` in one addition.
        """
        n = len(rows)
        out = np.full(n, -1, dtype=np.int8)
        plan = self._plan(predicate.feature)
        if plan is None or not plan.has_bound:
            return out
        caches = self._caches
        bound_value = plan.bound_value
        op = predicate.op
        threshold = predicate.threshold
        decided_count = 0
        for position, row in enumerate(rows):
            bound = bound_value(caches, candidates[int(row)])
            if bound is None:
                continue
            decision = _decide(bound, op, threshold)
            if decision is not None:
                out[position] = 1 if decision else 0
                decided_count += 1
        if decided_count:
            pid = predicate.pid
            self.bound_skips[pid] = self.bound_skips.get(pid, 0) + decided_count
        return out

    # -------------------------------------------------------------- metrics

    @property
    def total_bound_skips(self) -> int:
        return sum(self.bound_skips.values())

    def report_metrics(self, registry) -> None:
        """Fold cache/bound/coverage counters into a metrics registry.

        Totals land as counters (``cache.hit``, ``cache.miss``,
        ``bound.skip``) incremented by the delta since the last report —
        token and derived-value caches combined; per-column sizes and hit
        counts land as gauges so the workbench can show the breakdown.
        Each kernel-unsupported feature increments
        ``engine.kernel_unsupported`` exactly once per kernels instance.
        """
        hits = self.cache.total_hits + self.values.total_hits
        misses = self.cache.total_misses + self.values.total_misses
        skips = self.total_bound_skips
        reported = self._reported
        if hits - reported["hits"]:
            registry.counter("cache.hit").inc(hits - reported["hits"])
        if misses - reported["misses"]:
            registry.counter("cache.miss").inc(misses - reported["misses"])
        if skips - reported["skips"]:
            registry.counter("bound.skip").inc(skips - reported["skips"])
        reported.update(hits=hits, misses=misses, skips=skips)
        fresh_unsupported = set(self._unsupported) - self._unsupported_counted
        if fresh_unsupported:
            registry.counter("engine.kernel_unsupported").inc(
                len(fresh_unsupported)
            )
            self._unsupported_counted |= fresh_unsupported
        for row in self.cache.stats() + self.values.stats():
            label = row["label"]
            registry.gauge(f"cache.entries.{label}").set(row["entries"])
            registry.gauge(f"cache.hits.{label}").set(row["hits"])
            registry.gauge(f"cache.misses.{label}").set(row["misses"])
