"""FeatureKernels: cached, batched, bound-aware feature computation.

This is the façade the matchers talk to.  It owns one
:class:`~repro.kernels.cache.TokenCache` and exposes three operations:

* :meth:`FeatureKernels.compute` — per-pair feature value through the
  token cache.  Bit-identical to ``Feature.compute``: raw ``None`` on
  either side scores 0.0 (mirroring ``SimilarityFunction.__call__``),
  otherwise the cached token sets feed the measure's ``score_sets``,
  the exact same code the uncached path runs.
* :meth:`FeatureKernels.compute_column` — a whole score column for a
  candidate list in one pass: a single Python loop gathers intersection
  and size counts, then the measure's vectorized ``from_counts`` produces
  the column.  ``from_counts`` replicates the scalar arithmetic
  operation-for-operation on int64/float64, so the column equals the
  per-pair loop bit-for-bit (integer counts are exact in float64 and
  division/sqrt are correctly rounded).
* :meth:`FeatureKernels.try_bound` — decide a threshold predicate from
  set sizes alone.  The measure's ``upper_bound`` is its score formula
  evaluated at the maximum possible intersection with the same
  floating-point shape, so ``score <= bound`` holds for the *computed*
  values too; a decision is only returned when it is therefore provably
  what the full evaluation would produce.

Only measures deriving from
:class:`~repro.similarity.token_based.TokenSetSimilarity` that keep the
base-class ``compare``/``score_sets`` are eligible; everything else
(Monge-Elkan, the TF-IDF family, bag measures, character measures) falls
through to the seed per-pair path untouched.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..similarity.token_based import TokenSetSimilarity
from .cache import TokenCache


class _Plan:
    """Resolved hot-path handles for one supported feature."""

    __slots__ = (
        "sim",
        "tokenizer",
        "attr_a",
        "attr_b",
        "key_a",
        "key_b",
        "from_counts",
        "has_bound",
    )

    def __init__(self, feature, cache: TokenCache):
        sim = feature.sim
        self.sim = sim
        self.tokenizer = sim.tokenizer
        self.attr_a = feature.attr_a
        self.attr_b = feature.attr_b
        self.key_a = cache.bucket(feature.attr_a, sim.tokenizer)
        self.key_b = cache.bucket(feature.attr_b, sim.tokenizer)
        self.from_counts = sim.from_counts
        self.has_bound = type(sim).upper_bound is not TokenSetSimilarity.upper_bound


class FeatureKernels:
    """Token-cached feature computation with optional bound skipping.

    One instance per matching scope (a :class:`~repro.core.session.DebugSession`,
    a parallel worker shard, a streaming session).  ``use_bounds`` gates
    :meth:`try_bound` only; caching and batched computation are always on
    because they are pure speedups with bit-identical outputs, whereas a
    bound decision changes *which* features get computed and memoized.
    """

    def __init__(self, cache: Optional[TokenCache] = None, use_bounds: bool = False):
        self.cache = cache if cache is not None else TokenCache()
        self.use_bounds = use_bounds
        #: predicate pid -> number of evaluations decided from bounds alone
        self.bound_skips: Dict[str, int] = {}
        self._plans: Dict[str, Optional[_Plan]] = {}
        self._reported = {"hits": 0, "misses": 0, "skips": 0}

    # ---------------------------------------------------------- eligibility

    def supports(self, feature) -> bool:
        """True when ``feature`` can run through the cached kernel path."""
        return self._plan(feature) is not None

    def has_bound(self, feature) -> bool:
        """True when the feature's measure exposes a size-only upper bound."""
        plan = self._plan(feature)
        return plan is not None and plan.has_bound

    def _make_plan(self, feature) -> Optional[_Plan]:
        sim = feature.sim
        if not isinstance(sim, TokenSetSimilarity):
            return None
        # A subclass overriding compare/score_sets has forked the scoring
        # path; routing it through cached sets could change its output.
        if type(sim).compare is not TokenSetSimilarity.compare:
            return None
        if type(sim).score_sets is not TokenSetSimilarity.score_sets:
            return None
        return _Plan(feature, self.cache)

    def _plan(self, feature) -> Optional[_Plan]:
        plan = self._plans.get(feature.name, False)
        if plan is False:
            plan = self._make_plan(feature)
            self._plans[feature.name] = plan
        return plan

    # -------------------------------------------------------------- compute

    def compute(self, feature, pair) -> float:
        """``feature.compute(pair)`` through the token cache."""
        plan = self._plan(feature)
        if plan is None:
            return feature.compute(pair.record_a, pair.record_b)
        record_a, record_b = pair.record_a, pair.record_b
        value_a = record_a.get(plan.attr_a)
        value_b = record_b.get(plan.attr_b)
        if value_a is None or value_b is None:
            return 0.0
        cache = self.cache
        set_a = cache.token_set(plan.key_a, "a", record_a, plan.attr_a, plan.tokenizer)
        set_b = cache.token_set(plan.key_b, "b", record_b, plan.attr_b, plan.tokenizer)
        return plan.sim.score_sets(set_a, set_b)

    def compute_column(self, feature, candidates) -> np.ndarray:
        """The feature's score for every pair, as one float64 column.

        Falls back to a per-pair loop (still token-cached) when the
        measure has no vectorized ``from_counts``.
        """
        n = len(candidates)
        plan = self._plan(feature)
        if plan is None or plan.from_counts is None:
            return np.fromiter(
                (self.compute(feature, pair) for pair in candidates),
                dtype=np.float64,
                count=n,
            )
        intersection = np.empty(n, dtype=np.int64)
        size_x = np.ones(n, dtype=np.int64)
        size_y = np.ones(n, dtype=np.int64)
        special = []  # (row, score) for None/empty rows the formula skips
        cache = self.cache
        key_a, key_b = plan.key_a, plan.key_b
        attr_a, attr_b = plan.attr_a, plan.attr_b
        tokenizer = plan.tokenizer
        for row, pair in enumerate(candidates):
            record_a, record_b = pair.record_a, pair.record_b
            if record_a.get(attr_a) is None or record_b.get(attr_b) is None:
                intersection[row] = 0
                special.append((row, 0.0))
                continue
            set_a = cache.token_set(key_a, "a", record_a, attr_a, tokenizer)
            set_b = cache.token_set(key_b, "b", record_b, attr_b, tokenizer)
            len_a, len_b = len(set_a), len(set_b)
            if len_a == 0 or len_b == 0:
                intersection[row] = 0
                special.append((row, 1.0 if len_a == len_b else 0.0))
                continue
            intersection[row] = len(set_a & set_b)
            size_x[row] = len_a
            size_y[row] = len_b
        column = np.asarray(
            plan.from_counts(intersection, size_x, size_y), dtype=np.float64
        )
        for row, score in special:
            column[row] = score
        return column

    def compute_rows(self, feature, candidates, rows) -> np.ndarray:
        """The feature's score for the given candidate rows, as float64.

        The row-subset counterpart of :meth:`compute_column` — the same
        count-gathering loop and the same vectorized ``from_counts``
        formula, so values and token-cache traffic are identical to
        calling :meth:`compute` per pair (which is the fallback when the
        measure has no ``from_counts``).
        """
        n = len(rows)
        plan = self._plan(feature)
        if plan is None or plan.from_counts is None:
            return np.fromiter(
                (self.compute(feature, candidates[int(row)]) for row in rows),
                dtype=np.float64,
                count=n,
            )
        intersection = np.empty(n, dtype=np.int64)
        size_x = np.ones(n, dtype=np.int64)
        size_y = np.ones(n, dtype=np.int64)
        special = []  # (position, score) for None/empty rows the formula skips
        cache = self.cache
        key_a, key_b = plan.key_a, plan.key_b
        attr_a, attr_b = plan.attr_a, plan.attr_b
        tokenizer = plan.tokenizer
        for position, row in enumerate(rows):
            pair = candidates[int(row)]
            record_a, record_b = pair.record_a, pair.record_b
            if record_a.get(attr_a) is None or record_b.get(attr_b) is None:
                intersection[position] = 0
                special.append((position, 0.0))
                continue
            set_a = cache.token_set(key_a, "a", record_a, attr_a, tokenizer)
            set_b = cache.token_set(key_b, "b", record_b, attr_b, tokenizer)
            len_a, len_b = len(set_a), len(set_b)
            if len_a == 0 or len_b == 0:
                intersection[position] = 0
                special.append((position, 1.0 if len_a == len_b else 0.0))
                continue
            intersection[position] = len(set_a & set_b)
            size_x[position] = len_a
            size_y[position] = len_b
        column = np.asarray(
            plan.from_counts(intersection, size_x, size_y), dtype=np.float64
        )
        for position, score in special:
            column[position] = score
        return column

    # --------------------------------------------------------- invalidation

    def invalidate_records(self, side: str, record_ids) -> int:
        """Evict cached token sets for ``record_ids`` on ``side`` ("a"/"b").

        Streaming ingest calls this for every record a delta batch touched;
        the next access re-tokenizes the record's current value.  Returns
        the number of evicted entries.
        """
        return self.cache.invalidate_records(side, record_ids)

    # --------------------------------------------------------------- bounds

    def bound_decision(self, predicate, pair) -> Optional[bool]:
        """The predicate's outcome if sizes alone decide it, else None.

        Pure query — no counters.  Sound by construction: the upper bound
        dominates every computed score for the observed sizes, so
        ``bound < t`` proves ``score >= t`` is False (and ``bound <= t``
        proves ``score <= t`` is True).
        """
        feature = predicate.feature
        plan = self._plan(feature)
        if plan is None or not plan.has_bound:
            return None
        record_a, record_b = pair.record_a, pair.record_b
        if record_a.get(plan.attr_a) is None or record_b.get(plan.attr_b) is None:
            return None  # full path is already trivially cheap (0.0)
        cache = self.cache
        set_a = cache.token_set(plan.key_a, "a", record_a, plan.attr_a, plan.tokenizer)
        set_b = cache.token_set(plan.key_b, "b", record_b, plan.attr_b, plan.tokenizer)
        if not set_a or not set_b:
            return None
        bound = plan.sim.upper_bound(len(set_a), len(set_b))
        if bound is None:
            return None
        op = predicate.op
        threshold = predicate.threshold
        if op == ">=":
            return False if bound < threshold else None
        if op == ">":
            return False if bound <= threshold else None
        if op == "==":
            return False if bound < threshold else None
        if op == "<=":
            return True if bound <= threshold else None
        if op == "<":
            return True if bound < threshold else None
        return None

    def try_bound(self, predicate, pair) -> Optional[bool]:
        """Like :meth:`bound_decision`, but counts decided skips."""
        decided = self.bound_decision(predicate, pair)
        if decided is not None:
            pid = predicate.pid
            self.bound_skips[pid] = self.bound_skips.get(pid, 0) + 1
        return decided

    def bound_rows(self, predicate, candidates, rows) -> np.ndarray:
        """Per-row bound decisions as int8: 1 true, 0 false, -1 undecided.

        The batched counterpart of :meth:`try_bound` — same per-pair
        decision logic and token-cache traffic, with decided rows counted
        into :attr:`bound_skips` in one addition.
        """
        n = len(rows)
        out = np.full(n, -1, dtype=np.int8)
        plan = self._plan(predicate.feature)
        if plan is None or not plan.has_bound:
            return out
        cache = self.cache
        key_a, key_b = plan.key_a, plan.key_b
        attr_a, attr_b = plan.attr_a, plan.attr_b
        tokenizer = plan.tokenizer
        upper_bound = plan.sim.upper_bound
        op = predicate.op
        threshold = predicate.threshold
        decided_count = 0
        for position, row in enumerate(rows):
            pair = candidates[int(row)]
            record_a, record_b = pair.record_a, pair.record_b
            if record_a.get(attr_a) is None or record_b.get(attr_b) is None:
                continue  # full path is already trivially cheap (0.0)
            set_a = cache.token_set(key_a, "a", record_a, attr_a, tokenizer)
            set_b = cache.token_set(key_b, "b", record_b, attr_b, tokenizer)
            if not set_a or not set_b:
                continue
            bound = upper_bound(len(set_a), len(set_b))
            if bound is None:
                continue
            decision = None
            if op == ">=":
                decision = False if bound < threshold else None
            elif op == ">":
                decision = False if bound <= threshold else None
            elif op == "==":
                decision = False if bound < threshold else None
            elif op == "<=":
                decision = True if bound <= threshold else None
            elif op == "<":
                decision = True if bound < threshold else None
            if decision is not None:
                out[position] = 1 if decision else 0
                decided_count += 1
        if decided_count:
            pid = predicate.pid
            self.bound_skips[pid] = self.bound_skips.get(pid, 0) + decided_count
        return out

    # -------------------------------------------------------------- metrics

    @property
    def total_bound_skips(self) -> int:
        return sum(self.bound_skips.values())

    def report_metrics(self, registry) -> None:
        """Fold cache/bound counters into a metrics registry.

        Totals land as counters (``cache.hit``, ``cache.miss``,
        ``bound.skip``) incremented by the delta since the last report;
        per-column sizes and hit counts land as gauges so the workbench
        can show the per-(attribute, tokenizer) breakdown.
        """
        cache = self.cache
        hits, misses = cache.total_hits, cache.total_misses
        skips = self.total_bound_skips
        reported = self._reported
        if hits - reported["hits"]:
            registry.counter("cache.hit").inc(hits - reported["hits"])
        if misses - reported["misses"]:
            registry.counter("cache.miss").inc(misses - reported["misses"])
        if skips - reported["skips"]:
            registry.counter("bound.skip").inc(skips - reported["skips"])
        reported.update(hits=hits, misses=misses, skips=skips)
        for row in cache.stats():
            label = row["label"]
            registry.gauge(f"cache.entries.{label}").set(row["entries"])
            registry.gauge(f"cache.hits.{label}").set(row["hits"])
            registry.gauge(f"cache.misses.{label}").set(row["misses"])
