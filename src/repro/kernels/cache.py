"""Per-record derived-value caches keyed by (attribute, derivation).

A record that survives blocking typically appears in many candidate
pairs, and a matching function typically applies several features to the
same attribute.  The seed path re-derived the comparison form (token set,
normalized string, parsed number, TF-IDF vector) on every (pair, feature)
touch; these caches derive each record's value once per (attribute,
derivation behaviour) and hand out the result.

Keys
----
The outer key is ``(attribute, <behavioural derivation key>)`` — for
:class:`TokenCache` that is ``tokenizer.cache_key()``, so ``Jaccard(ws)``
and ``Dice(ws)`` features over the same attribute share one bucket while
``qg3`` padded and unpadded do not; for :class:`ValueCache` it is the
*kind* tuple the kernel plan supplies (e.g. ``("norm", "lower")`` or
``("number",)``).  The inner key is ``(side, record_id)``: record ids are
unique per table side, and the streaming layer invalidates ids it touches
(a ``Table.replace`` swaps the record object under the same id, so
identity of the id alone is not enough across deltas).
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, List, Tuple

#: Sentinel distinguishing "not cached" from a cached ``None`` (e.g. a
#: numeric value that failed to parse is cached as ``None``).
_MISS = object()


class TokenCache:
    """Token sets per (attribute, tokenizer) per record, with counters."""

    __slots__ = ("_buckets", "_labels", "hits", "misses")

    def __init__(self):
        #: outer key -> {(side, record_id): frozenset of tokens}
        self._buckets: Dict[tuple, Dict[Tuple[str, str], FrozenSet[str]]] = {}
        #: outer key -> human-readable label, e.g. ``"title:ws"``
        self._labels: Dict[tuple, str] = {}
        self.hits: Dict[tuple, int] = {}
        self.misses: Dict[tuple, int] = {}

    def bucket(self, attribute: str, tokenizer) -> tuple:
        """Return (and create if needed) the bucket key for a column.

        Callers on the hot path keep the returned key and go through
        :meth:`token_set`; creating the bucket eagerly here keeps the
        per-pair path free of label/counter initialization branches.
        """
        key = (attribute, tokenizer.cache_key())
        if key not in self._buckets:
            self._buckets[key] = {}
            self._labels[key] = f"{attribute}:{tokenizer.name}"
            self.hits[key] = 0
            self.misses[key] = 0
        return key

    def token_set(
        self, key: tuple, side: str, record, attribute: str, tokenizer
    ) -> FrozenSet[str]:
        """The token set of ``record.get(attribute)``, cached.

        ``key`` must come from :meth:`bucket` for the same
        (attribute, tokenizer).
        """
        bucket = self._buckets[key]
        entry = (side, record.record_id)
        tokens = bucket.get(entry)
        if tokens is None:
            self.misses[key] += 1
            tokens = tokenizer.tokenize_set(record.get(attribute))
            bucket[entry] = tokens
        else:
            self.hits[key] += 1
        return tokens

    # ------------------------------------------------------- invalidation

    def invalidate_records(self, side: str, record_ids: Iterable[str]) -> int:
        """Drop cached token sets for the given records on one side.

        Called by the streaming layer for every record an ingested delta
        batch touches (insert/update/delete alike — an id may be deleted
        and re-inserted with different values within one batch).  Returns
        the number of evicted entries.
        """
        ids = set(record_ids)
        if not ids:
            return 0
        evicted = 0
        for bucket in self._buckets.values():
            for record_id in ids:
                if bucket.pop((side, record_id), None) is not None:
                    evicted += 1
        return evicted

    def clear(self) -> None:
        for bucket in self._buckets.values():
            bucket.clear()

    # ------------------------------------------------------- introspection

    def stats(self) -> List[dict]:
        """Per-(attribute, tokenizer) sizes and hit/miss counts."""
        rows = []
        for key, bucket in sorted(
            self._buckets.items(), key=lambda item: self._labels[item[0]]
        ):
            hits = self.hits[key]
            misses = self.misses[key]
            total = hits + misses
            rows.append(
                {
                    "label": self._labels[key],
                    "entries": len(bucket),
                    "hits": hits,
                    "misses": misses,
                    "hit_rate": hits / total if total else 0.0,
                }
            )
        return rows

    @property
    def total_hits(self) -> int:
        return sum(self.hits.values())

    @property
    def total_misses(self) -> int:
        return sum(self.misses.values())

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())


class DerivedValueCache:
    """Arbitrary derived values per (attribute, kind) per record.

    The non-token counterpart of :class:`TokenCache`: normalized strings
    for the exact/edit-distance kernel families, parsed floats for the
    numeric family, weighted TF-IDF vectors for the corpus family.  (Not
    to be confused with :class:`repro.core.memo.ValueCache`, the
    *pair-level* value store of Algorithm 2 — this cache is per record.)
    The *kind* half of the outer key is any hashable tuple identifying the
    derivation behaviour; callers sharing a kind must derive identically.
    Cached values may legitimately be ``None`` (a raw ``None`` attribute,
    a string no number could be parsed from), which is why lookups use a
    private miss sentinel rather than ``dict.get``'s default.
    """

    __slots__ = ("_buckets", "_labels", "hits", "misses")

    def __init__(self):
        #: (attribute, kind) -> {(side, record_id): derived value}
        self._buckets: Dict[tuple, Dict[Tuple[str, str], object]] = {}
        #: outer key -> human-readable label, e.g. ``"title:lower"``
        self._labels: Dict[tuple, str] = {}
        self.hits: Dict[tuple, int] = {}
        self.misses: Dict[tuple, int] = {}

    def bucket(self, attribute: str, kind: tuple, label: str) -> tuple:
        """Return (and create if needed) the bucket key for a column.

        ``label`` is the human-readable suffix used in stats rows
        (``"{attribute}:{label}"``); it does not participate in identity.
        """
        key = (attribute, kind)
        if key not in self._buckets:
            self._buckets[key] = {}
            self._labels[key] = f"{attribute}:{label}"
            self.hits[key] = 0
            self.misses[key] = 0
        return key

    def value(
        self,
        key: tuple,
        side: str,
        record,
        attribute: str,
        derive: Callable[[object], object],
    ) -> object:
        """The derived form of ``record.get(attribute)``, cached.

        ``key`` must come from :meth:`bucket`; ``derive`` receives the raw
        attribute value (possibly ``None``) on a miss.
        """
        bucket = self._buckets[key]
        entry = (side, record.record_id)
        value = bucket.get(entry, _MISS)
        if value is _MISS:
            self.misses[key] += 1
            value = derive(record.get(attribute))
            bucket[entry] = value
        else:
            self.hits[key] += 1
        return value

    # ------------------------------------------------------- invalidation

    def invalidate_records(self, side: str, record_ids: Iterable[str]) -> int:
        """Drop cached values for the given records on one side."""
        ids = set(record_ids)
        if not ids:
            return 0
        evicted = 0
        for bucket in self._buckets.values():
            for record_id in ids:
                # Cached values may be None; pop against the miss sentinel
                # so those evictions are counted too.
                if bucket.pop((side, record_id), _MISS) is not _MISS:
                    evicted += 1
        return evicted

    def clear(self) -> None:
        for bucket in self._buckets.values():
            bucket.clear()

    # ------------------------------------------------------- introspection

    def stats(self) -> List[dict]:
        """Per-(attribute, kind) sizes and hit/miss counts."""
        rows = []
        for key, bucket in sorted(
            self._buckets.items(), key=lambda item: self._labels[item[0]]
        ):
            hits = self.hits[key]
            misses = self.misses[key]
            total = hits + misses
            rows.append(
                {
                    "label": self._labels[key],
                    "entries": len(bucket),
                    "hits": hits,
                    "misses": misses,
                    "hit_rate": hits / total if total else 0.0,
                }
            )
        return rows

    @property
    def total_hits(self) -> int:
        return sum(self.hits.values())

    @property
    def total_misses(self) -> int:
        return sum(self.misses.values())

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())
