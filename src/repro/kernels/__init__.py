"""Feature-kernel layer: token caches, batched kernels, cheap bounds.

The paper's cost model (Section 5) treats feature computation as the
dominant cost of matching, and the seed implementation made it worse than
it needs to be: :class:`~repro.similarity.token_based.TokenSetSimilarity`
re-tokenized both attribute values on every pair, so a record appearing
in *k* candidate pairs was tokenized *k* times per feature.  This layer
applies the standard set-similarity-join remedies (per-record signatures
and size bounds, as in PPJoin-style filtering) without changing a single
matching decision:

* :class:`TokenCache` — per-(attribute, tokenizer) record token sets,
  computed once per record and reused across every pair, feature and rule
  that touches the same attribute.
* :class:`DerivedValueCache` — the same idea for non-token derived forms:
  normalized strings (exact/edit-distance families), parsed numbers, and
  per-record TF-IDF vectors.
* :class:`FeatureKernels` — the façade the matchers talk to: per-pair
  cached computation (:meth:`FeatureKernels.compute`), whole-column
  batched computation for the precompute strategies
  (:meth:`FeatureKernels.compute_column`), and threshold short-circuiting
  from size bounds (:meth:`FeatureKernels.try_bound`).

Everything here is *bit-identical* to the seed per-pair path: cached
token sets feed the exact same ``score_sets`` code, batched kernels
replicate the scalar arithmetic operation-for-operation, and bounds only
decide a predicate when the decision is provably what the full
computation would return.  See ``docs/performance.md``.
"""

from .cache import DerivedValueCache, TokenCache
from .feature_kernels import FeatureKernels

__all__ = ["TokenCache", "DerivedValueCache", "FeatureKernels"]
