"""Wire protocol of the matching service: payload codecs and error model.

Everything crossing the HTTP boundary is JSON.  This module owns the
vocabulary: the error envelope every response uses, the blocker/table/
delta/change payload shapes, and the serializers that turn engine objects
(:class:`~repro.core.stats.MatchStats`, confusions, explanations) into
JSON-able dicts.  Both the server (:mod:`repro.service.handlers`) and the
client (:mod:`repro.service.client`) import from here, so the two ends
cannot drift apart silently.

Blocker specs
-------------
Blockers may close over lambdas, so they are never serialized directly;
a *spec* is a small JSON dict that :func:`build_blocker` turns into a
fresh instance::

    {"kind": "overlap", "attribute": "title", "min_overlap": 2,
     "stop_fraction": 0.15}

Specs are stored verbatim in session checkpoints
(:func:`repro.core.persistence.save_session`), which is how a restarted
server rebuilds each session's blocker before adopting its state.
"""

from __future__ import annotations

import re
import time
import uuid
from typing import Dict, List, Optional, Sequence

from ..blocking import (
    AttributeEquivalenceBlocker,
    BLOCKER_REGISTRY,
    Blocker,
    CartesianBlocker,
    OverlapBlocker,
    SortedNeighborhoodBlocker,
)
from ..core.changes import (
    AddRule,
    Change,
    RelaxPredicate,
    RemovePredicate,
    RemoveRule,
    TightenPredicate,
)
from ..core.parser import parse_rule
from ..core.persistence import stats_to_dict
from ..data.table import Record, Table
from ..errors import ReproError
from ..streaming.deltas import Delta, DeltaBatch

API_VERSION = 1

#: error code -> HTTP status the server answers with.
ERROR_STATUS: Dict[str, int] = {
    "bad_request": 400,
    "not_found": 404,
    "conflict": 409,
    "busy": 429,
    "timeout": 504,
    "shutting_down": 503,
    "internal": 500,
}


class ServiceError(ReproError):
    """A request failure with a protocol error code.

    ``code`` picks the HTTP status (:data:`ERROR_STATUS`); anything the
    engine raises that is not already a ``ServiceError`` is wrapped as
    ``bad_request`` (engine validation errors are the caller's fault) or
    ``internal`` (everything else) by the dispatch layer.
    """

    def __init__(self, code: str, message: str):
        if code not in ERROR_STATUS:
            raise ValueError(f"unknown service error code {code!r}")
        self.code = code
        super().__init__(message)

    @property
    def status(self) -> int:
        return ERROR_STATUS[self.code]


# ---------------------------------------------------------------------------
# Response envelopes
# ---------------------------------------------------------------------------


#: header a client may set to name its request; the server adopts it as
#: the envelope request id and the trace-context stamp for write actions.
REQUEST_ID_HEADER = "X-Repro-Request-Id"

_REQUEST_ID_PATTERN = re.compile(r"[A-Za-z0-9_-]{1,64}$")


def new_request_id() -> str:
    return uuid.uuid4().hex[:12]


def valid_request_id(candidate: str) -> bool:
    """Is ``candidate`` acceptable as a client-supplied request id?

    Constrained to 64 URL/label-safe characters so the id is safe to
    echo into envelopes, span attrs, and query strings unquoted.
    """
    return bool(
        isinstance(candidate, str) and _REQUEST_ID_PATTERN.match(candidate)
    )


def envelope_ok(result, request_id: str, started: float) -> dict:
    return {
        "ok": True,
        "api_version": API_VERSION,
        "request_id": request_id,
        "elapsed_ms": round((time.perf_counter() - started) * 1000, 3),
        "result": result,
    }


def envelope_error(error: ServiceError, request_id: str, started: float) -> dict:
    return {
        "ok": False,
        "api_version": API_VERSION,
        "request_id": request_id,
        "elapsed_ms": round((time.perf_counter() - started) * 1000, 3),
        "error": {"code": error.code, "message": str(error)},
    }


# ---------------------------------------------------------------------------
# Blocker specs
# ---------------------------------------------------------------------------


def build_blocker(spec: Optional[dict]) -> Blocker:
    """Construct a blocker from its JSON spec (see module docstring).

    Supported kinds: ``overlap`` (attribute, min_overlap, stop_fraction),
    ``attr_equivalence`` (attribute), ``cartesian``,
    ``sorted_neighborhood`` (attribute, window), and ``registry`` (name +
    attribute, resolved through
    :data:`repro.blocking.BLOCKER_REGISTRY`).
    """
    if not spec:
        raise ServiceError("bad_request", "a blocker spec is required")
    kind = spec.get("kind")
    try:
        if kind == "overlap":
            return OverlapBlocker(
                spec["attribute"],
                min_overlap=int(spec.get("min_overlap", 1)),
                stop_fraction=float(spec.get("stop_fraction") or 0.0),
            )
        if kind == "attr_equivalence":
            return AttributeEquivalenceBlocker(spec["attribute"])
        if kind == "cartesian":
            return CartesianBlocker()
        if kind == "sorted_neighborhood":
            return SortedNeighborhoodBlocker(
                spec["attribute"], window=int(spec.get("window", 3))
            )
        if kind == "registry":
            factory = BLOCKER_REGISTRY.get(spec["name"])
            if factory is None:
                raise ServiceError(
                    "bad_request",
                    f"no blocker {spec['name']!r} in the registry",
                )
            return factory(spec["attribute"])
    except ServiceError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        raise ServiceError(
            "bad_request", f"malformed blocker spec {spec!r}: {error}"
        ) from error
    raise ServiceError("bad_request", f"unknown blocker kind {kind!r}")


def default_blocker_spec(dataset_name: str) -> dict:
    """The spec matching :func:`repro.learning.workload.default_blocker`."""
    from ..learning.workload import BLOCKING_ATTRIBUTES, _BLOCKING_MIN_OVERLAP

    attribute = BLOCKING_ATTRIBUTES.get(dataset_name)
    if attribute is None:
        raise ServiceError(
            "bad_request", f"no default blocker for dataset {dataset_name!r}"
        )
    return {
        "kind": "overlap",
        "attribute": attribute,
        "min_overlap": _BLOCKING_MIN_OVERLAP.get(dataset_name, 1),
        "stop_fraction": 0.15,
    }


# ---------------------------------------------------------------------------
# Table / delta / change payloads
# ---------------------------------------------------------------------------


def table_from_payload(payload: dict, default_name: str) -> Table:
    """``{"name"?, "attributes": [...], "records": [{"id", "values"}...]}``"""
    try:
        return Table(
            payload.get("name", default_name),
            payload["attributes"],
            (
                Record(row["id"], row.get("values", {}))
                for row in payload.get("records", ())
            ),
        )
    except (KeyError, TypeError) as error:
        raise ServiceError(
            "bad_request", f"malformed table payload: {error}"
        ) from error


def deltas_from_payload(payload) -> DeltaBatch:
    """``[{"op", "side", "id", "values"?}, ...]`` → :class:`DeltaBatch`."""
    if not isinstance(payload, (list, tuple)):
        raise ServiceError("bad_request", "deltas must be a JSON array")
    deltas = []
    for position, entry in enumerate(payload):
        try:
            deltas.append(
                Delta(
                    entry["op"],
                    entry["side"],
                    entry["id"],
                    entry.get("values"),
                )
            )
        except (KeyError, TypeError) as error:
            raise ServiceError(
                "bad_request", f"malformed delta #{position + 1}: {error}"
            ) from error
    return DeltaBatch(deltas)


def change_from_payload(payload: dict, resolver=None) -> Change:
    """``{"kind": ..., ...}`` → a :class:`~repro.core.changes.Change`.

    Kinds: ``tighten``/``relax`` (rule, slot, threshold),
    ``drop_predicate`` (rule, slot), ``drop_rule`` (rule), ``add_rule``
    (rule_dsl).
    """
    if not isinstance(payload, dict):
        raise ServiceError("bad_request", "edit must be a JSON object")
    kind = payload.get("kind")
    try:
        if kind == "tighten":
            return TightenPredicate(
                payload["rule"], payload["slot"], float(payload["threshold"])
            )
        if kind == "relax":
            return RelaxPredicate(
                payload["rule"], payload["slot"], float(payload["threshold"])
            )
        if kind == "drop_predicate":
            return RemovePredicate(payload["rule"], payload["slot"])
        if kind == "drop_rule":
            return RemoveRule(payload["rule"])
        if kind == "add_rule":
            return AddRule(parse_rule(payload["rule_dsl"], resolver))
    except ServiceError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        raise ServiceError(
            "bad_request", f"malformed {kind!r} edit: {error}"
        ) from error
    raise ServiceError("bad_request", f"unknown edit kind {kind!r}")


# ---------------------------------------------------------------------------
# Engine-object serializers
# ---------------------------------------------------------------------------


def confusion_to_payload(confusion) -> dict:
    return {
        "true_positives": confusion.true_positives,
        "false_positives": confusion.false_positives,
        "false_negatives": confusion.false_negatives,
        "true_negatives": confusion.true_negatives,
        "precision": confusion.precision,
        "recall": confusion.recall,
        "f1": confusion.f1,
    }


def batch_result_to_payload(result) -> dict:
    return {
        "stats": stats_to_dict(result.stats),
        "gained": [list(pair) for pair in result.gained],
        "lost": [list(pair) for pair in result.lost],
        "affected": result.affected,
        "executed_parallel": result.executed_parallel,
        "match_count": result.match_count,
    }


def explanation_to_payload(explanation) -> dict:
    return {
        "pair": list(explanation.pair_id),
        "matched": explanation.matched,
        "rules": [
            {
                "rule": trace.rule_name,
                "matched": trace.matched,
                "predicates": [
                    {
                        "pid": predicate.pid,
                        "value": predicate.value,
                        "passed": predicate.passed,
                    }
                    for predicate in trace.predicates
                ],
            }
            for trace in explanation.rules
        ],
    }


def pairs_to_payload(pairs: Sequence) -> List[List[str]]:
    return [list(pair) for pair in pairs]


#: RefineConfig fields a service caller may set, with coercions.  Kept
#: explicit (not introspected) so the wire contract is visible in one place.
_REFINE_CONFIG_FIELDS = {
    "budget": int,
    "beam_width": int,
    "max_depth": int,
    "max_candidates_per_round": int,
    "max_per_slot": int,
    "risk_sample": int,
    "seed": int,
    "attribution_limit": int,
    "cost_strategy": str,
    "estimate_mode": str,
    "admit_fractions": lambda value: tuple(float(v) for v in value),
    "focus_rules": lambda value: tuple(str(v) for v in value),
}


def refine_config_from_payload(payload: Optional[dict]):
    """Build a :class:`repro.refine.RefineConfig` from request options."""
    from ..refine import RefineConfig

    payload = payload or {}
    kwargs = {}
    for key, coerce in _REFINE_CONFIG_FIELDS.items():
        if key in payload:
            try:
                kwargs[key] = coerce(payload[key])
            except (TypeError, ValueError) as exc:
                raise ServiceError(
                    "bad_request", f"bad refine option {key!r}: {exc}"
                )
    return RefineConfig(**kwargs)


def scored_candidate_to_payload(candidate) -> dict:
    """One frontier/baseline entry of a refinement report."""
    return {
        "edits": [change.describe() for change in candidate.edits],
        "precision": candidate.precision,
        "recall": candidate.recall,
        "f1": candidate.f1,
        "expected_cost": candidate.expected_cost,
        "confusion": confusion_to_payload(candidate.confusion),
        "per_edit": [
            {
                "change": outcome.change.describe(),
                "fixed": outcome.fixed,
                "broken": outcome.broken,
                "fixed_examples": pairs_to_payload(outcome.fixed_examples),
                "broken_examples": pairs_to_payload(outcome.broken_examples),
                "newly_matched": outcome.newly_matched,
                "newly_unmatched": outcome.newly_unmatched,
            }
            for outcome in candidate.outcomes
        ],
    }


def refinement_to_payload(report) -> dict:
    """JSON shape of a :class:`repro.refine.RefinementReport`."""
    return {
        "baseline": scored_candidate_to_payload(report.baseline),
        "frontier": [
            scored_candidate_to_payload(candidate)
            for candidate in report.frontier
        ],
        "best_index": (
            report.frontier.index(report.best) if report.frontier else None
        ),
        "improves_f1": report.improves_f1(),
        "candidates_generated": report.candidates_generated,
        "candidates_scored": report.candidates_scored,
        "incremental_evals": report.incremental_evals,
        "full_rematches": report.full_rematches,
        "rounds": report.rounds,
        "elapsed_seconds": report.elapsed_seconds,
    }
