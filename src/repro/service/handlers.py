"""Request handlers: one method per logical API operation.

Handlers are transport-free — they take parsed JSON payloads, run the
engine under the right :class:`~repro.service.registry.ManagedSession`
lock, and return JSON-able dicts.  :mod:`repro.service.app` maps HTTP
routes onto these methods; the tests can also call them directly, which
keeps the concurrency tests independent of socket plumbing.

Locking discipline
------------------
*Reads* (matches, metrics, stats, trace, observability, checkpoints) run
under the shared lock — arbitrarily many at once per session.  *Writes*
(ingest, rule edits) take the exclusive lock.  ``explain`` also takes the
exclusive lock even though it looks like a read: explanation back-fills
the memo for predicates matching never evaluated, which is a state
mutation.
"""

from __future__ import annotations

from typing import Optional

from ..core.parser import format_function
from ..core.persistence import stats_to_dict
from ..observability import Observability, detect_drift
from ..observability.export import (
    Exposition,
    add_registry_snapshot,
    add_request_telemetry,
)
from ..streaming.session import StreamingSession
from .protocol import (
    ServiceError,
    batch_result_to_payload,
    build_blocker,
    change_from_payload,
    confusion_to_payload,
    default_blocker_spec,
    deltas_from_payload,
    explanation_to_payload,
    pairs_to_payload,
    refine_config_from_payload,
    refinement_to_payload,
    table_from_payload,
)
from .registry import SessionRegistry


class ServiceHandlers:
    """The service's operation surface over one :class:`SessionRegistry`."""

    def __init__(
        self,
        registry: SessionRegistry,
        resolver=None,
        telemetry=None,
        slo_policy=None,
    ):
        self.registry = registry
        self.resolver = resolver
        #: optional RequestTelemetry the app records every response into.
        self.telemetry = telemetry
        #: optional SLOPolicy evaluated on health/scrape reads.
        self.slo_policy = slo_policy

    # ------------------------------------------------------------------
    # Service-level
    # ------------------------------------------------------------------

    def health(self) -> dict:
        out = {
            "status": "ok",
            "sessions": len(self.registry),
            "durable": self.registry.checkpoint_root is not None,
            "restore_failures": self.registry.restore_failures,
            "sessions_state": self.registry.sessions_state(),
        }
        if self.telemetry is not None:
            out["telemetry"] = self.telemetry.snapshot()
            if self.slo_policy is not None:
                slo = self.slo_policy.payload(self.telemetry)
                out["slo"] = slo
                if slo["breached"]:
                    out["status"] = "degraded"
        return out

    def scrape(self) -> str:
        """Prometheus text exposition for ``GET /metrics``.

        Three layers in one page: service HTTP telemetry (rolling
        windows), registry gauges (session count, restore failures,
        per-session dirty/pending/seq — the same numbers ``/health``
        reports), and every observable session's engine metrics snapshot
        labeled ``{session="name"}`` with values identical to its JSON
        ``GET /sessions/{name}/metrics`` snapshot.
        """
        exposition = Exposition()
        if self.telemetry is not None:
            add_request_telemetry(exposition, self.telemetry)
        exposition.add(
            "repro_sessions", len(self.registry), type="gauge"
        )
        exposition.add(
            "repro_registry_restore_failures",
            len(self.registry.restore_failures),
            type="gauge",
        )
        for state in self.registry.sessions_state():
            labels = {"session": state["name"]}
            exposition.add(
                "repro_session_dirty", 1.0 if state["dirty"] else 0.0,
                labels, type="gauge",
            )
            exposition.add(
                "repro_session_pending", state["pending"], labels, type="gauge"
            )
            exposition.add(
                "repro_session_seq", state["seq"], labels, type="gauge"
            )
        if self.slo_policy is not None and self.telemetry is not None:
            statuses = self.slo_policy.evaluate(self.telemetry)
            for status in statuses:
                labels = {"slo": status.slo.name}
                value = -1.0 if status.ok is None else (1.0 if status.ok else 0.0)
                exposition.add("repro_slo_ok", value, labels, type="gauge")
                if status.observed is not None:
                    exposition.add(
                        "repro_slo_observed", status.observed, labels,
                        type="gauge",
                    )
            exposition.add(
                "repro_slo_alerts_total",
                self.slo_policy.alerts.total_fired,
                type="counter",
            )
        for name in self.registry.names():
            try:
                managed = self.registry.get(name)
            except ServiceError:
                continue  # closed concurrently
            if managed.streaming.observability is None:
                continue
            snapshot = managed.read(
                lambda streaming: streaming.observability.metrics.snapshot()
            )
            add_registry_snapshot(
                exposition, snapshot, labels={"session": name}
            )
        return exposition.render()

    def list_sessions(self) -> dict:
        return {"sessions": self.registry.list_sessions()}

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------

    def create_session(self, payload: dict) -> dict:
        """Create, initial-match, and register a named session.

        Two construction modes:

        * ``{"name", "dataset": {"name", "seed"?, "scale"?, ...}}`` —
          build the paper workload for a synthetic dataset (rules learned
          via the random-forest extractor);
        * ``{"name", "table_a", "table_b", "rules": <DSL text>,
          "blocker": <spec>, "gold"?: [[a, b], ...]}`` — explicit tables
          and a hand-written matching function.

        Common options: ``workers``, ``observability`` (bool),
        ``profile`` (bool), ``use_kernels``, ``use_bounds``,
        ``ordering``, ``memo_backend``, and ``drift_every`` (int N:
        re-run drift detection every N ingests and derive refinement
        warm-start hints; implies ``profile``).
        """
        if not isinstance(payload, dict):
            raise ServiceError("bad_request", "body must be a JSON object")
        name = payload.get("name")
        if not name:
            raise ServiceError("bad_request", "a session 'name' is required")

        workers = int(payload.get("workers", 1))
        session_kwargs = {
            key: payload[key]
            for key in ("ordering", "memo_backend", "use_kernels", "use_bounds")
            if key in payload
        }
        drift_every = payload.get("drift_every")
        if drift_every is not None:
            drift_every = int(drift_every)
            if drift_every < 1:
                raise ServiceError(
                    "bad_request", "'drift_every' must be a positive integer"
                )
        if payload.get("observability", True):
            observability = Observability(
                enabled=True,
                profile=bool(payload.get("profile", bool(drift_every))),
            )
            if drift_every:
                observability.attach_drift_monitor(every=drift_every)
            session_kwargs["observability"] = observability
        elif drift_every:
            raise ServiceError(
                "bad_request",
                "'drift_every' requires observability to be enabled",
            )

        if "dataset" in payload:
            streaming, blocker_spec = self._from_dataset(
                payload["dataset"], workers, session_kwargs
            )
        elif "table_a" in payload and "table_b" in payload:
            streaming, blocker_spec = self._from_tables(
                payload, workers, session_kwargs
            )
        else:
            raise ServiceError(
                "bad_request",
                "provide either 'dataset' or 'table_a'+'table_b'+'rules'",
            )

        result = streaming.run(workers=workers)
        managed = self.registry.add(name, streaming, blocker_spec=blocker_spec)
        return {
            "session": managed.describe(),
            "initial_run": {
                "stats": stats_to_dict(result.stats),
                "match_count": sum(1 for label in result.labels if label),
            },
        }

    def _from_dataset(self, spec, workers, session_kwargs):
        from ..learning.workload import build_workload

        if not isinstance(spec, dict) or "name" not in spec:
            raise ServiceError(
                "bad_request", "dataset spec needs at least {'name': ...}"
            )
        blocker_spec = spec.get("blocker") or default_blocker_spec(spec["name"])
        blocker = build_blocker(blocker_spec)
        workload = build_workload(
            dataset_name=spec["name"],
            seed=int(spec.get("seed", 7)),
            scale=float(spec.get("scale", 1.0)),
            blocker=blocker,
            max_rules=spec.get("max_rules", 255),
        )
        streaming = StreamingSession(
            workload.dataset.table_a,
            workload.dataset.table_b,
            blocker,
            workload.function,
            gold=workload.gold,
            workers=workers,
            **session_kwargs,
        )
        return streaming, blocker_spec

    def _from_tables(self, payload, workers, session_kwargs):
        from ..core.parser import parse_function

        rules = payload.get("rules")
        if not rules:
            raise ServiceError(
                "bad_request", "'rules' (matching-function DSL) is required"
            )
        blocker_spec = payload.get("blocker")
        blocker = build_blocker(blocker_spec)
        table_a = table_from_payload(payload["table_a"], "A")
        table_b = table_from_payload(payload["table_b"], "B")
        gold = None
        if payload.get("gold") is not None:
            gold = {tuple(pair) for pair in payload["gold"]}
        function = parse_function(rules, self.resolver)
        streaming = StreamingSession(
            table_a,
            table_b,
            blocker,
            function,
            gold=gold,
            workers=workers,
            **session_kwargs,
        )
        return streaming, blocker_spec

    def session_info(self, name: str) -> dict:
        managed = self.registry.get(name)

        def _info(streaming: StreamingSession) -> dict:
            info = managed.describe()
            info["function"] = format_function(streaming.function)
            info["has_gold"] = streaming.session.gold is not None
            info["edits_applied"] = len(streaming.session.history)
            return info

        return managed.read(_info)

    def close_session(self, name: str, payload: Optional[dict] = None) -> dict:
        payload = payload or {}
        return self.registry.close(
            name,
            checkpoint=bool(payload.get("checkpoint", True)),
            drop_checkpoint=bool(payload.get("drop_checkpoint", False)),
        )

    def checkpoint_session(self, name: str) -> dict:
        directory = self.registry.checkpoint(name)
        if directory is None:
            raise ServiceError(
                "conflict", "server was started without a checkpoint directory"
            )
        return {"checkpointed": name, "directory": directory}

    # ------------------------------------------------------------------
    # Writes: data deltas and rule edits
    # ------------------------------------------------------------------

    def ingest(self, name: str, payload: dict) -> dict:
        if not isinstance(payload, dict) or "deltas" not in payload:
            raise ServiceError("bad_request", "body must be {'deltas': [...]}")
        batch = deltas_from_payload(payload["deltas"])
        managed = self.registry.get(name)

        def _ingest(streaming: StreamingSession):
            # ingest() validates the whole batch before mutating anything.
            return streaming.ingest(batch)

        result = managed.write(_ingest)
        return {
            "session": name,
            "seq": managed.seq,
            "batch": batch_result_to_payload(result),
        }

    def edit_rule(self, name: str, payload: dict) -> dict:
        change = change_from_payload(payload, self.resolver)
        managed = self.registry.get(name)

        def _apply(streaming: StreamingSession):
            return streaming.apply(change)

        result = managed.write(_apply)
        return {
            "session": name,
            "seq": managed.seq,
            "change": change.describe(),
            "stats": stats_to_dict(result.stats),
            "affected_pairs": result.affected_pairs,
            "newly_matched": result.newly_matched,
            "newly_unmatched": result.newly_unmatched,
        }

    def refine(self, name: str, payload: Optional[dict] = None) -> dict:
        """Run the automated refinement search on a session (write lock:
        the search borrows the live state, and candidate scoring mutates
        and restores it in place; an optional ``apply`` then edits it for
        real).

        Options (all optional): any :class:`repro.refine.RefineConfig`
        field (``budget``, ``beam_width``, ``max_depth``, ``seed``,
        ``focus_rules``, ...) plus ``apply`` — ``"best"`` or a frontier
        index — to apply that frontier entry's edit sequence before
        returning, and ``warm_start`` (bool) — adopt the session drift
        monitor's current refine hints (e.g. ``focus_rules``) for any
        field the payload didn't set explicitly.
        """
        payload = payload or {}
        if not isinstance(payload, dict):
            raise ServiceError("bad_request", "body must be a JSON object")
        config = refine_config_from_payload(payload)
        warm_hints = {}
        if payload.get("warm_start"):
            managed_for_hints = self.registry.get(name)
            observability = managed_for_hints.streaming.observability
            monitor = (
                observability.drift_monitor if observability is not None else None
            )
            if monitor is not None:
                warm_hints = {
                    key: value
                    for key, value in monitor.refine_hints().items()
                    if key not in payload
                }
            if warm_hints:
                from dataclasses import replace as dataclass_replace

                config = dataclass_replace(config, **warm_hints)
        apply_choice = payload.get("apply", None)
        if apply_choice not in (None, False, "best") and not isinstance(
            apply_choice, int
        ):
            raise ServiceError(
                "bad_request", "'apply' must be \"best\" or a frontier index"
            )
        managed = self.registry.get(name)

        def _refine(streaming: StreamingSession):
            report = streaming.refine(config=config)
            applied_payload = None
            if apply_choice is not None and apply_choice is not False:
                if apply_choice == "best":
                    chosen = report.best
                else:
                    if not 0 <= apply_choice < len(report.frontier):
                        raise ServiceError(
                            "bad_request",
                            f"'apply' index {apply_choice} out of range for a "
                            f"frontier of {len(report.frontier)} points",
                        )
                    chosen = report.frontier[apply_choice]
                for change in chosen.edits:
                    streaming.apply(change)
                applied_payload = {
                    "edits": [change.describe() for change in chosen.edits],
                    "confusion": (
                        confusion_to_payload(streaming.metrics())
                        if streaming.session.gold is not None
                        else None
                    ),
                }
            return report, applied_payload

        report, applied_payload = managed.write(_refine)
        return {
            "session": name,
            "seq": managed.seq,
            "report": refinement_to_payload(report),
            "applied": applied_payload,
            "warm_start": (
                {key: list(value) for key, value in warm_hints.items()}
                if warm_hints
                else None
            ),
        }

    def explain(self, name: str, payload: dict) -> dict:
        # Exclusive lock: explanation back-fills the memo (see module doc).
        if not isinstance(payload, dict) or "a_id" not in payload or "b_id" not in payload:
            raise ServiceError("bad_request", "body must be {'a_id', 'b_id'}")
        managed = self.registry.get(name)

        def _explain(streaming: StreamingSession):
            return streaming.explain(payload["a_id"], payload["b_id"])

        return explanation_to_payload(managed.write(_explain))

    # ------------------------------------------------------------------
    # Reads: match state and observability
    # ------------------------------------------------------------------

    def matches(self, name: str) -> dict:
        managed = self.registry.get(name)

        def _matches(streaming: StreamingSession) -> dict:
            matched = streaming.session.matched_ids()
            out = {
                "session": name,
                "seq": managed.seq,
                "match_count": len(matched),
                "matches": pairs_to_payload(matched),
            }
            if streaming.session.gold is not None:
                out["confusion"] = confusion_to_payload(
                    streaming.session.metrics()
                )
            return out

        return managed.read(_matches)

    def stats(self, name: str) -> dict:
        managed = self.registry.get(name)

        def _stats(streaming: StreamingSession) -> dict:
            run_stats = streaming.run_stats()
            return {
                "session": name,
                "seq": managed.seq,
                "run_stats": stats_to_dict(run_stats) if run_stats else None,
                "batch_stats": stats_to_dict(streaming.total_batch_stats()),
                "batches_ingested": streaming.batches_ingested,
                "edits_applied": len(streaming.session.history),
                "memory": streaming.session.memory_report(),
            }

        return managed.read(_stats)

    def metrics(self, name: str) -> dict:
        """Metrics snapshot plus the diff since the previous call.

        The last snapshot is remembered per session, so polling clients
        get "what changed since I last asked" without holding state.
        """
        managed = self.registry.get(name)

        def _metrics(streaming: StreamingSession) -> dict:
            observability = streaming.observability
            if observability is None:
                raise ServiceError(
                    "conflict",
                    f"session {name!r} was created without observability",
                )
            snapshot = observability.metrics.snapshot()
            previous = managed.last_metrics_snapshot
            diff = (
                observability.metrics.diff(previous)
                if previous is not None
                else None
            )
            managed.last_metrics_snapshot = snapshot
            return {
                "session": name,
                "seq": managed.seq,
                "snapshot": snapshot,
                "diff_since_last": diff,
            }

        return managed.read(_metrics)

    def trace(
        self,
        name: str,
        limit: Optional[int] = None,
        request_id: Optional[str] = None,
    ) -> dict:
        """Span log; ``request_id`` narrows to one request's span tree."""
        managed = self.registry.get(name)

        def _trace(streaming: StreamingSession) -> dict:
            observability = streaming.observability
            if observability is None:
                raise ServiceError(
                    "conflict",
                    f"session {name!r} was created without observability",
                )
            log = observability.tracer.log
            if request_id is not None:
                records = log.for_request(request_id)
            else:
                records = list(log)
            spans = [record.as_dict() for record in records]
            if limit is not None:
                spans = spans[-limit:]
            out = {
                "session": name,
                "seq": managed.seq,
                "span_count": len(records),
                "spans": spans,
            }
            if request_id is not None:
                out["request_id"] = request_id
            return out

        return managed.read(_trace)

    def observability_snapshot(self, name: str) -> dict:
        """Everything at once: spans, metrics, profile, drift."""
        managed = self.registry.get(name)

        def _snapshot(streaming: StreamingSession) -> dict:
            observability = streaming.observability
            if observability is None:
                raise ServiceError(
                    "conflict",
                    f"session {name!r} was created without observability",
                )
            out = {
                "session": name,
                "seq": managed.seq,
                "spans": [r.as_dict() for r in observability.tracer.log],
                "metrics": observability.metrics.snapshot(),
                "profile": (
                    observability.profiler.snapshot()
                    if observability.profiler
                    else None
                ),
                "drift": None,
                "drift_monitor": (
                    observability.drift_monitor.describe()
                    if observability.drift_monitor is not None
                    else None
                ),
            }
            session = streaming.session
            if observability.profiler and session.estimates is not None:
                report = detect_drift(
                    session.function,
                    session.estimates,
                    observability.profiler,
                    ordering_strategy=session.ordering_strategy,
                )
                out["drift"] = {
                    "order_changed": report.order_changed,
                    "features": [
                        {
                            "name": drift.name,
                            "estimated_cost": drift.estimated_cost,
                            "observed_cost": drift.observed_cost,
                            "samples": drift.samples,
                            "drifted": drift.drifted,
                        }
                        for drift in report.features
                    ],
                    "predicates": [
                        {
                            "pid": drift.pid,
                            "estimated_selectivity": drift.estimated_selectivity,
                            "observed_selectivity": drift.observed_selectivity,
                            "evaluations": drift.evaluations,
                            "drifted": drift.drifted,
                        }
                        for drift in report.predicates
                    ],
                }
            return out

        return managed.read(_snapshot)
