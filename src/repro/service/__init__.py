"""Matching service layer: host many debugging sessions behind HTTP.

The paper's debugging loop is interactive — one analyst, one session.
This package turns the engine into a small *service* so many analysts
(or tools) can hold concurrent named sessions against one process:

* :mod:`~repro.service.locks` — writer-preferring reader/writer lock;
* :mod:`~repro.service.protocol` — JSON payload codecs + error model;
* :mod:`~repro.service.registry` — named sessions, per-session locking,
  backpressure, and durable checkpoints;
* :mod:`~repro.service.handlers` — transport-free operation handlers;
* :mod:`~repro.service.app` — the asyncio HTTP server (stdlib only) and
  :class:`ServiceThread` for embedding it;
* :mod:`~repro.service.client` — thin stdlib HTTP client.

Start a durable server from Python::

    from repro.service import ServiceThread
    thread = ServiceThread(port=8642, checkpoint_root="checkpoints")
    host, port = thread.start()
    ...
    thread.stop()          # drain, checkpoint, flush telemetry

or from the workbench: ``serve start 8642 checkpoints``.
"""

from .app import MatchingService, ServiceThread
from .client import ServiceClient, ServiceClientError
from .handlers import ServiceHandlers
from .locks import ReadWriteLock
from .protocol import API_VERSION, ServiceError, build_blocker
from .registry import ManagedSession, SessionRegistry

__all__ = [
    "API_VERSION",
    "MatchingService",
    "ManagedSession",
    "ReadWriteLock",
    "ServiceClient",
    "ServiceClientError",
    "ServiceError",
    "ServiceHandlers",
    "ServiceThread",
    "SessionRegistry",
    "build_blocker",
]
