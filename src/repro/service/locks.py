"""Reader/writer lock for per-session request serialization.

The service executes session requests on a thread pool
(:mod:`repro.service.app`): observability reads (trace, metrics, match
queries) may run concurrently against one session, while mutations
(delta ingest, rule edits) need the session to themselves — a rule edit
interleaved with a streaming re-match would corrupt the shared
:class:`~repro.core.state.MatchState`.  A classic reader/writer lock
expresses exactly that contract.

The implementation is *writer-preferring*: once a writer is waiting, new
readers queue behind it, so a stream of cheap snapshot requests cannot
starve an ingest.  Within each class (readers, writers) the underlying
condition variable's FIFO wakeup keeps grant order close to arrival
order; the conservation tests (``tests/test_service_registry.py``) only
rely on mutual exclusion and non-starvation, not on a global order.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager


class ReadWriteLock:
    """Writer-preferring reader/writer lock over one condition variable."""

    def __init__(self):
        self._condition = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    # ------------------------------------------------------------- readers

    def acquire_read(self, timeout: float | None = None) -> bool:
        """Block until no writer holds or awaits the lock; True on success."""
        with self._condition:
            success = self._condition.wait_for(
                lambda: not self._writer and self._writers_waiting == 0,
                timeout=timeout,
            )
            if success:
                self._readers += 1
            return success

    def release_read(self) -> None:
        with self._condition:
            if self._readers <= 0:
                raise RuntimeError("release_read without a matching acquire")
            self._readers -= 1
            if self._readers == 0:
                self._condition.notify_all()

    # ------------------------------------------------------------- writers

    def acquire_write(self, timeout: float | None = None) -> bool:
        """Block until the lock is free of readers and writers alike."""
        with self._condition:
            self._writers_waiting += 1
            try:
                success = self._condition.wait_for(
                    lambda: not self._writer and self._readers == 0,
                    timeout=timeout,
                )
                if success:
                    self._writer = True
                return success
            finally:
                self._writers_waiting -= 1

    def release_write(self) -> None:
        with self._condition:
            if not self._writer:
                raise RuntimeError("release_write without a matching acquire")
            self._writer = False
            self._condition.notify_all()

    # ------------------------------------------------------- context sugar

    @contextmanager
    def read_locked(self, timeout: float | None = None):
        if not self.acquire_read(timeout):
            raise TimeoutError("could not acquire read lock")
        try:
            yield self
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self, timeout: float | None = None):
        if not self.acquire_write(timeout):
            raise TimeoutError("could not acquire write lock")
        try:
            yield self
        finally:
            self.release_write()

    def __repr__(self) -> str:
        return (
            f"ReadWriteLock(readers={self._readers}, writer={self._writer}, "
            f"writers_waiting={self._writers_waiting})"
        )
