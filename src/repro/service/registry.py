"""Session registry: named sessions, per-session locking, durability.

The service hosts many debugging sessions at once.  Each lives in a
:class:`ManagedSession` — the :class:`~repro.streaming.session.
StreamingSession` plus the concurrency state that makes it safe to share:

* a writer-preferring :class:`~repro.service.locks.ReadWriteLock`, so any
  number of snapshot reads (matches, metrics, trace, explain) run
  concurrently while ingests and rule edits serialize, and a waiting
  write is never starved by a stream of reads;
* a bounded pending counter (*backpressure*): once ``max_pending``
  requests are queued against one session, further requests fail fast
  with a ``busy`` error instead of piling onto the executor;
* a monotonically increasing ``seq`` and a ``dirty`` flag that tell the
  checkpointer which sessions changed since their last save.

The :class:`SessionRegistry` owns the name → session map (guarded by its
own mutex — registry operations never hold any session's lock) and the
checkpoint directory layout::

    <checkpoint_root>/<session_name>/   one repro.core.persistence
                                        session checkpoint per session

``restore_all`` walks that tree at startup, rebuilding each session's
blocker from the spec stored in its checkpoint — this is how a restarted
server resumes exactly where it stopped.
"""

from __future__ import annotations

import json
import logging
import shutil
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

from ..core.persistence import load_session, save_session
from ..streaming.session import StreamingSession
from .locks import ReadWriteLock
from .protocol import ServiceError, build_blocker

logger = logging.getLogger(__name__)

#: default per-session queue depth before requests bounce with ``busy``.
DEFAULT_MAX_PENDING = 32

_VALID_NAME = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_."


def validate_session_name(name: str) -> str:
    """Session names become directory names; keep them filesystem-safe."""
    if not name or len(name) > 64:
        raise ServiceError(
            "bad_request", "session name must be 1-64 characters"
        )
    if any(ch not in _VALID_NAME for ch in name):
        raise ServiceError(
            "bad_request",
            f"session name {name!r} may only contain letters, digits, "
            f"'-', '_', and '.'",
        )
    if set(name) <= {"."}:
        # '.' and '..' are directory escapes, not names: '..' would
        # checkpoint outside the root and rmtree the root's parent.
        raise ServiceError(
            "bad_request",
            "session name must contain a character other than '.'",
        )
    return name


class ManagedSession:
    """One hosted session: engine object + lock + backpressure + dirt."""

    def __init__(
        self,
        name: str,
        streaming: StreamingSession,
        blocker_spec: Optional[dict] = None,
        max_pending: int = DEFAULT_MAX_PENDING,
    ):
        self.name = name
        self.streaming = streaming
        self.blocker_spec = blocker_spec
        self.lock = ReadWriteLock()
        self.max_pending = max_pending
        self.created_at = time.time()
        #: bumped on every successful write; lets clients (and the
        #: checkpointer) detect "has anything changed since I looked?".
        self.seq = 0
        #: True when state changed after the last checkpoint.
        self.dirty = True
        #: previous metrics snapshot (the /metrics diff-since-last basis).
        self.last_metrics_snapshot = None
        self._pending = 0
        self._pending_mutex = threading.Lock()

    # -- backpressure --------------------------------------------------

    def acquire_slot(self) -> None:
        """Claim a pending-request slot or fail fast with ``busy``."""
        with self._pending_mutex:
            if self._pending >= self.max_pending:
                raise ServiceError(
                    "busy",
                    f"session {self.name!r} has {self._pending} requests "
                    f"pending (limit {self.max_pending}); retry later",
                )
            self._pending += 1

    def release_slot(self) -> None:
        with self._pending_mutex:
            self._pending = max(0, self._pending - 1)

    @property
    def pending(self) -> int:
        with self._pending_mutex:
            return self._pending

    # -- guarded access ------------------------------------------------

    def read(self, fn: Callable[[StreamingSession], object], timeout=None):
        """Run ``fn`` under the shared (reader) lock."""
        with self.lock.read_locked(timeout=timeout):
            return fn(self.streaming)

    def write(self, fn: Callable[[StreamingSession], object], timeout=None):
        """Run ``fn`` under the exclusive (writer) lock; marks dirty."""
        with self.lock.write_locked(timeout=timeout):
            result = fn(self.streaming)
            self.seq += 1
            self.dirty = True
            return result

    def describe(self) -> dict:
        """Unlocked summary for listings (point-in-time, may be stale)."""
        streaming = self.streaming
        return {
            "name": self.name,
            "seq": self.seq,
            "dirty": self.dirty,
            "pending": self.pending,
            "created_at": self.created_at,
            "candidates": len(streaming.candidates),
            "batches_ingested": streaming.batches_ingested,
            "rules": [rule.name for rule in streaming.function.rules],
            "workers": streaming.workers,
            "blocker_spec": self.blocker_spec,
        }


class SessionRegistry:
    """Thread-safe name → :class:`ManagedSession` map with durability.

    The registry mutex only guards the map itself; request work runs
    under the individual session's reader/writer lock, so operations on
    different sessions never contend.
    """

    def __init__(
        self,
        checkpoint_root: Optional[str | Path] = None,
        max_pending: int = DEFAULT_MAX_PENDING,
    ):
        self.checkpoint_root = (
            Path(checkpoint_root) if checkpoint_root is not None else None
        )
        self.max_pending = max_pending
        #: checkpoints restore_all() could not rehydrate (skipped, kept
        #: on disk): ``[{"name", "error"}, ...]``.
        self.restore_failures: List[dict] = []
        self._sessions: Dict[str, ManagedSession] = {}
        self._mutex = threading.Lock()

    # -- lifecycle -----------------------------------------------------

    def add(
        self,
        name: str,
        streaming: StreamingSession,
        blocker_spec: Optional[dict] = None,
    ) -> ManagedSession:
        validate_session_name(name)
        managed = ManagedSession(
            name, streaming, blocker_spec=blocker_spec,
            max_pending=self.max_pending,
        )
        with self._mutex:
            if name in self._sessions:
                raise ServiceError(
                    "conflict", f"session {name!r} already exists"
                )
            self._sessions[name] = managed
        return managed

    def get(self, name: str) -> ManagedSession:
        with self._mutex:
            managed = self._sessions.get(name)
        if managed is None:
            raise ServiceError("not_found", f"no session named {name!r}")
        return managed

    def names(self) -> List[str]:
        with self._mutex:
            return sorted(self._sessions)

    def list_sessions(self) -> List[dict]:
        with self._mutex:
            sessions = list(self._sessions.values())
        return [managed.describe() for managed in sorted(
            sessions, key=lambda m: m.name
        )]

    def sessions_state(self) -> List[dict]:
        """Cheap per-session liveness state, name-sorted.

        The single source both ``GET /health`` and the ``GET /metrics``
        gauges read, so the two views can never disagree about
        dirty/pending/seq.
        """
        with self._mutex:
            sessions = list(self._sessions.values())
        return [
            {
                "name": managed.name,
                "seq": managed.seq,
                "dirty": managed.dirty,
                "pending": managed.pending,
            }
            for managed in sorted(sessions, key=lambda m: m.name)
        ]

    def close(self, name: str, checkpoint: bool = True, drop_checkpoint: bool = False) -> dict:
        """Remove a session, checkpointing it first by default.

        ``drop_checkpoint`` deletes its on-disk checkpoint instead, so a
        closed-for-good session does not resurrect on restart.
        """
        managed = self.get(name)
        saved = None
        if checkpoint and not drop_checkpoint:
            saved = self.checkpoint(name)
        with self._mutex:
            self._sessions.pop(name, None)
        if drop_checkpoint and self.checkpoint_root is not None:
            shutil.rmtree(self.session_dir(name), ignore_errors=True)
        return {"closed": name, "checkpoint": saved}

    def __len__(self) -> int:
        with self._mutex:
            return len(self._sessions)

    def __contains__(self, name: str) -> bool:
        with self._mutex:
            return name in self._sessions

    # -- durability ----------------------------------------------------

    def session_dir(self, name: str) -> Path:
        if self.checkpoint_root is None:
            raise ServiceError(
                "conflict",
                "this registry has no checkpoint directory configured",
            )
        validate_session_name(name)
        directory = self.checkpoint_root / name
        # Belt and braces on top of name validation: never hand out a
        # path that escapes the checkpoint root.
        root = self.checkpoint_root.resolve()
        if root not in directory.resolve().parents:
            raise ServiceError(
                "bad_request",
                f"session name {name!r} escapes the checkpoint root",
            )
        return directory

    def checkpoint(self, name: str) -> Optional[str]:
        """Durably save one session (under its reader lock).

        A reader lock suffices: checkpointing only reads state, and the
        writer-preference of the lock keeps a pending ingest from being
        starved by it.  Returns the directory written, or ``None`` when
        the registry is not durable.
        """
        if self.checkpoint_root is None:
            return None
        managed = self.get(name)
        directory = self.session_dir(name)

        def _save(streaming: StreamingSession):
            observability = streaming.observability
            saved = save_session(
                streaming,
                directory,
                blocker_spec=managed.blocker_spec,
                # Observability objects are not serialized (telemetry is
                # flushed separately as JSON lines); record only the
                # configuration so a restore re-attaches a fresh one.
                extra_meta={
                    "observability": observability is not None,
                    "profile": bool(
                        observability is not None and observability.profiler
                    ),
                    "drift_every": (
                        observability.drift_monitor.every
                        if observability is not None
                        and getattr(observability, "drift_monitor", None)
                        is not None
                        else None
                    ),
                },
            )
            # Clear the dirty flag while the read lock is still held:
            # readers exclude writers, so no write can slip in between
            # the save and the clear and have its dirt wiped (which
            # would make checkpoint_all(dirty_only=True) skip it and
            # lose the write on restart).
            managed.dirty = False
            return saved

        saved = managed.read(_save)
        return str(saved)

    def checkpoint_all(self, dirty_only: bool = True) -> List[str]:
        """Checkpoint every (dirty) session; returns the names saved."""
        if self.checkpoint_root is None:
            return []
        saved = []
        for name in self.names():
            try:
                managed = self.get(name)
            except ServiceError:
                continue  # closed concurrently
            if dirty_only and not managed.dirty:
                continue
            self.checkpoint(name)
            saved.append(name)
        return saved

    def restore_all(self, resolver=None) -> List[str]:
        """Re-hydrate every checkpointed session found on disk.

        Each checkpoint stores the blocker *spec*; the blocker itself is
        rebuilt via :func:`~repro.service.protocol.build_blocker` before
        :func:`~repro.core.persistence.load_session` adopts the state.
        Restored sessions start clean (not dirty) — nothing changed since
        their checkpoint was written.

        A corrupt or version-mismatched checkpoint must not keep the
        whole server (and every healthy session) from starting: failed
        entries are skipped, logged, and reported in
        :attr:`restore_failures` (``[{"name", "error"}, ...]``) — their
        on-disk state is left untouched for inspection.
        """
        self.restore_failures: List[dict] = []
        if self.checkpoint_root is None or not self.checkpoint_root.exists():
            return []
        restored = []
        for entry in sorted(self.checkpoint_root.iterdir()):
            if not (entry / "session.json").exists():
                continue
            try:
                restored.append(self._restore_one(entry, resolver))
            except Exception as error:  # noqa: BLE001 — isolate bad entries
                logger.warning(
                    "skipping unrestorable checkpoint %s: %s", entry, error
                )
                self.restore_failures.append(
                    {"name": entry.name, "error": f"{type(error).__name__}: {error}"}
                )
        return restored

    def _restore_one(self, entry: Path, resolver) -> str:
        meta = json.loads((entry / "session.json").read_text("utf-8"))
        blocker = build_blocker(meta.get("blocker_spec"))
        streaming = load_session(entry, blocker, resolver=resolver)
        extra = meta.get("extra") or {}
        if extra.get("observability"):
            from ..observability import Observability

            observability = Observability(
                enabled=True, profile=bool(extra.get("profile"))
            )
            if extra.get("drift_every"):
                observability.attach_drift_monitor(
                    every=int(extra["drift_every"])
                )
            streaming.session.observability = observability
        managed = self.add(
            entry.name, streaming, blocker_spec=meta.get("blocker_spec")
        )
        managed.dirty = False
        return entry.name
