"""The matching service: an asyncio HTTP/JSON server over the registry.

Stdlib only.  A hand-rolled (deliberately minimal) HTTP/1.1 layer on
:func:`asyncio.start_server` parses requests, routes them onto
:class:`~repro.service.handlers.ServiceHandlers`, and writes JSON
envelopes back.  Matching work is CPU-bound synchronous Python, so every
handler call is dispatched to a thread pool via ``run_in_executor`` —
the event loop itself only parses, routes, and serializes, which is what
lets one server interleave requests against many sessions while each
session's reader/writer lock enforces its own consistency.

Request flow, per connection::

    read request -> route -> acquire session slot (backpressure)
        -> run handler in executor (under the session's RW lock)
        -> asyncio.wait_for(per-request timeout)
        -> JSON envelope (ok or error) -> keep-alive or close

Graceful shutdown (:meth:`MatchingService.stop`): stop accepting, wait
for in-flight requests to drain (bounded), checkpoint every dirty
session, and flush each session's observability export as JSON lines
next to its checkpoint.

Routes
------
::

    GET  /health                          liveness + sessions + SLO status
    GET  /metrics                         Prometheus text exposition
    GET  /sessions                        list sessions
    POST /sessions                        create session
    GET  /sessions/{name}                 session info
    DELETE /sessions/{name}               close (checkpoint first)
    POST /sessions/{name}/ingest          apply a delta batch
    POST /sessions/{name}/edit            apply a rule edit
    POST /sessions/{name}/explain         full trace of one pair
    POST /sessions/{name}/refine          automated refinement search
    GET  /sessions/{name}/matches         labels (+ confusion if gold)
    GET  /sessions/{name}/stats           run/batch MatchStats
    GET  /sessions/{name}/metrics         metrics snapshot + diff
    GET  /sessions/{name}/trace           span log (?request_id= filters)
    GET  /sessions/{name}/observability   spans+metrics+profile+drift
    POST /sessions/{name}/checkpoint      durably save now
    POST /shutdown                        graceful stop (drain + save)

Request-scoped tracing: clients may send an ``X-Repro-Request-Id``
header (``[A-Za-z0-9_-]{1,64}``); the server adopts it as the envelope
``request_id`` and, for write actions on sessions with tracing enabled,
activates a trace context on the executor thread so every span the
operation opens — including spliced parallel-worker ``chunk:N`` spans —
is stamped with that id.  ``GET /sessions/{name}/trace?request_id=...``
then returns exactly that request's span tree.

Rolling telemetry: unless constructed with ``telemetry=False``, every
response is recorded into a :class:`RequestTelemetry` (sliding-window
request counts, error rates, latency histograms per endpoint and per
session), scraped by ``GET /metrics`` and evaluated against the SLO
policy surfaced in ``GET /health``.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Sequence, Tuple
from urllib.parse import parse_qs

from ..errors import ReproError
from ..observability.export import CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE
from ..observability.rolling import RequestTelemetry
from ..observability.slo import SLO, SLOPolicy
from .handlers import ServiceHandlers
from .protocol import (
    ServiceError,
    envelope_error,
    envelope_ok,
    new_request_id,
    valid_request_id,
)
from .registry import SessionRegistry

#: ceiling on request bodies (16 MiB) — tables ride in JSON.
MAX_BODY_BYTES = 16 * 1024 * 1024
DEFAULT_REQUEST_TIMEOUT = 60.0
DEFAULT_DRAIN_TIMEOUT = 30.0

#: writes take the session's exclusive lock; everything else is a read.
_WRITE_ACTIONS = {"ingest", "edit", "explain", "refine"}

#: default cap before the per-session observability.jsonl sink rotates.
DEFAULT_FLUSH_MAX_BYTES = 8 * 1024 * 1024


class _RawText(str):
    """A route result to be written verbatim as a text body (no JSON
    envelope) — the Prometheus scrape path."""

    content_type = PROMETHEUS_CONTENT_TYPE


class _RequestTooLarge(Exception):
    """Declared Content-Length exceeds the cap; the body was never read,
    so after answering with an error the connection must close."""

    def __init__(self, length: int):
        super().__init__(f"request body of {length} bytes")
        self.length = length


class MatchingService:
    """Async multi-session matching server.  See module docstring."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        checkpoint_root=None,
        executor_workers: int = 8,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
        max_pending: Optional[int] = None,
        resolver=None,
        telemetry: bool = True,
        slos: Optional[Sequence[SLO]] = None,
        telemetry_window_seconds: float = 60.0,
        flush_max_bytes: Optional[int] = DEFAULT_FLUSH_MAX_BYTES,
        flush_backups: int = 3,
    ):
        self.host = host
        self.port = port
        registry_kwargs = {}
        if max_pending is not None:
            registry_kwargs["max_pending"] = max_pending
        self.registry = SessionRegistry(
            checkpoint_root=checkpoint_root, **registry_kwargs
        )
        self.telemetry: Optional[RequestTelemetry] = (
            RequestTelemetry(window_seconds=telemetry_window_seconds)
            if telemetry
            else None
        )
        self.slo_policy: Optional[SLOPolicy] = (
            SLOPolicy(slos) if telemetry else None
        )
        self.handlers = ServiceHandlers(
            self.registry,
            resolver=resolver,
            telemetry=self.telemetry,
            slo_policy=self.slo_policy,
        )
        self.flush_max_bytes = flush_max_bytes
        self.flush_backups = flush_backups
        self.request_timeout = request_timeout
        self._executor = ThreadPoolExecutor(
            max_workers=executor_workers, thread_name_prefix="repro-svc"
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._in_flight = 0
        self._drained = asyncio.Event()
        self._shutting_down = False
        self.started_at: Optional[float] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; restores checkpointed sessions first."""
        self._loop = asyncio.get_running_loop()
        restored = self.registry.restore_all(resolver=self.handlers.resolver)
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        address = self._server.sockets[0].getsockname()
        self.host, self.port = address[0], address[1]
        self.started_at = time.time()
        self.restored_sessions = restored
        self.restore_failures = self.registry.restore_failures
        return self.host, self.port

    async def stop(
        self, graceful: bool = True, drain_timeout: float = DEFAULT_DRAIN_TIMEOUT
    ) -> dict:
        """Stop serving; with ``graceful`` drain, checkpoint, and flush."""
        self._shutting_down = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        report = {"drained": True, "checkpointed": [], "flushed": []}
        if graceful:
            if self._in_flight > 0:
                self._drained.clear()
                try:
                    await asyncio.wait_for(
                        self._drained.wait(), timeout=drain_timeout
                    )
                except asyncio.TimeoutError:
                    report["drained"] = False
            report["checkpointed"] = await self._loop.run_in_executor(
                self._executor, self.registry.checkpoint_all
            )
            report["flushed"] = await self._loop.run_in_executor(
                self._executor, self._flush_observability
            )
        # Never wait=True here: stop() runs on the event-loop thread, and
        # a timed-out handler still running in the pool would block the
        # whole loop.  The drain wait above already bounded in-flight
        # work; leftover threads finish on their own and are ignored.
        self._executor.shutdown(wait=False)
        return report

    def _flush_observability(self):
        """Write each session's telemetry as JSON lines beside its
        checkpoint (``<root>/<name>/observability.jsonl``)."""
        root = self.registry.checkpoint_root
        if root is None:
            return []
        flushed = []
        for name in self.registry.names():
            try:
                managed = self.registry.get(name)
            except ServiceError:
                continue
            observability = managed.streaming.observability
            if observability is None:
                continue
            observability.flush_json_lines(
                root / name / "observability.jsonl",
                max_bytes=self.flush_max_bytes,
                backups=self.flush_backups,
            )
            flushed.append(name)
        return flushed

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------

    async def _serve_connection(self, reader, writer):
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _RequestTooLarge as too_large:
                    # Answer with a parseable error envelope instead of
                    # silently closing; the oversized body is unread, so
                    # the connection cannot be kept alive.
                    error = ServiceError(
                        "bad_request",
                        f"request body of {too_large.length} bytes exceeds "
                        f"the {MAX_BODY_BYTES}-byte limit",
                    )
                    await self._write_response(
                        writer,
                        error.status,
                        envelope_error(
                            error, new_request_id(), time.perf_counter()
                        ),
                        keep_alive=False,
                    )
                    break
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = headers.get("connection", "keep-alive") != "close"
                status, payload = await self._dispatch(
                    method, path, body, headers
                )
                await self._write_response(writer, status, payload, keep_alive)
                if not keep_alive or self._shutting_down:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader):
        try:
            header_blob = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            return None
        head, *header_lines = header_blob.decode("latin-1").split("\r\n")
        parts = head.split()
        if len(parts) < 2:
            return None
        method, path = parts[0].upper(), parts[1]
        headers = {}
        for line in header_lines:
            if ":" in line:
                key, value = line.split(":", 1)
                headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        if length > MAX_BODY_BYTES:
            raise _RequestTooLarge(length)
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    async def _write_response(self, writer, status, payload, keep_alive):
        if isinstance(payload, _RawText):
            body = str(payload).encode("utf-8")
            content_type = payload.content_type
        else:
            body = json.dumps(payload, default=str).encode("utf-8")
            content_type = "application/json"
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed", 409: "Conflict",
                  429: "Too Many Requests", 500: "Internal Server Error",
                  503: "Service Unavailable", 504: "Gateway Timeout"}.get(
            status, "OK"
        )
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing and dispatch
    # ------------------------------------------------------------------

    @staticmethod
    def _endpoint_key(method, segments):
        """Templated endpoint label + session name for telemetry.

        Session names are folded into ``{name}`` so label cardinality is
        bounded by the route table, with the per-session dimension kept
        separately (and capped) by :class:`RequestTelemetry`.
        """
        if not segments:
            return f"{method} /", None
        if segments[0] == "sessions":
            if len(segments) == 1:
                return f"{method} /sessions", None
            name = segments[1]
            if len(segments) == 2:
                return f"{method} /sessions/{{name}}", name
            return f"{method} /sessions/{{name}}/{segments[2]}", name
        return f"{method} /{segments[0]}", None

    async def _dispatch(self, method, path, body, headers=None):
        client_id = (headers or {}).get("x-repro-request-id")
        if client_id is not None and valid_request_id(client_id):
            request_id = client_id
        else:
            request_id = new_request_id()
        started = time.perf_counter()
        path, _, query_string = path.partition("?")
        path = path.rstrip("/") or "/"
        query = parse_qs(query_string) if query_string else {}
        segments = [s for s in path.split("/") if s]
        endpoint, session_name = self._endpoint_key(method, segments)
        status = 500
        try:
            if self._shutting_down:
                error = ServiceError("shutting_down", "server is shutting down")
                status = error.status
                return status, envelope_error(error, request_id, started)
            try:
                payload = json.loads(body.decode("utf-8")) if body else None
            except (ValueError, UnicodeDecodeError) as exc:
                error = ServiceError("bad_request", f"invalid JSON body: {exc}")
                status = error.status
                return status, envelope_error(error, request_id, started)

            self._in_flight += 1
            try:
                result = await self._route(
                    method, path, payload, query, request_id
                )
                status = 200
                if isinstance(result, _RawText):
                    return status, result
                return status, envelope_ok(result, request_id, started)
            except ServiceError as error:
                status = error.status
                return status, envelope_error(error, request_id, started)
            except asyncio.TimeoutError:
                error = ServiceError(
                    "timeout",
                    f"request exceeded {self.request_timeout:g}s; the session "
                    f"operation keeps running but this response is abandoned",
                )
                status = error.status
                return status, envelope_error(error, request_id, started)
            except ReproError as exc:
                # Engine validation errors are the caller's fault.
                error = ServiceError("bad_request", str(exc))
                status = error.status
                return status, envelope_error(error, request_id, started)
            except Exception as exc:  # noqa: BLE001 — last-resort envelope
                error = ServiceError("internal", f"{type(exc).__name__}: {exc}")
                status = error.status
                return status, envelope_error(error, request_id, started)
            finally:
                self._in_flight -= 1
                if self._in_flight == 0:
                    self._drained.set()
        finally:
            if self.telemetry is not None:
                self.telemetry.record_request(
                    endpoint,
                    session_name,
                    time.perf_counter() - started,
                    error=status >= 400,
                )

    async def _route(self, method, path, payload, query=None, request_id=None):
        query = query or {}
        segments = [s for s in path.split("/") if s]
        if path == "/health" and method == "GET":
            return await self._call(self.handlers.health)
        if path == "/metrics" and method == "GET":
            return _RawText(await self._call(self.handlers.scrape))
        if path == "/shutdown" and method == "POST":
            # Schedule the stop after this response flushes.
            asyncio.get_running_loop().create_task(self._stop_later())
            return {"stopping": True}
        if path == "/sessions" and method == "GET":
            return await self._call(self.handlers.list_sessions)
        if path == "/sessions" and method == "POST":
            return await self._call(self.handlers.create_session, payload)
        if len(segments) >= 2 and segments[0] == "sessions":
            name = segments[1]
            action = segments[2] if len(segments) > 2 else None
            return await self._session_route(
                method, name, action, payload, query, request_id
            )
        raise ServiceError("not_found", f"no route {method} {path}")

    @staticmethod
    def _query_value(query, key):
        values = query.get(key)
        return values[0] if values else None

    def _traced(self, name, request_id, operation):
        """Wrap a write operation so its spans carry ``request_id``.

        The executor runs the operation on one thread; the tracer's
        request context is thread-local, so concurrent requests against
        other sessions can't cross-stamp.
        """

        def run():
            try:
                observability = self.registry.get(name).streaming.observability
            except ServiceError:
                observability = None
            if observability is None or not observability.tracer.enabled:
                return operation()
            with observability.tracer.request_context(request_id):
                return operation()

        return run

    async def _session_route(
        self, method, name, action, payload, query=None, request_id=None
    ):
        handlers = self.handlers
        query = query or {}
        if action is None:
            if method == "GET":
                return await self._call(handlers.session_info, name)
            if method == "DELETE":
                return await self._call(handlers.close_session, name, payload)
        trace_request_id = self._query_value(query, "request_id")
        trace_limit = self._query_value(query, "limit")
        if trace_limit is not None:
            try:
                trace_limit = int(trace_limit)
            except ValueError:
                raise ServiceError(
                    "bad_request", f"'limit' must be an integer, got {trace_limit!r}"
                )
        table = {
            ("POST", "ingest"): lambda: handlers.ingest(name, payload),
            ("POST", "edit"): lambda: handlers.edit_rule(name, payload),
            ("POST", "explain"): lambda: handlers.explain(name, payload),
            ("POST", "refine"): lambda: handlers.refine(name, payload),
            ("POST", "checkpoint"): lambda: handlers.checkpoint_session(name),
            ("GET", "matches"): lambda: handlers.matches(name),
            ("GET", "stats"): lambda: handlers.stats(name),
            ("GET", "metrics"): lambda: handlers.metrics(name),
            ("GET", "trace"): lambda: handlers.trace(
                name, request_id=trace_request_id, limit=trace_limit
            ),
            ("GET", "observability"): lambda: handlers.observability_snapshot(
                name
            ),
        }
        operation = table.get((method, action))
        if operation is None:
            raise ServiceError(
                "not_found", f"no route {method} /sessions/{name}/{action or ''}"
            )
        if action in _WRITE_ACTIONS and request_id is not None:
            operation = self._traced(name, request_id, operation)
        # Backpressure: claim the session's slot before queueing executor
        # work, release once the handler finishes (even on timeout the
        # slot is held until the work actually completes — the session is
        # still busy even if the response was abandoned).
        needs_slot = action in _WRITE_ACTIONS or (method, action) in (
            ("GET", "matches"),
            ("GET", "stats"),
            ("GET", "metrics"),
            ("GET", "trace"),
            ("GET", "observability"),
        )
        if needs_slot:
            managed = self.registry.get(name)
            managed.acquire_slot()

            def _guarded():
                try:
                    return operation()
                finally:
                    managed.release_slot()

            return await self._call(_guarded)
        return await self._call(operation)

    async def _call(self, fn, *args):
        future = self._loop.run_in_executor(self._executor, fn, *args)
        return await asyncio.wait_for(future, timeout=self.request_timeout)

    async def _stop_later(self):
        await asyncio.sleep(0.05)
        await self.stop(graceful=True)
        loop = asyncio.get_running_loop()
        stopper = getattr(loop, "_repro_service_stopper", None)
        if stopper is not None:
            stopper()


class ServiceThread:
    """Run a :class:`MatchingService` on a background event-loop thread.

    The workbench's ``serve`` command and the tests use this: ``start()``
    blocks until the port is bound and returns ``(host, port)``;
    ``stop()`` performs the graceful shutdown from the caller's thread.
    """

    def __init__(self, **service_kwargs):
        self.service = MatchingService(**service_kwargs)
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = threading.Event()
        self._stopped = threading.Event()
        self.address: Optional[Tuple[str, int]] = None

    def start(self, timeout: float = 30.0) -> Tuple[str, int]:
        if self._thread is not None:
            raise RuntimeError("service thread already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("service failed to start within timeout")
        if self.address is None:
            raise RuntimeError("service failed to bind")
        return self.address

    def _run(self):
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        stop_signal = asyncio.Event()
        loop._repro_service_stopper = lambda: stop_signal.set()

        async def _main():
            try:
                self.address = await self.service.start()
            finally:
                self._started.set()
            await stop_signal.wait()

        try:
            loop.run_until_complete(_main())
        finally:
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()
            self._stopped.set()

    def stop(self, graceful: bool = True, timeout: float = 60.0) -> dict:
        """Gracefully stop from outside the loop thread; returns the
        shutdown report (drained / checkpointed / flushed)."""
        if self._loop is None or not self._thread:
            return {"drained": True, "checkpointed": [], "flushed": []}
        if self._stopped.is_set():
            return {"drained": True, "checkpointed": [], "flushed": []}
        future = asyncio.run_coroutine_threadsafe(
            self.service.stop(graceful=graceful), self._loop
        )
        report = future.result(timeout=timeout)
        self._loop.call_soon_threadsafe(self._loop._repro_service_stopper)
        self._thread.join(timeout=timeout)
        return report

    @property
    def running(self) -> bool:
        return (
            self._thread is not None
            and self._thread.is_alive()
            and not self._stopped.is_set()
        )
