"""Thin synchronous client for the matching service.

Wraps :class:`http.client.HTTPConnection` (stdlib only) with one method
per API operation, unwrapping the JSON envelope: a successful call
returns the ``result`` payload directly; a failed one raises
:class:`ServiceClientError` carrying the server's error ``code`` and
HTTP ``status``.  The workbench's ``remote`` command and the service
tests both drive the server through this class, so the client *is* the
reference consumer of the wire protocol.

>>> client = ServiceClient("127.0.0.1", 8642)
>>> client.create_session({"name": "demo", "dataset": {"name": "products"}})
>>> client.ingest("demo", [{"op": "insert", "side": "a",
...                         "id": "a-new", "values": {...}}])
>>> client.metrics("demo")["snapshot"]
"""

from __future__ import annotations

import json
from http.client import HTTPConnection
from typing import List, Optional

from ..errors import ReproError


class ServiceClientError(ReproError):
    """Server answered with an error envelope (or unparseable output)."""

    def __init__(self, code: str, status: int, message: str):
        self.code = code
        self.status = status
        super().__init__(message)


class ServiceClient:
    """One server endpoint; a fresh connection per request (simple,
    side-steps keep-alive state after server restarts)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8642,
                 timeout: float = 120.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------

    def request(self, method: str, path: str, payload=None):
        body = None
        headers = {"Connection": "close"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
        finally:
            connection.close()
        try:
            envelope = json.loads(raw.decode("utf-8"))
        except ValueError as exc:
            raise ServiceClientError(
                "internal", response.status,
                f"unparseable response: {raw[:200]!r}",
            ) from exc
        if not envelope.get("ok"):
            error = envelope.get("error", {})
            raise ServiceClientError(
                error.get("code", "internal"),
                response.status,
                error.get("message", "unknown server error"),
            )
        return envelope["result"]

    # -- service-level -------------------------------------------------

    def health(self) -> dict:
        return self.request("GET", "/health")

    def shutdown(self) -> dict:
        return self.request("POST", "/shutdown")

    # -- session lifecycle ---------------------------------------------

    def list_sessions(self) -> List[dict]:
        return self.request("GET", "/sessions")["sessions"]

    def create_session(self, payload: dict) -> dict:
        return self.request("POST", "/sessions", payload)

    def session_info(self, name: str) -> dict:
        return self.request("GET", f"/sessions/{name}")

    def close_session(self, name: str, checkpoint: bool = True,
                      drop_checkpoint: bool = False) -> dict:
        return self.request(
            "DELETE", f"/sessions/{name}",
            {"checkpoint": checkpoint, "drop_checkpoint": drop_checkpoint},
        )

    def checkpoint(self, name: str) -> dict:
        return self.request("POST", f"/sessions/{name}/checkpoint")

    # -- writes --------------------------------------------------------

    def ingest(self, name: str, deltas: List[dict]) -> dict:
        return self.request(
            "POST", f"/sessions/{name}/ingest", {"deltas": deltas}
        )

    def edit_rule(self, name: str, change: dict) -> dict:
        return self.request("POST", f"/sessions/{name}/edit", change)

    def explain(self, name: str, a_id: str, b_id: str) -> dict:
        return self.request(
            "POST", f"/sessions/{name}/explain", {"a_id": a_id, "b_id": b_id}
        )

    def refine(self, name: str, **options) -> dict:
        """Run the automated refinement search.  ``options`` are
        RefineConfig fields (``budget``, ``beam_width``, ``seed``, ...)
        plus ``apply="best"`` (or a frontier index) to also apply the
        chosen edit sequence server-side."""
        return self.request(
            "POST", f"/sessions/{name}/refine", options or None
        )

    # -- reads ---------------------------------------------------------

    def matches(self, name: str) -> dict:
        return self.request("GET", f"/sessions/{name}/matches")

    def stats(self, name: str) -> dict:
        return self.request("GET", f"/sessions/{name}/stats")

    def metrics(self, name: str) -> dict:
        return self.request("GET", f"/sessions/{name}/metrics")

    def trace(self, name: str) -> dict:
        return self.request("GET", f"/sessions/{name}/trace")

    def observability(self, name: str) -> dict:
        return self.request("GET", f"/sessions/{name}/observability")
