"""Thin synchronous client for the matching service.

Wraps :class:`http.client.HTTPConnection` (stdlib only) with one method
per API operation, unwrapping the JSON envelope: a successful call
returns the ``result`` payload directly; a failed one raises
:class:`ServiceClientError` carrying the server's error ``code`` and
HTTP ``status``.  The workbench's ``remote`` command and the service
tests both drive the server through this class, so the client *is* the
reference consumer of the wire protocol.

>>> client = ServiceClient("127.0.0.1", 8642)
>>> client.create_session({"name": "demo", "dataset": {"name": "products"}})
>>> client.ingest("demo", [{"op": "insert", "side": "a",
...                         "id": "a-new", "values": {...}}])
>>> client.metrics("demo")["snapshot"]
"""

from __future__ import annotations

import json
import uuid
from http.client import HTTPConnection
from typing import List, Optional
from urllib.parse import urlencode

from ..errors import ReproError
from .protocol import REQUEST_ID_HEADER


class ServiceClientError(ReproError):
    """Server answered with an error envelope (or unparseable output)."""

    def __init__(self, code: str, status: int, message: str):
        self.code = code
        self.status = status
        super().__init__(message)


class ServiceClient:
    """One server endpoint; a fresh connection per request (simple,
    side-steps keep-alive state after server restarts)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8642,
                 timeout: float = 120.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        #: request id sent with the most recent call — the handle for
        #: ``trace(name, request_id=client.last_request_id)``.
        self.last_request_id: Optional[str] = None

    # -- plumbing ------------------------------------------------------

    def request(self, method: str, path: str, payload=None,
                request_id: Optional[str] = None, raw: bool = False):
        """One HTTP round-trip.

        Every request carries an ``X-Repro-Request-Id`` header (generated
        unless ``request_id`` is given) that the server adopts as the
        envelope id and the trace-context stamp; it is remembered as
        :attr:`last_request_id`.  With ``raw=True`` the body is returned
        as text without envelope unwrapping (the ``/metrics`` scrape).
        """
        body = None
        rid = request_id or uuid.uuid4().hex[:12]
        headers = {"Connection": "close", REQUEST_ID_HEADER: rid}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            blob = response.read()
        finally:
            connection.close()
        self.last_request_id = rid
        if raw:
            text = blob.decode("utf-8")
            if response.status >= 400:
                raise ServiceClientError(
                    "internal", response.status, text[:500]
                )
            return text
        try:
            envelope = json.loads(blob.decode("utf-8"))
        except ValueError as exc:
            raise ServiceClientError(
                "internal", response.status,
                f"unparseable response: {blob[:200]!r}",
            ) from exc
        if not envelope.get("ok"):
            error = envelope.get("error", {})
            raise ServiceClientError(
                error.get("code", "internal"),
                response.status,
                error.get("message", "unknown server error"),
            )
        return envelope["result"]

    # -- service-level -------------------------------------------------

    def health(self) -> dict:
        return self.request("GET", "/health")

    def scrape_metrics(self) -> str:
        """Raw Prometheus text from ``GET /metrics``."""
        return self.request("GET", "/metrics", raw=True)

    def shutdown(self) -> dict:
        return self.request("POST", "/shutdown")

    # -- session lifecycle ---------------------------------------------

    def list_sessions(self) -> List[dict]:
        return self.request("GET", "/sessions")["sessions"]

    def create_session(self, payload: dict) -> dict:
        return self.request("POST", "/sessions", payload)

    def session_info(self, name: str) -> dict:
        return self.request("GET", f"/sessions/{name}")

    def close_session(self, name: str, checkpoint: bool = True,
                      drop_checkpoint: bool = False) -> dict:
        return self.request(
            "DELETE", f"/sessions/{name}",
            {"checkpoint": checkpoint, "drop_checkpoint": drop_checkpoint},
        )

    def checkpoint(self, name: str) -> dict:
        return self.request("POST", f"/sessions/{name}/checkpoint")

    # -- writes --------------------------------------------------------

    def ingest(self, name: str, deltas: List[dict]) -> dict:
        return self.request(
            "POST", f"/sessions/{name}/ingest", {"deltas": deltas}
        )

    def edit_rule(self, name: str, change: dict) -> dict:
        return self.request("POST", f"/sessions/{name}/edit", change)

    def explain(self, name: str, a_id: str, b_id: str) -> dict:
        return self.request(
            "POST", f"/sessions/{name}/explain", {"a_id": a_id, "b_id": b_id}
        )

    def refine(self, name: str, **options) -> dict:
        """Run the automated refinement search.  ``options`` are
        RefineConfig fields (``budget``, ``beam_width``, ``seed``, ...)
        plus ``apply="best"`` (or a frontier index) to also apply the
        chosen edit sequence server-side."""
        return self.request(
            "POST", f"/sessions/{name}/refine", options or None
        )

    # -- reads ---------------------------------------------------------

    def matches(self, name: str) -> dict:
        return self.request("GET", f"/sessions/{name}/matches")

    def stats(self, name: str) -> dict:
        return self.request("GET", f"/sessions/{name}/stats")

    def metrics(self, name: str) -> dict:
        return self.request("GET", f"/sessions/{name}/metrics")

    def trace(self, name: str, request_id: Optional[str] = None,
              limit: Optional[int] = None) -> dict:
        """Span log; ``request_id`` returns one request's span tree."""
        params = {}
        if request_id is not None:
            params["request_id"] = request_id
        if limit is not None:
            params["limit"] = limit
        path = f"/sessions/{name}/trace"
        if params:
            path += "?" + urlencode(params)
        return self.request("GET", path)

    def observability(self, name: str) -> dict:
        return self.request("GET", f"/sessions/{name}/observability")
