"""Streaming subsystem: incremental matching under record-level data deltas.

The debugging loop of the paper assumes frozen input tables; this package
keeps a live :class:`~repro.core.session.DebugSession` consistent while
records are inserted, updated, and deleted:

* :mod:`~repro.streaming.deltas` — the :class:`Delta`/:class:`DeltaBatch`
  change model and table application;
* :mod:`~repro.streaming.session` — :class:`StreamingSession`, which
  applies a batch by re-matching only the affected candidate pairs
  (delta-aware blocking + memo invalidation + state remap), dispatching
  to :mod:`repro.parallel` for large affected sets.

See ``docs/streaming.md`` for the design and the equivalence argument.
"""

from .deltas import AppliedDelta, Delta, DeltaBatch, apply_delta, validate_batch
from .session import (
    DEFAULT_PARALLEL_THRESHOLD_PAIRS,
    DEFAULT_PARALLEL_THRESHOLD_SECONDS,
    BatchResult,
    StreamingSession,
)

__all__ = [
    "Delta",
    "DeltaBatch",
    "AppliedDelta",
    "apply_delta",
    "validate_batch",
    "BatchResult",
    "StreamingSession",
    "DEFAULT_PARALLEL_THRESHOLD_PAIRS",
    "DEFAULT_PARALLEL_THRESHOLD_SECONDS",
]
