"""Record-level deltas: the unit of change streaming ingestion consumes.

A :class:`Delta` describes one mutation of one record on one side of the
matching task — insert, update, or delete.  A :class:`DeltaBatch` is an
ordered sequence of deltas applied atomically by
:meth:`~repro.streaming.session.StreamingSession.ingest`: the matching
state observed between two batches is always consistent with some prefix
of the delta stream, never with half a batch.

Updates are *partial*: ``values`` merges over the existing record's
attributes (set an attribute to ``None`` to blank it).  Inserts carry the
full attribute mapping.  Deletes carry none.

:func:`apply_delta` validates a delta against the live tables, mutates the
right table in place, and returns an :class:`AppliedDelta` — the same
mutation with the *resolved* post-application record attached, which is
the shape :meth:`repro.blocking.base.Blocker.pairs_for_delta` consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Optional, Sequence, Tuple

from ..data.table import Record, Table
from ..errors import SchemaError, StreamingError

VALID_OPS = ("insert", "update", "delete")
VALID_SIDES = ("a", "b")


@dataclass(frozen=True)
class Delta:
    """One record-level mutation, as submitted by the caller."""

    op: str
    side: str
    record_id: str
    values: Optional[Mapping[str, object]] = None

    def __post_init__(self):
        if self.op not in VALID_OPS:
            raise StreamingError(
                f"delta op must be one of {VALID_OPS}, got {self.op!r}"
            )
        if self.side not in VALID_SIDES:
            raise StreamingError(
                f"delta side must be 'a' or 'b', got {self.side!r}"
            )
        if not self.record_id:
            raise StreamingError("delta record_id must be non-empty")
        if self.op == "delete":
            if self.values:
                raise StreamingError(
                    f"delete of {self.record_id!r} must not carry values"
                )
        elif self.op == "insert" and self.values is None:
            raise StreamingError(
                f"insert of {self.record_id!r} needs an attribute mapping"
            )
        elif self.op == "update" and not self.values:
            raise StreamingError(
                f"update of {self.record_id!r} needs at least one attribute"
            )

    # -- convenience constructors --------------------------------------

    @classmethod
    def insert(cls, side: str, record_id: str, **values: object) -> "Delta":
        return cls("insert", side, record_id, values)

    @classmethod
    def update(cls, side: str, record_id: str, **values: object) -> "Delta":
        return cls("update", side, record_id, values)

    @classmethod
    def delete(cls, side: str, record_id: str) -> "Delta":
        return cls("delete", side, record_id)

    def __repr__(self) -> str:
        extra = f", {dict(self.values)!r}" if self.values else ""
        return f"Delta({self.op} {self.side}:{self.record_id}{extra})"


@dataclass(frozen=True)
class AppliedDelta:
    """A delta that has been applied to the tables.

    ``record`` is the post-application record (the merged record for
    updates), or ``None`` for deletes; ``previous`` is the record the
    delta displaced, or ``None`` for inserts.  This is the resolved form
    blockers' ``pairs_for_delta`` consumes.
    """

    op: str
    side: str
    record_id: str
    record: Optional[Record]
    previous: Optional[Record]


@dataclass(frozen=True)
class DeltaBatch:
    """An ordered, atomically applied sequence of deltas."""

    deltas: Tuple[Delta, ...] = ()

    def __init__(self, deltas: Sequence[Delta] = ()):
        object.__setattr__(self, "deltas", tuple(deltas))
        for delta in self.deltas:
            if not isinstance(delta, Delta):
                raise StreamingError(
                    f"DeltaBatch takes Delta objects, got {type(delta).__name__}"
                )

    def __iter__(self) -> Iterator[Delta]:
        return iter(self.deltas)

    def __len__(self) -> int:
        return len(self.deltas)

    def touched_records(self) -> Tuple[set, set]:
        """Record ids touched per side, as ``(a_ids, b_ids)``."""
        a_ids = {d.record_id for d in self.deltas if d.side == "a"}
        b_ids = {d.record_id for d in self.deltas if d.side == "b"}
        return a_ids, b_ids

    def __repr__(self) -> str:
        return f"DeltaBatch({len(self.deltas)} deltas)"


def validate_batch(
    table_a: Table, table_b: Table, batch: Sequence[Delta]
) -> None:
    """Check that every delta in ``batch`` would apply cleanly, in order.

    Simulates the batch against the live tables without mutating anything:
    record-id liveness is tracked through the sequence (so an insert
    followed by an update of the same id validates, and a delete followed
    by an update of it does not), and insert/update values are checked
    against the table schema — exactly the conditions under which
    :func:`apply_delta` raises.  Raises
    :class:`~repro.errors.StreamingError` naming the offending delta's
    position; the tables are untouched either way.

    :meth:`~repro.streaming.session.StreamingSession.ingest` runs this
    before applying anything, which is what makes a batch atomic: a batch
    that cannot apply in full is rejected in full.
    """
    live = {
        "a": {record.record_id for record in table_a},
        "b": {record.record_id for record in table_b},
    }
    schema = {"a": set(table_a.attributes), "b": set(table_b.attributes)}
    table_name = {"a": table_a.name, "b": table_b.name}

    def reject(position: int, delta: Delta, reason: str) -> None:
        raise StreamingError(
            f"batch rejected at delta {position + 1}/{len(batch)} "
            f"({delta!r}): {reason}; no deltas were applied"
        )

    for position, delta in enumerate(batch):
        ids = live[delta.side]
        name = table_name[delta.side]
        if delta.op == "insert":
            if delta.record_id in ids:
                reject(
                    position, delta,
                    f"id already in table {name!r} (use an update delta)",
                )
        elif delta.record_id not in ids:
            reject(position, delta, f"no such record in table {name!r}")
        if delta.values:
            extra = set(delta.values) - schema[delta.side]
            if extra:
                reject(
                    position, delta,
                    f"attributes outside the schema of table {name!r}: "
                    f"{sorted(extra)}",
                )
        if delta.op == "insert":
            ids.add(delta.record_id)
        elif delta.op == "delete":
            ids.discard(delta.record_id)


def apply_delta(table_a: Table, table_b: Table, delta: Delta) -> AppliedDelta:
    """Validate ``delta`` against the tables, apply it, resolve the record.

    Raises :class:`~repro.errors.StreamingError` on an unknown record id
    (update/delete), a duplicate id (insert), or a schema violation; the
    tables are untouched when it raises.
    """
    table = table_a if delta.side == "a" else table_b
    if delta.op == "insert":
        if delta.record_id in table:
            raise StreamingError(
                f"insert of {delta.record_id!r}: id already in table "
                f"{table.name!r} (use an update delta)"
            )
        record = Record(delta.record_id, delta.values or {})
        try:
            table.add(record)
        except SchemaError as error:
            raise StreamingError(str(error)) from error
        return AppliedDelta(delta.op, delta.side, delta.record_id, record, None)
    if delta.record_id not in table:
        raise StreamingError(
            f"{delta.op} of {delta.record_id!r}: no such record in table "
            f"{table.name!r}"
        )
    if delta.op == "delete":
        previous = table.remove(delta.record_id)
        return AppliedDelta(
            delta.op, delta.side, delta.record_id, None, previous
        )
    # update: merge the new values over the existing record's.
    merged = table.get(delta.record_id).as_dict()
    merged.update(delta.values or {})
    record = Record(delta.record_id, merged)
    try:
        previous = table.replace(record)
    except SchemaError as error:
        raise StreamingError(str(error)) from error
    return AppliedDelta(delta.op, delta.side, delta.record_id, record, previous)
