"""Streaming session: live matching state under record-level data deltas.

The paper's debugging loop (§2, Figure 1) holds the *data* fixed and
iterates on the *rules*; :class:`StreamingSession` lifts that restriction.
It wraps a :class:`~repro.core.session.DebugSession` and keeps its
materialized :class:`~repro.core.state.MatchState` — memo, bitmaps,
labels, attribution — equivalent to a from-scratch block+match of the
current tables while records stream in, change, and disappear.

Applying a :class:`~repro.streaming.deltas.DeltaBatch` does, per batch:

1. apply each delta to the live tables and ask the blocker for the exact
   candidate-pair delta (:meth:`~repro.blocking.base.Blocker.pairs_for_delta`);
2. rebuild the candidate set as *survivors in their old order* followed by
   the net-new pairs (sorted), and gather every surviving fact into a new
   state via :meth:`~repro.core.state.MatchState.remapped` — an O(pairs)
   numpy gather, no re-evaluation;
3. forget all facts about surviving pairs incident to touched records
   (:meth:`~repro.core.state.MatchState.forget_pairs` — their feature
   values are stale);
4. re-match only the *affected* pairs — net-new plus invalidated — with
   the same DM+EE kernel a full run uses, recording into the state; the
   re-match dispatches to :mod:`repro.parallel` when the cost model says
   the affected set is worth a pool.

Soundness of the rule-editing algorithms (7–10) is preserved because the
state transformation only ever *removes* facts (forget) or *moves* them
(remap), never asserts one — and the re-match records facts through the
identical observation path as the initial run.  A rule edit applied after
any number of batches therefore sees a state indistinguishable from one
built by blocking and matching the current tables from scratch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from ..blocking.base import Blocker
from ..core.cost_model import per_pair_cost
from ..core.matchers import MatchResult, PairEvaluator, TraceLog
from ..core.memo import ArrayMemo, HashMemo
from ..core.session import DebugSession
from ..core.stats import MatchStats
from ..data.pairs import CandidateSet, PairId
from ..data.table import Table
from ..errors import StreamingError
from ..observability import maybe_span, record_batch_result
from .deltas import Delta, DeltaBatch, apply_delta, validate_batch

#: default affected-set size above which ingest dispatches to the pool
#: when no cost estimates are available.
DEFAULT_PARALLEL_THRESHOLD_PAIRS = 2000
#: default predicted re-match seconds above which ingest dispatches to the
#: pool when cost estimates are available.
DEFAULT_PARALLEL_THRESHOLD_SECONDS = 0.05


@dataclass
class BatchResult:
    """Outcome of one :meth:`StreamingSession.ingest` call."""

    #: per-batch counters (deltas_applied, pairs_gained/lost/invalidated,
    #: pairs_evaluated, feature computations/hits, elapsed_seconds;
    #: ``pairs_matched`` counts affected pairs labeled as matches by
    #: *this* batch, so summing batches never double-counts).
    stats: MatchStats
    #: net-new candidate pairs (present after, absent before the batch).
    gained: Tuple[PairId, ...]
    #: net-lost candidate pairs (present before, absent after the batch).
    lost: Tuple[PairId, ...]
    #: indices (post-batch) of the pairs that were re-matched.
    affected_indices: Tuple[int, ...]
    #: True when the re-match ran on the parallel engine.
    executed_parallel: bool = False
    #: total matches in the state after this batch (a snapshot, not a
    #: counter — kept out of :attr:`stats` so batch sums stay additive).
    match_count: int = 0

    @property
    def affected(self) -> int:
        return len(self.affected_indices)

    def summary(self) -> str:
        where = "parallel" if self.executed_parallel else "serial"
        return f"{self.stats.delta_summary()} [{where}]"


class StreamingSession:
    """A debugging session whose underlying tables accept deltas.

    Owns the live tables, the (delta-capable) blocker, and a wrapped
    :class:`~repro.core.session.DebugSession`.  Rule edits go through
    :meth:`apply` exactly as on a plain session; data edits go through
    :meth:`ingest`.  The two interleave freely.
    """

    def __init__(
        self,
        table_a: Table,
        table_b: Table,
        blocker: Blocker,
        function,
        gold: Optional[Set[PairId]] = None,
        workers: int = 1,
        parallel_threshold_pairs: int = DEFAULT_PARALLEL_THRESHOLD_PAIRS,
        parallel_threshold_seconds: float = DEFAULT_PARALLEL_THRESHOLD_SECONDS,
        **session_kwargs,
    ):
        self.table_a = table_a
        self.table_b = table_b
        self.blocker = blocker
        self.workers = workers
        self.parallel_threshold_pairs = parallel_threshold_pairs
        self.parallel_threshold_seconds = parallel_threshold_seconds
        candidates = blocker.block(table_a, table_b)
        self.session = DebugSession(candidates, function, gold=gold, **session_kwargs)
        self.batch_history: List[BatchResult] = []
        self._restored_run_stats: Optional[MatchStats] = None
        self._restored_batch_stats: Optional[MatchStats] = None
        self._restored_batches = 0

    @classmethod
    def adopt(
        cls,
        session: DebugSession,
        table_a: Table,
        table_b: Table,
        blocker: Blocker,
        workers: int = 1,
        parallel_threshold_pairs: int = DEFAULT_PARALLEL_THRESHOLD_PAIRS,
        parallel_threshold_seconds: float = DEFAULT_PARALLEL_THRESHOLD_SECONDS,
    ) -> "StreamingSession":
        """Wrap an existing (already run) session without re-matching.

        Re-blocks once to warm the blocker's delta index and verifies the
        blocker reproduces the session's candidate set — adopting a
        session under a *different* blocker would silently desynchronize
        state from blocking, so that raises
        :class:`~repro.errors.StreamingError`.
        """
        produced = set(blocker.block(table_a, table_b).id_pairs())
        owned = set(session.candidates.id_pairs())
        if produced != owned:
            raise StreamingError(
                f"blocker {blocker.name!r} does not reproduce the session's "
                f"candidate set ({len(produced ^ owned)} pairs differ); "
                f"adopt with the blocker that built the session"
            )
        streaming = cls.__new__(cls)
        streaming.table_a = table_a
        streaming.table_b = table_b
        streaming.blocker = blocker
        streaming.workers = workers
        streaming.parallel_threshold_pairs = parallel_threshold_pairs
        streaming.parallel_threshold_seconds = parallel_threshold_seconds
        streaming.session = session
        streaming.batch_history = []
        streaming._restored_run_stats = None
        streaming._restored_batch_stats = None
        streaming._restored_batches = 0
        return streaming

    # ------------------------------------------------------------------
    # Delegation to the wrapped session (rule-side operations)
    # ------------------------------------------------------------------

    def run(self, workers: int = 1) -> MatchResult:
        return self.session.run(workers=workers)

    def apply(self, change):
        """Apply one rule edit incrementally (Algorithms 7-10)."""
        return self.session.apply(change)

    def metrics(self):
        return self.session.metrics()

    def explain(self, a_id: str, b_id: str):
        return self.session.explain(a_id, b_id)

    def refine(self, config=None, **refine_kwargs):
        """Run the automated refinement search (see
        :meth:`repro.core.session.DebugSession.refine`)."""
        return self.session.refine(config=config, **refine_kwargs)

    @property
    def candidates(self) -> CandidateSet:
        return self.session.candidates

    @property
    def state(self):
        return self.session.state

    @property
    def function(self):
        return self.session.function

    @property
    def observability(self):
        """The wrapped session's Observability (None = not collecting)."""
        return self.session.observability

    # ------------------------------------------------------------------
    # Streaming ingestion
    # ------------------------------------------------------------------

    def ingest(
        self, batch: Union[DeltaBatch, Sequence[Delta], Delta]
    ) -> BatchResult:
        """Apply a delta batch atomically, re-matching only affected pairs.

        The whole batch is validated against the live tables before
        anything mutates (:func:`~repro.streaming.deltas.validate_batch`),
        so a batch that cannot apply in full raises
        :class:`~repro.errors.StreamingError` with tables, blocker index,
        and matching state all unchanged.  Should application still fail
        partway (e.g. a blocker bug), the tables and the blocker's delta
        index are rolled back to their pre-batch contents before the
        exception propagates — observers never see half a batch.
        """
        if isinstance(batch, Delta):
            batch = DeltaBatch([batch])
        elif not isinstance(batch, DeltaBatch):
            batch = DeltaBatch(batch)
        state = self.session._require_state()
        observability = self.observability
        stats = MatchStats()
        started = time.perf_counter()

        if len(batch) == 0:
            stats.elapsed_seconds = time.perf_counter() - started
            result = BatchResult(
                stats, (), (), (), match_count=state.match_count()
            )
            self.batch_history.append(result)
            if observability is not None:
                record_batch_result(observability.metrics, result)
            return result

        with maybe_span(observability, "ingest", deltas=len(batch)):
            with maybe_span(observability, "validate"):
                validate_batch(self.table_a, self.table_b, batch)

            # 1. Apply deltas to the tables; accumulate the blocking delta.
            #    Validation makes apply_delta infallible here; the rollback
            #    guards against unexpected failures (a blocker raising
            #    mid-chain would otherwise strand tables + index mid-batch).
            old_order = state.candidates.id_pairs()
            old_index = {
                pair_id: index for index, pair_id in enumerate(old_order)
            }
            current: Set[PairId] = set(old_order)
            saved_a = self.table_a.snapshot()
            saved_b = self.table_b.snapshot()
            saved_index = self.blocker.save_delta_index()
            with maybe_span(observability, "apply_deltas"):
                try:
                    for delta in batch:
                        applied = apply_delta(self.table_a, self.table_b, delta)
                        pair_delta = self.blocker.pairs_for_delta(
                            self.table_a, self.table_b, applied
                        )
                        current.difference_update(pair_delta.lost)
                        current.update(pair_delta.gained)
                        stats.deltas_applied += 1
                        stats.pairs_gained += len(pair_delta.gained)
                        stats.pairs_lost += len(pair_delta.lost)
                except Exception:
                    self.table_a.restore(saved_a)
                    self.table_b.restore(saved_b)
                    self.blocker.restore_delta_index(saved_index)
                    raise

            # 2. Rebuild candidates (survivors keep their relative order) and
            #    gather surviving facts into a state over the new index space.
            with maybe_span(observability, "remap"):
                net_new = sorted(current.difference(old_index))
                new_order = [
                    pair_id for pair_id in old_order if pair_id in current
                ] + net_new
                new_candidates = CandidateSet.from_id_pairs(
                    self.table_a, self.table_b, new_order
                )
                old_index_of = np.fromiter(
                    (old_index.get(pair_id, -1) for pair_id in new_order),
                    dtype=np.int64,
                    count=len(new_order),
                )
                new_state = state.remapped(new_candidates, old_index_of)

            # 3. Invalidate surviving pairs whose records the batch touched.
            with maybe_span(observability, "invalidate"):
                touched_a, touched_b = batch.touched_records()
                stale: Set[int] = set()
                for record_id in touched_a:
                    stale.update(
                        new_candidates.indices_for_record("a", record_id)
                    )
                for record_id in touched_b:
                    stale.update(
                        new_candidates.indices_for_record("b", record_id)
                    )
                invalidated = sorted(
                    index for index in stale if old_index_of[index] >= 0
                )
                new_state.forget_pairs(invalidated)
                stats.pairs_invalidated = len(invalidated)
                # Token caches key on record ids, so edited records must be
                # evicted too — the re-match would otherwise score against
                # pre-delta token sets.
                kernels = self.session.kernels
                if kernels is not None:
                    kernels.invalidate_records("a", touched_a)
                    kernels.invalidate_records("b", touched_b)

            # 4. Re-match exactly the affected pairs (net-new + invalidated).
            first_new = len(new_order) - len(net_new)
            affected = invalidated + list(range(first_new, len(new_order)))
            parallel = self._should_parallelize(len(affected))
            with maybe_span(
                observability,
                "rematch",
                affected=len(affected),
                parallel=parallel,
            ):
                if parallel:
                    self._rematch_parallel(new_state, affected, stats)
                else:
                    self._rematch_serial(new_state, affected, stats)

            self.session.candidates = new_candidates
            self.session.state = new_state
            if affected:
                stats.pairs_matched = int(
                    new_state.labels[np.asarray(affected, dtype=np.int64)].sum()
                )
            stats.elapsed_seconds = time.perf_counter() - started
            net_lost = tuple(sorted(set(old_order).difference(current)))
            result = BatchResult(
                stats=stats,
                gained=tuple(net_new),
                lost=net_lost,
                affected_indices=tuple(affected),
                executed_parallel=parallel,
                match_count=new_state.match_count(),
            )
            self.batch_history.append(result)
            if observability is not None:
                record_batch_result(observability.metrics, result)
                monitor = getattr(observability, "drift_monitor", None)
                if monitor is not None:
                    monitor.after_ingest(self)
            return result

    # ------------------------------------------------------------------
    # Re-matching strategies
    # ------------------------------------------------------------------

    def _rematch_serial(self, state, affected: Sequence[int], stats: MatchStats) -> None:
        observability = self.observability
        profiler = (
            observability.profiler if observability is not None else None
        )
        if self.session._resolve_engine(state.function) == "columnar":
            # Set-at-a-time re-match: one executor pass over the affected
            # index set, recording into the state exactly as a full
            # columnar run would (bit-identical to the scalar loop below).
            from ..engine import ColumnarExecutor, plan_function

            plan = plan_function(
                state.function,
                kernels=state.kernels,
                estimates=self.session.estimates,
                check_cache_first=self.session.check_cache_first,
            )
            executor = ColumnarExecutor(
                plan,
                state.candidates,
                state.memo,
                stats,
                recorder=state,
                profiler=profiler,
                kernels=state.kernels,
            )
            rows = np.asarray(affected, dtype=np.int64)
            state.labels[rows] = executor.match_rows(rows)
            if observability is not None:
                executor.report_metrics(observability.metrics)
        else:
            evaluator = PairEvaluator(
                stats,
                memo=state.memo,
                recorder=state,
                check_cache_first=self.session.check_cache_first,
                profiler=profiler,
                kernels=state.kernels,
            )
            rules = state.function.rules
            for index in affected:
                pair = state.candidates[index]
                state.labels[index] = (
                    evaluator.first_matching_rule(pair, rules) is not None
                )
        stats.pairs_evaluated += len(affected)

    def _rematch_parallel(self, state, affected: Sequence[int], stats: MatchStats) -> None:
        """Re-match the affected pairs on the process pool.

        The affected subset becomes a dense sub-candidate-set with its own
        cold memo and trace; results translate back through the
        local→global index map (memo via ``update_from``, trace facts via
        direct re-recording, labels via fancy indexing).  Equivalent to
        the serial path because affected pairs carry no prior facts.
        """
        from ..parallel import ParallelMatcher

        function = state.function
        sub_candidates = state.candidates.subset(affected)
        names = [feature.name for feature in function.features()]
        if isinstance(state.memo, ArrayMemo):
            sub_memo = ArrayMemo(len(sub_candidates), names)
        else:
            sub_memo = HashMemo(len(sub_candidates), names)
        trace = TraceLog()
        matcher = ParallelMatcher(
            workers=self.workers,
            memo=sub_memo,
            memo_backend="array" if isinstance(sub_memo, ArrayMemo) else "hash",
            check_cache_first=self.session.check_cache_first,
            recorder=trace,
            estimates=self.session.estimates,
            observability=self.observability,
            kernels=state.kernels,
            engine=self.session._resolve_engine(function),
        )
        result = matcher.run(function, sub_candidates)
        index_map = {local: affected[local] for local in range(len(affected))}
        state.memo.update_from(sub_memo, index_map=index_map)
        for local_index, rule_name, slot in trace.predicate_falses:
            state.record_predicate_false(affected[local_index], rule_name, slot)
        for local_index, rule_name in trace.rule_matches:
            state.record_rule_match(affected[local_index], rule_name)
        state.labels[np.asarray(affected, dtype=np.int64)] = result.labels
        run_stats = result.stats
        stats.feature_computations += run_stats.feature_computations
        stats.memo_hits += run_stats.memo_hits
        stats.predicate_evaluations += run_stats.predicate_evaluations
        stats.bound_skips += run_stats.bound_skips
        stats.rule_evaluations += run_stats.rule_evaluations
        stats.pairs_evaluated += run_stats.pairs_evaluated
        stats.computations_by_feature += run_stats.computations_by_feature
        stats.phase_seconds.update(run_stats.phase_seconds)
        stats.worker_timings.extend(run_stats.worker_timings)

    def _should_parallelize(self, n_affected: int) -> bool:
        if self.workers <= 1 or n_affected == 0:
            return False
        estimates = self.session.estimates
        state = self.session.state
        if estimates is not None and state is not None:
            predicted = n_affected * per_pair_cost(state.function, estimates)
            return predicted >= self.parallel_threshold_seconds
        return n_affected >= self.parallel_threshold_pairs

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def seed_restored(
        self,
        run_stats: Optional[MatchStats] = None,
        batch_stats: Optional[MatchStats] = None,
        batches: int = 0,
    ) -> None:
        """Attach accounting restored from a checkpoint.

        A restored process has no :class:`~repro.core.matchers.MatchResult`
        objects to point at, but the *numbers* survive: the initial run's
        stats come back through :meth:`run_stats`, and pre-restart batch
        totals fold into :meth:`total_batch_stats` /
        :attr:`batches_ingested` so accounting is continuous across
        restarts.  Called by :func:`repro.core.persistence.load_session`.
        """
        self._restored_run_stats = run_stats
        self._restored_batch_stats = batch_stats
        self._restored_batches = batches

    def run_stats(self) -> Optional[MatchStats]:
        """Stats of the initial full run, surviving checkpoint restores."""
        if self.session.last_run is not None:
            return self.session.last_run.stats
        return self._restored_run_stats

    @property
    def batches_ingested(self) -> int:
        """Batches applied over the session's whole life, restarts included."""
        return self._restored_batches + len(self.batch_history)

    def total_batch_stats(self) -> MatchStats:
        """Sum of every ingested batch's counters (sequential semantics),
        including batches ingested before a checkpoint restore."""
        total = self._restored_batch_stats or MatchStats()
        for result in self.batch_history:
            total = total.merged_with(result.stats)
        return total

    def __repr__(self) -> str:
        return (
            f"StreamingSession({len(self.table_a)}x{len(self.table_b)} "
            f"records, {len(self.session.candidates)} pairs, "
            f"{len(self.batch_history)} batches ingested)"
        )
