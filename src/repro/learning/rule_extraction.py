"""Extract CNF rules from decision trees / forests (paper §7.1).

A positive root-to-leaf path is a conjunction of threshold conditions —
exactly a CNF rule with one predicate per clause.  The extractor:

1. collects each tree's positive paths,
2. canonicalizes per feature: the binding lower bound is the **max** of
   the path's ``>`` thresholds, the binding upper bound the **min** of its
   ``<=`` thresholds (a path may test one feature several times; only the
   tightest bounds matter),
3. drops vacuous bounds (``> t`` with t < 0, ``<= t`` with t >= 1 can
   never fail for similarity scores in [0, 1]),
4. deduplicates rules with identical predicate sets across trees,
5. names rules ``r1, r2, ...`` in extraction order.

The result has precisely the statistical shape the paper's experiments
need: many rules, ~3-7 predicates each, mixed ``>``/``<=`` operators, and
heavy feature sharing across rules (its Figure 4 samples show both
directions of threshold in one rule).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from ..core.rules import Feature, MatchingFunction, Predicate, Rule
from ..errors import ReproError
from .decision_tree import DecisionTree
from .feature_space import FeatureSpace
from .random_forest import RandomForest

#: Conditions on a path: (feature_index, "<=" or ">", threshold).
PathCondition = Tuple[int, str, float]


def canonicalize_path(
    conditions: Sequence[PathCondition],
) -> List[Tuple[int, str, float]]:
    """Collapse repeated per-feature conditions to their binding bounds.

    Returns one or two conditions per feature, in first-appearance order
    of the features (lower bound before upper bound for each feature).
    """
    lower: dict = {}
    upper: dict = {}
    order: List[int] = []
    for feature_index, op, threshold in conditions:
        if feature_index not in lower and feature_index not in upper:
            order.append(feature_index)
        if op == ">":
            if feature_index not in lower or threshold > lower[feature_index]:
                lower[feature_index] = threshold
        elif op == "<=":
            if feature_index not in upper or threshold < upper[feature_index]:
                upper[feature_index] = threshold
        else:
            raise ReproError(f"unexpected path operator {op!r}")
    result: List[Tuple[int, str, float]] = []
    for feature_index in order:
        if feature_index in lower and lower[feature_index] >= 0.0:
            result.append((feature_index, ">", lower[feature_index]))
        if feature_index in upper and upper[feature_index] < 1.0:
            result.append((feature_index, "<=", upper[feature_index]))
    return result


def path_to_rule(
    conditions: Sequence[PathCondition],
    features: Sequence[Feature],
    name: str,
    round_digits: Optional[int] = 3,
) -> Optional[Rule]:
    """Convert one canonicalized path into a rule (``None`` if vacuous)."""
    canonical = canonicalize_path(conditions)
    if not canonical:
        return None
    predicates = []
    for feature_index, op, threshold in canonical:
        if round_digits is not None:
            threshold = round(threshold, round_digits)
        predicates.append(Predicate(features[feature_index], op, threshold))
    return Rule(name, predicates)


def extract_rules(
    model: object,
    space: FeatureSpace,
    max_rules: Optional[int] = None,
    round_digits: Optional[int] = 3,
    min_purity: float = 0.9,
    min_support: int = 3,
    min_predicates: int = 2,
) -> MatchingFunction:
    """Extract the positive-path rule set of a tree or forest.

    ``model`` is a fitted :class:`DecisionTree` or :class:`RandomForest`.
    Duplicate rules (same predicate multiset) are merged; ``max_rules``
    caps the result (first-extracted wins, matching the determinism of the
    fitted model).

    Quality filters keep the DNF of per-tree paths from being far looser
    than the forest's majority vote: a path must end in a leaf of purity
    >= ``min_purity`` with >= ``min_support`` training pairs, and yield at
    least ``min_predicates`` non-vacuous predicates (single-predicate
    rules from noisy bootstrap leaves are the main precision killers).
    """
    if isinstance(model, RandomForest):
        trees: Iterable[DecisionTree] = model.trees
        if not model.trees:
            raise ReproError("forest is not fitted; call fit() first")
    elif isinstance(model, DecisionTree):
        trees = [model]
    else:
        raise ReproError(
            f"expected DecisionTree or RandomForest, got {type(model).__name__}"
        )

    features = list(space)
    rules: List[Rule] = []
    seen_bodies: set = set()
    counter = 0
    for tree in trees:
        for path in tree.positive_paths():
            counter += 1
            if path.purity < min_purity or path.n_samples < min_support:
                continue
            rule = path_to_rule(
                path.conditions, features, f"r{len(rules) + 1}", round_digits
            )
            if rule is None or len(rule) < min_predicates:
                continue
            body = frozenset(predicate.pid for predicate in rule.predicates)
            if body in seen_bodies:
                continue
            seen_bodies.add(body)
            rules.append(rule)
            if max_rules is not None and len(rules) >= max_rules:
                return MatchingFunction(rules)
    if not rules:
        raise ReproError(
            "no positive paths found — the model predicts no matches; "
            "check training labels"
        )
    return MatchingFunction(rules)
