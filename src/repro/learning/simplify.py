"""Rule-set simplification: remove semantically redundant rules.

Forest-extracted DNFs are redundant by construction — different trees
rediscover the same region of feature space with slightly different
thresholds.  Redundant rules never change the matching result (DNF is a
union), but they cost evaluation time on every *unmatched* pair (early
exit must falsify every rule) and they clutter the analyst's view.

The core relation is **subsumption**: rule ``general`` subsumes rule
``specific`` iff every pair matched by ``specific`` is also matched by
``general`` — then ``specific`` contributes nothing and can be dropped.

A sufficient (sound, incomplete) syntactic test: for every predicate of
``general`` there is a predicate of ``specific`` on the same slot that is
at least as strict.  (``specific`` may also carry extra predicates —
extra conjuncts only shrink its true-set further.)  The test is
incomplete in the face of cross-feature correlations, which is exactly
what makes it *safe*: we only remove rules that are provably redundant
for every possible dataset.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..core.rules import MatchingFunction, Predicate, Rule


def predicate_at_least_as_strict(candidate: Predicate, reference: Predicate) -> bool:
    """True iff ``candidate``'s true-set is a subset of ``reference``'s.

    Defined only for same-slot predicates (same feature, same bound
    direction); returns False otherwise.
    """
    if candidate.slot != reference.slot:
        return False
    if candidate.pid == reference.pid:
        return True
    return candidate.is_stricter_than(reference)


def rule_subsumes(general: Rule, specific: Rule) -> bool:
    """True iff ``general``'s true-set provably contains ``specific``'s.

    Every predicate of ``general`` must be matched by an equally-or-more
    strict same-slot predicate in ``specific``.
    """
    by_slot = {predicate.slot: predicate for predicate in specific.predicates}
    for predicate in general.predicates:
        counterpart = by_slot.get(predicate.slot)
        if counterpart is None:
            return False
        if not predicate_at_least_as_strict(counterpart, predicate):
            return False
    return True


def remove_subsumed(function: MatchingFunction) -> Tuple[MatchingFunction, List[str]]:
    """Drop every rule subsumed by another rule of the function.

    Returns the simplified function and the names of removed rules, in
    removal order.  When two rules subsume each other (identical
    true-sets), the one appearing *later* is removed, so the evaluation
    order of survivors is preserved.
    """
    rules = list(function.rules)
    removed: List[str] = []
    survivors: List[Rule] = []
    for index, rule in enumerate(rules):
        subsumed = False
        for other_index, other in enumerate(rules):
            if other_index == index or other.name in removed:
                continue
            if rule_subsumes(other, rule):
                # Mutual subsumption: keep the earlier one.
                if rule_subsumes(rule, other) and other_index > index:
                    continue
                subsumed = True
                break
        if subsumed:
            removed.append(rule.name)
        else:
            survivors.append(rule)
    if not removed:
        return function, []
    return MatchingFunction(survivors), removed


def redundancy_report(function: MatchingFunction) -> List[Tuple[str, str]]:
    """All (general, specific) subsumption pairs, for diagnostics."""
    report: List[Tuple[str, str]] = []
    for general in function.rules:
        for specific in function.rules:
            if general.name != specific.name and rule_subsumes(general, specific):
                report.append((general.name, specific.name))
    return report
