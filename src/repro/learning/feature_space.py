"""Feature-space enumeration — the analyst's palette of candidate features.

The paper's feature sets (Table 2's "total features") come from Magellan's
convention: enumerate (similarity function × attribute pair) combinations
appropriate to each attribute's type.  :func:`FeatureSpace.build` does the
same using the dataset's declared ``attribute_types``:

* ``short``   — identifier-like: equality + character measures + trigram.
* ``text``    — titles/names: token, corpus (TF-IDF family), and edit
  measures.
* ``numeric`` — numeric measures plus exact equality.
* ``category``— closed vocabulary: equality (and Jaro-Winkler for typo'd
  category labels).

Cross-attribute features (``cosine(modelno, title)`` — a modelno often
appears inside the other source's title) are added for every
(short × text) attribute pair, mirroring the paper's Table 3 rows like
"Cosine modelno/title".

Every feature gets its **own similarity instance** so that corpus-backed
measures can hold per-attribute-pair corpora; :meth:`bind_corpora` builds
those corpora from both tables' values.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from ..core.rules import Feature
from ..data.generators.base import Dataset
from ..errors import ReproError, UnknownFeatureError
from ..similarity.corpus import Corpus
from ..similarity.registry import make_similarity

#: Similarity names enumerated per attribute type.  Order matters only for
#: reproducibility of feature indices.
TYPE_SIMILARITIES: Dict[str, List[str]] = {
    "short": [
        "exact_match",
        "norm_exact_match",
        "jaro",
        "jaro_winkler",
        "levenshtein",
        "trigram",
        "prefix",
    ],
    "text": [
        "jaccard_ws",
        "cosine_ws",
        "overlap_ws",
        "dice_ws",
        "jaccard_qg3",
        "levenshtein",
        "monge_elkan",
        "tfidf_ws",
        "soft_tfidf_ws",
        "soundex",
    ],
    "numeric": [
        "exact_match",
        "numeric_exact",
        "rel_diff",
        "abs_diff_5",
    ],
    "category": [
        "exact_match",
        "jaro_winkler",
    ],
}

#: Similarities used for (short x text) cross-attribute features.
CROSS_SIMILARITIES: List[str] = ["cosine_ws", "jaccard_ws", "tfidf_ws"]


class FeatureSpace:
    """An ordered collection of features with name lookup and corpus binding."""

    def __init__(self, features: Sequence[Feature]):
        self._features: List[Feature] = list(features)
        self._by_name: Dict[str, Feature] = {}
        for feature in self._features:
            if feature.name in self._by_name:
                raise ReproError(f"duplicate feature name {feature.name!r}")
            self._by_name[feature.name] = feature

    @classmethod
    def build(cls, dataset: Dataset, include_cross: bool = True) -> "FeatureSpace":
        """Enumerate the feature space for a dataset from its attribute types."""
        features: List[Feature] = []
        for attribute in dataset.table_a.attributes:
            attribute_type = dataset.attribute_types.get(attribute, "text")
            sim_names = TYPE_SIMILARITIES.get(attribute_type)
            if sim_names is None:
                raise ReproError(
                    f"attribute {attribute!r} has unknown type "
                    f"{attribute_type!r}; expected one of "
                    f"{sorted(TYPE_SIMILARITIES)}"
                )
            for sim_name in sim_names:
                features.append(
                    Feature(make_similarity(sim_name), attribute, attribute)
                )
        if include_cross:
            shorts = [
                attribute
                for attribute in dataset.table_a.attributes
                if dataset.attribute_types.get(attribute) == "short"
            ]
            texts = [
                attribute
                for attribute in dataset.table_a.attributes
                if dataset.attribute_types.get(attribute) == "text"
            ]
            for short_attribute in shorts:
                for text_attribute in texts:
                    for sim_name in CROSS_SIMILARITIES:
                        features.append(
                            Feature(
                                make_similarity(sim_name),
                                short_attribute,
                                text_attribute,
                            )
                        )
        space = cls(features)
        space.bind_corpora(dataset)
        return space

    def bind_corpora(self, dataset: Dataset) -> None:
        """Build and attach corpora for corpus-backed features.

        Each feature's corpus covers the values of ``attr_a`` in table A
        plus ``attr_b`` in table B — the document population its IDF should
        reflect.  Corpora are shared between features with the same
        attribute pair and tokenizer to avoid redundant construction.
        """
        cache: Dict[tuple, Corpus] = {}
        for feature in self._features:
            if not feature.sim.needs_corpus:
                continue
            tokenizer = feature.sim.tokenizer
            key = (feature.attr_a, feature.attr_b, tokenizer.name)
            corpus = cache.get(key)
            if corpus is None:
                corpus = Corpus(tokenizer)
                corpus.add_values(dataset.table_a.values(feature.attr_a))
                corpus.add_values(dataset.table_b.values(feature.attr_b))
                cache[key] = corpus
            feature.sim.bind_corpus(corpus)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def get(self, name: str) -> Feature:
        feature = self._by_name.get(name)
        if feature is None:
            raise UnknownFeatureError(f"no feature named {name!r}")
        return feature

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def names(self) -> List[str]:
        return [feature.name for feature in self._features]

    def resolver(self):
        """A parser resolver that reuses this space's (corpus-bound) features.

        Unknown (sim, attr, attr) combinations fall back to fresh registry
        instances, so hand-written rules may exceed the enumerated space.
        """
        from ..core.parser import registry_resolver

        fallback = registry_resolver()

        def resolve(sim_name: str, attr_a: str, attr_b: str) -> Feature:
            for feature in self._features:
                if (
                    feature.sim.name == sim_name
                    and feature.attr_a == attr_a
                    and feature.attr_b == attr_b
                ):
                    return feature
            return fallback(sim_name, attr_a, attr_b)

        return resolve

    def __iter__(self) -> Iterator[Feature]:
        return iter(self._features)

    def __len__(self) -> int:
        return len(self._features)

    def __getitem__(self, index: int) -> Feature:
        return self._features[index]

    def __repr__(self) -> str:
        return f"FeatureSpace({len(self)} features)"
