"""Random forest of CART trees — the paper's rule source.

The paper's 255 products rules were "extracted from the random forest"
Magellan learned on the labeled Walmart/Amazon data (its Figure 4 shows two
of them).  We reproduce the pipeline: bootstrap-bagged CART trees with
√d feature subsampling, then positive root-to-leaf paths become CNF rules
(:mod:`repro.learning.rule_extraction`).
"""

from __future__ import annotations

import random
from typing import List, Optional

import numpy as np

from ..errors import ReproError
from .decision_tree import DecisionTree


class RandomForest:
    """Bagged ensemble of :class:`DecisionTree` classifiers."""

    def __init__(
        self,
        n_trees: int = 32,
        max_depth: int = 6,
        min_samples_leaf: int = 3,
        max_features: object = "sqrt",
        bootstrap: bool = True,
        seed: int = 0,
    ):
        if n_trees < 1:
            raise ReproError(f"n_trees must be >= 1, got {n_trees}")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.seed = seed
        self.trees: List[DecisionTree] = []

    def fit(self, matrix: np.ndarray, labels: np.ndarray) -> "RandomForest":
        if len(matrix) == 0:
            raise ReproError("cannot fit a forest on zero samples")
        rng = random.Random(self.seed)
        labels = labels.astype(bool)
        self.trees = []
        n = len(matrix)
        for tree_index in range(self.n_trees):
            if self.bootstrap:
                rows = [rng.randrange(n) for _ in range(n)]
                sample_matrix = matrix[rows]
                sample_labels = labels[rows]
                # A bootstrap that lost every positive (or negative) teaches
                # nothing; resample until both classes are present.
                attempts = 0
                while (
                    sample_labels.all() or not sample_labels.any()
                ) and attempts < 10:
                    rows = [rng.randrange(n) for _ in range(n)]
                    sample_matrix = matrix[rows]
                    sample_labels = labels[rows]
                    attempts += 1
            else:
                sample_matrix, sample_labels = matrix, labels
            tree = DecisionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                seed=rng.randrange(2**31),
            )
            tree.fit(sample_matrix, sample_labels)
            self.trees.append(tree)
        return self

    def predict_one(self, vector: np.ndarray) -> bool:
        if not self.trees:
            raise ReproError("forest is not fitted; call fit() first")
        votes = sum(1 for tree in self.trees if tree.predict_one(vector))
        return votes * 2 > len(self.trees)

    def predict(self, matrix: np.ndarray) -> np.ndarray:
        return np.fromiter(
            (self.predict_one(row) for row in matrix), dtype=bool, count=len(matrix)
        )

    def __repr__(self) -> str:
        fitted = f"{len(self.trees)} trees" if self.trees else "unfitted"
        return f"RandomForest({fitted}, max_depth={self.max_depth})"
