"""CART-style decision tree over similarity feature vectors.

A minimal but correct binary classification tree: Gini impurity, midpoint
thresholds, optional per-node feature subsampling (for forests), depth and
leaf-size stopping.  Splits are ``value <= threshold`` (left) versus
``value > threshold`` (right) — the convention the rule extractor converts
into ``<=`` / ``>`` predicates, so tree semantics and extracted-rule
semantics coincide exactly.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ReproError


@dataclass
class TreeNode:
    """A node of the fitted tree.

    Internal nodes carry ``feature_index``/``threshold`` and two children;
    leaves carry a prediction with its support and purity.
    """

    feature_index: int = -1
    threshold: float = 0.0
    left: Optional["TreeNode"] = None
    right: Optional["TreeNode"] = None
    prediction: bool = False
    n_samples: int = 0
    purity: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    def depth(self) -> int:
        if self.is_leaf:
            return 0
        return 1 + max(self.left.depth(), self.right.depth())


@dataclass(frozen=True)
class PositivePath:
    """One positive root-to-leaf path with its leaf's quality signals."""

    conditions: Tuple[Tuple[int, str, float], ...]
    n_samples: int
    purity: float


def _gini(positives: int, total: int) -> float:
    if total == 0:
        return 0.0
    p = positives / total
    return 2.0 * p * (1.0 - p)


class DecisionTree:
    """Binary CART classifier.

    ``max_features`` per split: ``None`` = all, ``"sqrt"`` = √d (the
    random-forest default), or an int.
    """

    def __init__(
        self,
        max_depth: int = 6,
        min_samples_leaf: int = 3,
        min_samples_split: int = 6,
        max_features: Optional[object] = None,
        seed: int = 0,
    ):
        if max_depth < 1:
            raise ReproError(f"max_depth must be >= 1, got {max_depth}")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.seed = seed
        self.root: Optional[TreeNode] = None
        self._n_features = 0

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------

    def fit(self, matrix: np.ndarray, labels: np.ndarray) -> "DecisionTree":
        if matrix.ndim != 2:
            raise ReproError(f"matrix must be 2-D, got shape {matrix.shape}")
        if len(matrix) != len(labels):
            raise ReproError(
                f"matrix rows {len(matrix)} != labels {len(labels)}"
            )
        if len(matrix) == 0:
            raise ReproError("cannot fit a tree on zero samples")
        self._n_features = matrix.shape[1]
        rng = random.Random(self.seed)
        self.root = self._grow(matrix, labels.astype(bool), depth=0, rng=rng)
        return self

    def _feature_candidates(self, rng: random.Random) -> Sequence[int]:
        if self.max_features is None:
            return range(self._n_features)
        if self.max_features == "sqrt":
            k = max(1, int(math.sqrt(self._n_features)))
        else:
            k = max(1, min(int(self.max_features), self._n_features))
        return rng.sample(range(self._n_features), k)

    def _grow(
        self, matrix: np.ndarray, labels: np.ndarray, depth: int, rng: random.Random
    ) -> TreeNode:
        total = len(labels)
        positives = int(labels.sum())
        purity = max(positives, total - positives) / total
        leaf = TreeNode(
            prediction=positives * 2 >= total and positives > 0,
            n_samples=total,
            purity=purity,
        )
        if (
            depth >= self.max_depth
            or total < self.min_samples_split
            or positives == 0
            or positives == total
        ):
            return leaf

        split = self._best_split(matrix, labels, rng)
        if split is None:
            return leaf
        feature_index, threshold = split
        left_mask = matrix[:, feature_index] <= threshold
        node = TreeNode(
            feature_index=feature_index,
            threshold=threshold,
            n_samples=total,
            purity=purity,
        )
        node.left = self._grow(matrix[left_mask], labels[left_mask], depth + 1, rng)
        node.right = self._grow(matrix[~left_mask], labels[~left_mask], depth + 1, rng)
        return node

    def _best_split(
        self, matrix: np.ndarray, labels: np.ndarray, rng: random.Random
    ) -> Optional[Tuple[int, float]]:
        total = len(labels)
        parent_impurity = _gini(int(labels.sum()), total)
        best_gain = 1e-12
        best: Optional[Tuple[int, float]] = None
        for feature_index in self._feature_candidates(rng):
            column = matrix[:, feature_index]
            order = np.argsort(column, kind="stable")
            sorted_values = column[order]
            sorted_labels = labels[order]
            positives_left = 0
            # Scan split positions between distinct adjacent values.
            cumulative_positives = np.cumsum(sorted_labels)
            total_positives = int(cumulative_positives[-1])
            for position in range(self.min_samples_leaf, total - self.min_samples_leaf + 1):
                if position == 0 or position == total:
                    continue
                if sorted_values[position - 1] == sorted_values[position]:
                    continue
                left_total = position
                left_positives = int(cumulative_positives[position - 1])
                right_total = total - left_total
                right_positives = total_positives - left_positives
                weighted = (
                    left_total * _gini(left_positives, left_total)
                    + right_total * _gini(right_positives, right_total)
                ) / total
                gain = parent_impurity - weighted
                if gain > best_gain:
                    best_gain = gain
                    threshold = (
                        sorted_values[position - 1] + sorted_values[position]
                    ) / 2.0
                    # The midpoint of two nearly-equal floats can round up
                    # to the larger value, which would send the whole right
                    # side left and produce an empty child; pin the
                    # threshold strictly below the upper value.
                    if threshold >= sorted_values[position]:
                        threshold = sorted_values[position - 1]
                    best = (feature_index, float(threshold))
        return best

    # ------------------------------------------------------------------
    # Prediction / introspection
    # ------------------------------------------------------------------

    def predict_one(self, vector: np.ndarray) -> bool:
        node = self._require_fitted()
        while not node.is_leaf:
            node = node.left if vector[node.feature_index] <= node.threshold else node.right
        return node.prediction

    def predict(self, matrix: np.ndarray) -> np.ndarray:
        return np.fromiter(
            (self.predict_one(row) for row in matrix), dtype=bool, count=len(matrix)
        )

    def positive_paths(self) -> List["PositivePath"]:
        """All root-to-leaf paths ending in a positive leaf.

        Each path carries ``(feature_index, op, threshold)`` conditions
        with op in ``{"<=", ">"}`` plus the leaf's support and purity —
        the raw material (and quality signals) for rule extraction.
        """
        root = self._require_fitted()
        paths: List[PositivePath] = []

        def walk(node: TreeNode, conditions: List[Tuple[int, str, float]]) -> None:
            if node.is_leaf:
                if node.prediction:
                    paths.append(
                        PositivePath(
                            conditions=tuple(conditions),
                            n_samples=node.n_samples,
                            purity=node.purity,
                        )
                    )
                return
            conditions.append((node.feature_index, "<=", node.threshold))
            walk(node.left, conditions)
            conditions.pop()
            conditions.append((node.feature_index, ">", node.threshold))
            walk(node.right, conditions)
            conditions.pop()

        walk(root, [])
        return paths

    def leaf_count(self) -> int:
        root = self._require_fitted()

        def count(node: TreeNode) -> int:
            if node.is_leaf:
                return 1
            return count(node.left) + count(node.right)

        return count(root)

    def _require_fitted(self) -> TreeNode:
        if self.root is None:
            raise ReproError("tree is not fitted; call fit() first")
        return self.root

    def __repr__(self) -> str:
        if self.root is None:
            return "DecisionTree(unfitted)"
        return (
            f"DecisionTree(depth={self.root.depth()}, "
            f"leaves={self.leaf_count()})"
        )
