"""End-to-end workload builder: dataset → candidates → features → rules.

Every benchmark and example starts from a :class:`Workload` — the complete
reproduction of the paper's experimental setup for one dataset:

* the two tables and gold labels (synthetic twins of Table 2's datasets),
* the blocked candidate set,
* the enumerated feature space (Table 2's "total features"),
* a learned rule set in DNF (the paper's "rules" column — 255 for
  products), extracted from a random forest exactly as §7.1 describes.

Construction is deterministic in ``seed``, so two processes building
``build_workload("products")`` benchmark the *same* matching task.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from ..blocking.base import Blocker
from ..blocking.overlap import OverlapBlocker
from ..core.rules import MatchingFunction
from ..data.datasets import load_dataset
from ..data.generators.base import Dataset
from ..data.pairs import CandidateSet, PairId
from ..errors import ReproError
from .feature_space import FeatureSpace
from .random_forest import RandomForest
from .rule_extraction import extract_rules
from .vectorize import build_labeled_sample

#: Attribute each dataset blocks on (its most token-rich text attribute),
#: plus the overlap threshold: long decorated titles (products, breakfast)
#: can demand two shared tokens; short names (restaurants, video games)
#: would lose too many true matches at two, so they use one shared token
#: with a stop-token filter to keep the candidate set from exploding.
BLOCKING_ATTRIBUTES: Dict[str, str] = {
    "products": "title",
    "restaurants": "name",
    "books": "title",
    "breakfast": "title",
    "movies": "title",
    "videogames": "title",
    "people": "name",
}

_BLOCKING_MIN_OVERLAP: Dict[str, int] = {
    "products": 2,
    "breakfast": 2,
    "restaurants": 1,
    "books": 1,
    "movies": 1,
    "videogames": 1,
    "people": 1,
}


@dataclass
class Workload:
    """One fully prepared matching task."""

    dataset: Dataset
    candidates: CandidateSet
    space: FeatureSpace
    function: MatchingFunction

    @property
    def gold(self) -> Set[PairId]:
        return self.dataset.gold

    def used_feature_count(self) -> int:
        """Features actually referenced by the rules (Table 2 "used")."""
        return len(self.function.features())

    def summary(self) -> str:
        """Table 2-style row for this workload."""
        return (
            f"{self.dataset.name}: |A|={len(self.dataset.table_a)} "
            f"|B|={len(self.dataset.table_b)} "
            f"pairs={len(self.candidates)} rules={len(self.function)} "
            f"used_features={self.used_feature_count()} "
            f"total_features={len(self.space)}"
        )


def default_blocker(dataset_name: str) -> Blocker:
    """The blocker each dataset's workload uses by default."""
    attribute = BLOCKING_ATTRIBUTES.get(dataset_name)
    if attribute is None:
        raise ReproError(
            f"no default blocker for dataset {dataset_name!r}; "
            f"pass one explicitly"
        )
    return OverlapBlocker(
        attribute,
        min_overlap=_BLOCKING_MIN_OVERLAP.get(dataset_name, 1),
        stop_fraction=0.15,
    )


def _training_recall(function: MatchingFunction, sample) -> float:
    """Fraction of the labeled sample's positives the DNF matches."""
    positives = 0
    recalled = 0
    for row, is_match in zip(sample.matrix, sample.labels):
        if not is_match:
            continue
        positives += 1
        scores = dict(zip(sample.feature_names, row))
        if function.evaluate_with(scores):
            recalled += 1
    return recalled / positives if positives else 0.0


def build_workload(
    dataset_name: str = "products",
    seed: int = 7,
    scale: float = 1.0,
    blocker: Optional[Blocker] = None,
    n_trees: int = 48,
    max_depth: int = 6,
    negative_ratio: float = 3.0,
    max_rules: Optional[int] = 255,
) -> Workload:
    """Build the full experimental workload for one dataset.

    ``max_rules`` defaults to 255 — the paper's products rule count; the
    forest size is chosen so the products workload actually reaches it.
    """
    dataset = load_dataset(dataset_name, seed=seed, scale=scale)
    blocker = blocker or default_blocker(dataset_name)
    candidates = blocker.block(dataset.table_a, dataset.table_b)
    space = FeatureSpace.build(dataset)
    sample = build_labeled_sample(
        space, candidates, dataset.gold, negative_ratio=negative_ratio, seed=seed
    )
    forest = RandomForest(
        n_trees=n_trees,
        max_depth=max_depth,
        max_features="sqrt",
        seed=seed,
    )
    forest.fit(sample.matrix, sample.labels)
    # Quality filters are relaxed progressively: datasets with a dominant
    # near-key (restaurants' phone, books' isbn) legitimately separate on
    # one predicate, which the strictest setting would filter down to a
    # rule set that misses most training positives.  Accept the first
    # filter level whose extracted DNF still recalls the training matches.
    function = None
    best_recall = -1.0
    for min_predicates, min_purity, min_support in (
        (2, 0.9, 3),
        (1, 0.9, 3),
        (1, 0.5, 1),
    ):
        try:
            candidate_function = extract_rules(
                forest,
                space,
                max_rules=max_rules,
                min_predicates=min_predicates,
                min_purity=min_purity,
                min_support=min_support,
            )
        except ReproError:
            continue
        recall = _training_recall(candidate_function, sample)
        if recall > best_recall:
            best_recall = recall
            function = candidate_function
        if recall >= 0.8:
            break
    if function is None:
        raise ReproError(
            f"could not extract any rules for {dataset_name!r}; the forest "
            f"predicts no matches"
        )
    return Workload(
        dataset=dataset, candidates=candidates, space=space, function=function
    )
