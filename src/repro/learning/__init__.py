"""Rule learning substrate: feature spaces, CART forest, rule extraction,
and the end-to-end workload builder reproducing the paper's setup."""

from .decision_tree import DecisionTree, TreeNode
from .feature_space import CROSS_SIMILARITIES, TYPE_SIMILARITIES, FeatureSpace
from .random_forest import RandomForest
from .rule_extraction import canonicalize_path, extract_rules, path_to_rule
from .simplify import redundancy_report, remove_subsumed, rule_subsumes
from .vectorize import LabeledSample, build_labeled_sample, compute_matrix
from .workload import BLOCKING_ATTRIBUTES, Workload, build_workload, default_blocker

__all__ = [
    "FeatureSpace",
    "TYPE_SIMILARITIES",
    "CROSS_SIMILARITIES",
    "DecisionTree",
    "TreeNode",
    "RandomForest",
    "extract_rules",
    "canonicalize_path",
    "path_to_rule",
    "rule_subsumes",
    "remove_subsumed",
    "redundancy_report",
    "LabeledSample",
    "compute_matrix",
    "build_labeled_sample",
    "Workload",
    "build_workload",
    "default_blocker",
    "BLOCKING_ATTRIBUTES",
]
