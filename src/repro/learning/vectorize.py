"""Turn candidate pairs into feature vectors for rule learning.

The forest trainer and the rule extractor operate on a dense
``n_pairs × n_features`` matrix of similarity scores.  This is exactly the
"precompute everything" regime the paper argues against for *interactive*
matching — but for *training* on a small labeled sample it is the right
tool, just as the paper's authors used Magellan's batch feature vectors to
learn their 255 rules in the first place.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple

import numpy as np

from ..data.pairs import CandidateSet, PairId
from ..errors import ReproError
from .feature_space import FeatureSpace


@dataclass
class LabeledSample:
    """Training material: pair indices, their feature matrix, and labels."""

    indices: List[int]
    matrix: np.ndarray       # (n_pairs, n_features) float64
    labels: np.ndarray       # (n_pairs,) bool
    feature_names: List[str]

    @property
    def positives(self) -> int:
        return int(self.labels.sum())

    @property
    def negatives(self) -> int:
        return len(self.labels) - self.positives

    def __repr__(self) -> str:
        return (
            f"LabeledSample({len(self.indices)} pairs: "
            f"{self.positives} +, {self.negatives} -; "
            f"{self.matrix.shape[1]} features)"
        )


def _hardest_negatives(
    candidates: CandidateSet, pool: Sequence[int], count: int
) -> List[int]:
    """The ``count`` negative pairs with the highest whole-record token
    overlap — cheap to compute and a good proxy for "confusable"."""
    scored: List[Tuple[float, int]] = []
    for index in pool:
        pair = candidates[index]
        tokens_a = set()
        tokens_b = set()
        for attribute in candidates.table_a.attributes:
            value_a = pair.record_a.get(attribute)
            value_b = pair.record_b.get(attribute)
            if value_a is not None:
                tokens_a.update(str(value_a).lower().split())
            if value_b is not None:
                tokens_b.update(str(value_b).lower().split())
        union = len(tokens_a | tokens_b)
        overlap = len(tokens_a & tokens_b) / union if union else 0.0
        scored.append((overlap, index))
    scored.sort(key=lambda item: (-item[0], item[1]))
    return [index for _, index in scored[:count]]


def compute_matrix(
    space: FeatureSpace, candidates: CandidateSet, indices: Sequence[int]
) -> np.ndarray:
    """Dense feature matrix for the selected pair indices."""
    matrix = np.empty((len(indices), len(space)), dtype=np.float64)
    for row, index in enumerate(indices):
        pair = candidates[index]
        for column, feature in enumerate(space):
            matrix[row, column] = feature.compute(pair.record_a, pair.record_b)
    return matrix


def build_labeled_sample(
    space: FeatureSpace,
    candidates: CandidateSet,
    gold: Set[PairId],
    negative_ratio: float = 3.0,
    hard_negative_fraction: float = 0.5,
    seed: int = 0,
) -> LabeledSample:
    """Assemble a balanced-ish training sample from the gold labels.

    All gold-positive candidates plus ``negative_ratio`` times as many
    negatives.  ``hard_negative_fraction`` of the negatives are *hard*:
    drawn from the candidates whose records share the most blocking-side
    tokens (near-misses such as sibling products), the rest uniform.
    Training against near-misses is what pushes the learner toward the
    long multi-predicate rules the paper's Figure 4 shows — easy random
    negatives separate on one predicate and teach nothing.  Mirrors how
    the paper's class projects labeled a sample of the candidate pairs.
    """
    if negative_ratio <= 0:
        raise ReproError(f"negative_ratio must be positive, got {negative_ratio}")
    if not 0.0 <= hard_negative_fraction <= 1.0:
        raise ReproError(
            f"hard_negative_fraction must be in [0, 1], got {hard_negative_fraction}"
        )
    positive_indices = candidates.gold_indices(gold)
    if not positive_indices:
        raise ReproError(
            "no gold matches survive blocking; cannot build a training sample"
        )
    positive_set = set(positive_indices)
    negative_pool = [
        index for index in range(len(candidates)) if index not in positive_set
    ]
    rng = random.Random(seed)
    wanted = min(len(negative_pool), round(len(positive_indices) * negative_ratio))
    hard_wanted = round(wanted * hard_negative_fraction)

    hard_indices: List[int] = []
    if hard_wanted > 0:
        hard_indices = _hardest_negatives(candidates, negative_pool, hard_wanted)
    remaining_pool = [index for index in negative_pool if index not in set(hard_indices)]
    uniform = rng.sample(remaining_pool, min(wanted - len(hard_indices), len(remaining_pool)))
    negative_indices = sorted(hard_indices + uniform)

    indices = positive_indices + negative_indices
    labels = np.zeros(len(indices), dtype=bool)
    labels[: len(positive_indices)] = True
    matrix = compute_matrix(space, candidates, indices)
    return LabeledSample(
        indices=indices,
        matrix=matrix,
        labels=labels,
        feature_names=space.names(),
    )
