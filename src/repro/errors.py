"""Exception hierarchy for the ``repro`` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to discriminate finer-grained failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class RuleParseError(ReproError):
    """Raised when the rule DSL parser encounters malformed input."""

    def __init__(self, message: str, text: str = "", position: int = -1):
        self.text = text
        self.position = position
        if position >= 0:
            message = f"{message} (at position {position} in {text!r})"
        super().__init__(message)


class UnknownSimilarityError(ReproError, KeyError):
    """Raised when a similarity function name is not in the registry."""


class UnknownFeatureError(ReproError, KeyError):
    """Raised when a feature id is not known to a memo or feature space."""


class SchemaError(ReproError):
    """Raised when a table or record violates the declared schema."""


class BlockingError(ReproError):
    """Raised when a blocker is misconfigured or given incompatible tables."""


class MatchingError(ReproError):
    """Raised when a matcher is asked to run in an inconsistent state."""


class StateError(ReproError):
    """Raised when incremental matching state is missing or stale."""


class ChangeError(ReproError):
    """Raised when an edit to the matching function cannot be applied."""


class EstimationError(ReproError):
    """Raised when cost/selectivity estimation is given unusable input."""


class StreamingError(ReproError):
    """Raised when a record-level delta cannot be validated or applied
    (unknown record id, duplicate insert, malformed delta)."""


class ParallelExecutionError(ReproError):
    """Raised when the parallel matching engine cannot complete a run even
    after retries and serial fallback (e.g. an unpicklable payload combined
    with a broken pool)."""


class RefinementError(ReproError):
    """Raised when the rule-refinement search is misconfigured or asked to
    run without the inputs it needs (no gold labels, no started state)."""
