"""repro — reproduction of *Towards Interactive Debugging of Rule-based
Entity Matching* (Panahi, Wu, Doan, Naughton; EDBT 2017).

Quickstart::

    from repro import build_workload, DebugSession, TightenPredicate

    workload = build_workload("products")
    session = DebugSession(
        workload.candidates, workload.function, gold=workload.gold
    )
    session.run()                                # full run (slow once)
    print(session.metrics().summary())
    rule = session.function.rules[0]
    session.apply(                               # milliseconds
        TightenPredicate(rule.name, rule.predicates[0].slot, 0.9)
    )
    print(session.metrics().summary())

Subpackages: :mod:`repro.core` (rule language, matchers, cost model,
ordering, incremental matching), :mod:`repro.similarity` (string measures),
:mod:`repro.data` (tables + six synthetic datasets), :mod:`repro.blocking`,
:mod:`repro.learning` (forest → rules), :mod:`repro.evaluation`,
:mod:`repro.parallel` (sharded matching over a process pool),
:mod:`repro.streaming` (incremental matching under record-level deltas),
:mod:`repro.engine` (columnar plan/executor evaluation engine).
"""

from .core import (
    AddPredicate,
    AddRule,
    ArrayMemo,
    Change,
    CostEstimator,
    DebugSession,
    DynamicMemoMatcher,
    EarlyExitMatcher,
    Feature,
    HashMemo,
    MatchingFunction,
    MatchResult,
    MatchState,
    MatchStats,
    PrecomputeMatcher,
    Predicate,
    RelaxPredicate,
    RemovePredicate,
    RemoveRule,
    RudimentaryMatcher,
    Rule,
    TightenPredicate,
    apply_change,
    brute_force_ordering,
    format_function,
    greedy_cost_ordering,
    greedy_reduction_ordering,
    independent_ordering,
    order_function,
    parse_function,
    parse_rule,
    random_ordering,
)
from .blocking import (
    AttributeEquivalenceBlocker,
    CartesianBlocker,
    OverlapBlocker,
    blocking_recall,
)
from .data import CandidateSet, Dataset, Record, Table, dataset_names, load_dataset
from .engine import (
    ColumnarExecutor,
    ColumnarMatcher,
    MatchPlan,
    apply_change_columnar,
    plan_function,
)
from .errors import ReproError
from .evaluation import confusion, precision_recall_f1
from .learning import FeatureSpace, RandomForest, Workload, build_workload, extract_rules
from .parallel import ParallelMatcher
from .refine import RefineConfig, RefinementReport, RefinementSearch
from .streaming import BatchResult, Delta, DeltaBatch, StreamingSession

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # high-level entry points
    "build_workload", "Workload", "DebugSession", "load_dataset",
    "dataset_names",
    # rule language
    "Feature", "Predicate", "Rule", "MatchingFunction",
    "parse_function", "parse_rule", "format_function",
    # matchers & state
    "RudimentaryMatcher", "EarlyExitMatcher", "PrecomputeMatcher",
    "DynamicMemoMatcher", "ParallelMatcher", "MatchResult", "MatchStats",
    "MatchState", "ArrayMemo", "HashMemo",
    # cost & ordering
    "CostEstimator", "random_ordering", "independent_ordering",
    "greedy_cost_ordering", "greedy_reduction_ordering",
    "brute_force_ordering", "order_function",
    # changes
    "Change", "AddPredicate", "RemovePredicate", "TightenPredicate",
    "RelaxPredicate", "AddRule", "RemoveRule", "apply_change",
    # columnar engine
    "ColumnarExecutor", "ColumnarMatcher", "MatchPlan",
    "apply_change_columnar", "plan_function",
    # data & blocking
    "Record", "Table", "CandidateSet", "Dataset",
    "CartesianBlocker", "AttributeEquivalenceBlocker", "OverlapBlocker",
    "blocking_recall",
    # streaming
    "Delta", "DeltaBatch", "BatchResult", "StreamingSession",
    # learning & evaluation
    "FeatureSpace", "RandomForest", "extract_rules",
    "confusion", "precision_recall_f1",
    # refinement
    "RefineConfig", "RefinementReport", "RefinementSearch",
    "ReproError",
]
