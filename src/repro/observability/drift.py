"""Cost-model drift detection.

The §4.4 cost model plans rule/predicate order from *estimates* taken on
a 1 % sample before the first run.  Estimates go stale: data deltas shift
selectivities, cache pressure and input growth shift per-feature costs,
and an edited rule set reaches different predicates.  This module
compares what the :class:`~repro.observability.profiler.Profiler`
*observed* against the session's
:class:`~repro.core.cost_model.Estimates` and answers the question the
analyst actually has: **would re-estimating change the chosen order?**

:func:`detect_drift` flags

* features whose observed mean cost is off by more than
  ``cost_tolerance``× (either direction),
* predicates whose observed selectivity moved more than
  ``selectivity_tolerance`` in absolute terms, and
* whether re-running the session's ordering strategy with observed
  feature costs substituted into the estimates yields a different
  rule/predicate order (selectivities stay sample-based — they enter the
  patched estimates unchanged, so the order check isolates *cost* drift;
  selectivity drift is reported separately).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..core.cost_model import Estimates
from ..core.ordering import order_function
from ..core.rules import MatchingFunction
from .profiler import Profiler

#: flag a feature when observed/estimated cost ratio exceeds this (or its
#: inverse) — 2x either way by default.
DEFAULT_COST_TOLERANCE = 2.0
#: flag a predicate when |observed - estimated| selectivity exceeds this.
DEFAULT_SELECTIVITY_TOLERANCE = 0.15

#: (rule name, predicate slots in order) — the shape the order check compares.
OrderSignature = Tuple[Tuple[str, Tuple[str, ...]], ...]


@dataclass
class FeatureDrift:
    """Observed-vs-estimated cost of one feature."""

    name: str
    estimated_cost: float
    observed_cost: float
    samples: int
    drifted: bool

    @property
    def ratio(self) -> float:
        if self.estimated_cost <= 0.0:
            return float("inf") if self.observed_cost > 0.0 else 1.0
        return self.observed_cost / self.estimated_cost


@dataclass
class PredicateDrift:
    """Observed-vs-estimated selectivity of one predicate."""

    pid: str
    estimated_selectivity: float
    observed_selectivity: float
    evaluations: int
    drifted: bool

    @property
    def delta(self) -> float:
        return self.observed_selectivity - self.estimated_selectivity


@dataclass
class DriftReport:
    """Everything :func:`detect_drift` concluded, renderable for the CLI."""

    features: List[FeatureDrift] = field(default_factory=list)
    predicates: List[PredicateDrift] = field(default_factory=list)
    order_before: OrderSignature = ()
    order_after: OrderSignature = ()
    ordering_strategy: str = "algorithm6"
    cost_tolerance: float = DEFAULT_COST_TOLERANCE
    selectivity_tolerance: float = DEFAULT_SELECTIVITY_TOLERANCE

    @property
    def order_changed(self) -> bool:
        return self.order_before != self.order_after

    def drifted_features(self) -> List[FeatureDrift]:
        return [drift for drift in self.features if drift.drifted]

    def drifted_predicates(self) -> List[PredicateDrift]:
        return [drift for drift in self.predicates if drift.drifted]

    @property
    def any_drift(self) -> bool:
        return (
            bool(self.drifted_features())
            or bool(self.drifted_predicates())
            or self.order_changed
        )

    def render(self) -> str:
        lines: List[str] = []
        flagged = self.drifted_features()
        if flagged:
            lines.append(
                f"feature cost drift (>{self.cost_tolerance:g}x, "
                f"{len(flagged)}/{len(self.features)} observed features):"
            )
            for drift in sorted(flagged, key=lambda d: d.ratio, reverse=True):
                lines.append(
                    f"  {drift.name}: est {drift.estimated_cost * 1e6:.2f}us "
                    f"-> obs {drift.observed_cost * 1e6:.2f}us "
                    f"({drift.ratio:.1f}x, {drift.samples} samples)"
                )
        else:
            lines.append(
                f"feature costs: no drift beyond {self.cost_tolerance:g}x "
                f"({len(self.features)} observed features)"
            )
        flagged = self.drifted_predicates()
        if flagged:
            lines.append(
                f"predicate selectivity drift (>|{self.selectivity_tolerance:g}|, "
                f"{len(flagged)}/{len(self.predicates)} observed predicates):"
            )
            for drift in sorted(flagged, key=lambda d: abs(d.delta), reverse=True):
                lines.append(
                    f"  {drift.pid}: est {drift.estimated_selectivity:.3f} "
                    f"-> obs {drift.observed_selectivity:.3f} "
                    f"({drift.delta:+.3f}, {drift.evaluations} evals)"
                )
        else:
            lines.append(
                f"predicate selectivities: no drift beyond "
                f"{self.selectivity_tolerance:g} "
                f"({len(self.predicates)} observed predicates)"
            )
        if self.order_changed:
            before = " > ".join(name for name, _slots in self.order_before)
            after = " > ".join(name for name, _slots in self.order_after)
            lines.append(
                f"ordering ({self.ordering_strategy}): WOULD CHANGE under "
                f"observed costs"
            )
            lines.append(f"  current:      {before}")
            lines.append(f"  re-estimated: {after}")
            lines.append("  -> consider 'reorder' / DebugSession.reorder()")
        else:
            lines.append(
                f"ordering ({self.ordering_strategy}): stable — re-estimation "
                f"would keep the current rule/predicate order"
            )
        return "\n".join(lines)


def order_signature(function: MatchingFunction) -> OrderSignature:
    """Rule order plus within-rule predicate slot order, for comparison."""
    return tuple(
        (rule.name, tuple(predicate.slot for predicate in rule.predicates))
        for rule in function.rules
    )


def detect_drift(
    function: MatchingFunction,
    estimates: Estimates,
    profile: Union[Profiler, dict],
    ordering_strategy: str = "algorithm6",
    cost_tolerance: float = DEFAULT_COST_TOLERANCE,
    selectivity_tolerance: float = DEFAULT_SELECTIVITY_TOLERANCE,
) -> DriftReport:
    """Compare observed costs/selectivities to ``estimates``.

    ``profile`` is a :class:`Profiler` or one of its snapshots (e.g.
    merged back from parallel workers).  Only features/predicates the
    profiler actually observed are compared — unobserved ones cannot have
    drifted observably.  The ordering check re-runs ``ordering_strategy``
    with observed mean feature costs patched into the estimates and
    reports whether the resulting rule/predicate order differs from
    ordering the same function with the original estimates.
    """
    profiler = (
        profile if isinstance(profile, Profiler) else Profiler.from_snapshot(profile)
    )

    feature_drifts: List[FeatureDrift] = []
    observed_costs: Dict[str, float] = {}
    for feature in function.features():
        observed = profiler.observed_feature_cost(feature.name)
        if observed is None or not estimates.has_feature(feature):
            continue
        estimated = estimates.cost(feature)
        observed_costs[feature.name] = observed
        ratio = observed / estimated if estimated > 0.0 else float("inf")
        drifted = ratio > cost_tolerance or ratio < 1.0 / cost_tolerance
        feature_drifts.append(
            FeatureDrift(
                name=feature.name,
                estimated_cost=estimated,
                observed_cost=observed,
                samples=profiler.feature_costs[feature.name].count,
                drifted=drifted,
            )
        )

    predicate_drifts: List[PredicateDrift] = []
    for rule in function.rules:
        for predicate in rule.predicates:
            observed = profiler.observed_selectivity(predicate.pid)
            if observed is None:
                continue
            try:
                estimated = estimates.selectivity(predicate)
            except Exception:
                continue  # feature not in the sample — nothing to compare
            predicate_drifts.append(
                PredicateDrift(
                    pid=predicate.pid,
                    estimated_selectivity=estimated,
                    observed_selectivity=observed,
                    evaluations=profiler.predicate_evals[predicate.pid],
                    drifted=abs(observed - estimated) > selectivity_tolerance,
                )
            )

    before: OrderSignature = ()
    after: OrderSignature = ()
    if observed_costs and ordering_strategy not in ("original", "random"):
        patched = estimates.with_feature_costs(observed_costs)
        before = order_signature(
            order_function(function, estimates, ordering_strategy)
        )
        after = order_signature(
            order_function(function, patched, ordering_strategy)
        )

    return DriftReport(
        features=feature_drifts,
        predicates=predicate_drifts,
        order_before=before,
        order_after=after,
        ordering_strategy=ordering_strategy,
        cost_tolerance=cost_tolerance,
        selectivity_tolerance=selectivity_tolerance,
    )


# ---------------------------------------------------------------------------
# Continuous monitoring + refine warm-start hints
# ---------------------------------------------------------------------------


def focus_rules_for_report(
    function: MatchingFunction, report: DriftReport
) -> Tuple[str, ...]:
    """Rules touched by the report's drift, in function order.

    A rule is implicated when one of its predicates drifted in
    selectivity, or when it uses a feature whose cost drifted.  This is
    the bridge from "what moved" to "where refinement should look".
    """
    drifted_pids = {drift.pid for drift in report.drifted_predicates()}
    drifted_features = {drift.name for drift in report.drifted_features()}
    names: List[str] = []
    for rule in function.rules:
        implicated = any(
            predicate.pid in drifted_pids
            or predicate.feature.name in drifted_features
            for predicate in rule.predicates
        )
        if implicated:
            names.append(rule.name)
    return tuple(names)


class DriftMonitor:
    """Re-runs :func:`detect_drift` every ``every`` streaming ingests.

    Attached to an :class:`~repro.observability.Observability` (see
    ``Observability.attach_drift_monitor``) and poked by
    ``StreamingSession.ingest``.  Each check records its outcome into the
    session's metrics registry (``drift.checks`` / ``drift.alerts``
    counters, ``drift.features_drifted`` / ``drift.predicates_drifted`` /
    ``drift.order_changed`` gauges), keeps a bounded report history, and
    derives **refinement warm-start hints**: the set of rules implicated
    by the latest drift, consumable as ``RefineConfig.focus_rules`` so
    the search only generates edits targeting what actually moved.
    """

    def __init__(
        self,
        every: int = 5,
        cost_tolerance: float = DEFAULT_COST_TOLERANCE,
        selectivity_tolerance: float = DEFAULT_SELECTIVITY_TOLERANCE,
        history_limit: int = 32,
    ):
        if every < 1:
            raise ValueError("every must be >= 1")
        self.every = int(every)
        self.cost_tolerance = cost_tolerance
        self.selectivity_tolerance = selectivity_tolerance
        self.history_limit = int(history_limit)
        self.ingests_seen = 0
        self.checks_run = 0
        self.checks_skipped = 0
        self.history: List[DriftReport] = []
        self.last_report: Optional[DriftReport] = None
        self._focus: Tuple[str, ...] = ()

    # ------------------------------------------------------------- hooks

    def after_ingest(self, streaming) -> Optional[DriftReport]:
        """Count one ingest; run a check when the cadence comes due."""
        self.ingests_seen += 1
        if self.ingests_seen % self.every:
            return None
        return self.check(streaming.session, streaming.observability)

    def check(self, session, observability) -> Optional[DriftReport]:
        """Run one drift check against ``session``'s live estimates.

        Returns ``None`` (and counts a skip) when the session has no
        estimates or no profiler — there is nothing to compare.
        """
        profiler = getattr(observability, "profiler", None) if observability else None
        estimates = getattr(session, "estimates", None)
        if profiler is None or estimates is None or not profiler.feature_costs:
            self.checks_skipped += 1
            return None
        report = detect_drift(
            session.function,
            estimates,
            profiler,
            ordering_strategy=getattr(session, "ordering_strategy", "algorithm6"),
            cost_tolerance=self.cost_tolerance,
            selectivity_tolerance=self.selectivity_tolerance,
        )
        self.checks_run += 1
        self.history.append(report)
        if len(self.history) > self.history_limit:
            del self.history[: len(self.history) - self.history_limit]
        self.last_report = report
        self._focus = focus_rules_for_report(session.function, report)
        metrics = getattr(observability, "metrics", None)
        if metrics is not None:
            metrics.counter("drift.checks").inc()
            metrics.gauge("drift.features_drifted").set(
                len(report.drifted_features())
            )
            metrics.gauge("drift.predicates_drifted").set(
                len(report.drifted_predicates())
            )
            metrics.gauge("drift.order_changed").set(
                1.0 if report.order_changed else 0.0
            )
            if report.any_drift:
                metrics.counter("drift.alerts").inc()
        return report

    # ------------------------------------------------------------- hints

    def focus_rules(self) -> Tuple[str, ...]:
        """Rules implicated by the most recent check (may be empty)."""
        return self._focus

    def refine_hints(self) -> dict:
        """Warm-start kwargs for ``DebugSession.refine``.

        Empty when the latest check saw no drift (or no check ran) —
        callers can always splat the result: ``session.refine(**hints)``.
        """
        if self.last_report is None or not self.last_report.any_drift:
            return {}
        if not self._focus:
            return {}
        return {"focus_rules": self._focus}

    def describe(self) -> dict:
        """JSON-ready state for the service observability snapshot."""
        return {
            "every": self.every,
            "ingests_seen": self.ingests_seen,
            "checks_run": self.checks_run,
            "checks_skipped": self.checks_skipped,
            "history_length": len(self.history),
            "last_any_drift": (
                self.last_report.any_drift if self.last_report else None
            ),
            "focus_rules": list(self._focus),
            "refine_hints": {
                key: list(value) for key, value in self.refine_hints().items()
            },
        }
