"""Cost-model drift detection.

The §4.4 cost model plans rule/predicate order from *estimates* taken on
a 1 % sample before the first run.  Estimates go stale: data deltas shift
selectivities, cache pressure and input growth shift per-feature costs,
and an edited rule set reaches different predicates.  This module
compares what the :class:`~repro.observability.profiler.Profiler`
*observed* against the session's
:class:`~repro.core.cost_model.Estimates` and answers the question the
analyst actually has: **would re-estimating change the chosen order?**

:func:`detect_drift` flags

* features whose observed mean cost is off by more than
  ``cost_tolerance``× (either direction),
* predicates whose observed selectivity moved more than
  ``selectivity_tolerance`` in absolute terms, and
* whether re-running the session's ordering strategy with observed
  feature costs substituted into the estimates yields a different
  rule/predicate order (selectivities stay sample-based — they enter the
  patched estimates unchanged, so the order check isolates *cost* drift;
  selectivity drift is reported separately).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..core.cost_model import Estimates
from ..core.ordering import order_function
from ..core.rules import MatchingFunction
from .profiler import Profiler

#: flag a feature when observed/estimated cost ratio exceeds this (or its
#: inverse) — 2x either way by default.
DEFAULT_COST_TOLERANCE = 2.0
#: flag a predicate when |observed - estimated| selectivity exceeds this.
DEFAULT_SELECTIVITY_TOLERANCE = 0.15

#: (rule name, predicate slots in order) — the shape the order check compares.
OrderSignature = Tuple[Tuple[str, Tuple[str, ...]], ...]


@dataclass
class FeatureDrift:
    """Observed-vs-estimated cost of one feature."""

    name: str
    estimated_cost: float
    observed_cost: float
    samples: int
    drifted: bool

    @property
    def ratio(self) -> float:
        if self.estimated_cost <= 0.0:
            return float("inf") if self.observed_cost > 0.0 else 1.0
        return self.observed_cost / self.estimated_cost


@dataclass
class PredicateDrift:
    """Observed-vs-estimated selectivity of one predicate."""

    pid: str
    estimated_selectivity: float
    observed_selectivity: float
    evaluations: int
    drifted: bool

    @property
    def delta(self) -> float:
        return self.observed_selectivity - self.estimated_selectivity


@dataclass
class DriftReport:
    """Everything :func:`detect_drift` concluded, renderable for the CLI."""

    features: List[FeatureDrift] = field(default_factory=list)
    predicates: List[PredicateDrift] = field(default_factory=list)
    order_before: OrderSignature = ()
    order_after: OrderSignature = ()
    ordering_strategy: str = "algorithm6"
    cost_tolerance: float = DEFAULT_COST_TOLERANCE
    selectivity_tolerance: float = DEFAULT_SELECTIVITY_TOLERANCE

    @property
    def order_changed(self) -> bool:
        return self.order_before != self.order_after

    def drifted_features(self) -> List[FeatureDrift]:
        return [drift for drift in self.features if drift.drifted]

    def drifted_predicates(self) -> List[PredicateDrift]:
        return [drift for drift in self.predicates if drift.drifted]

    @property
    def any_drift(self) -> bool:
        return (
            bool(self.drifted_features())
            or bool(self.drifted_predicates())
            or self.order_changed
        )

    def render(self) -> str:
        lines: List[str] = []
        flagged = self.drifted_features()
        if flagged:
            lines.append(
                f"feature cost drift (>{self.cost_tolerance:g}x, "
                f"{len(flagged)}/{len(self.features)} observed features):"
            )
            for drift in sorted(flagged, key=lambda d: d.ratio, reverse=True):
                lines.append(
                    f"  {drift.name}: est {drift.estimated_cost * 1e6:.2f}us "
                    f"-> obs {drift.observed_cost * 1e6:.2f}us "
                    f"({drift.ratio:.1f}x, {drift.samples} samples)"
                )
        else:
            lines.append(
                f"feature costs: no drift beyond {self.cost_tolerance:g}x "
                f"({len(self.features)} observed features)"
            )
        flagged = self.drifted_predicates()
        if flagged:
            lines.append(
                f"predicate selectivity drift (>|{self.selectivity_tolerance:g}|, "
                f"{len(flagged)}/{len(self.predicates)} observed predicates):"
            )
            for drift in sorted(flagged, key=lambda d: abs(d.delta), reverse=True):
                lines.append(
                    f"  {drift.pid}: est {drift.estimated_selectivity:.3f} "
                    f"-> obs {drift.observed_selectivity:.3f} "
                    f"({drift.delta:+.3f}, {drift.evaluations} evals)"
                )
        else:
            lines.append(
                f"predicate selectivities: no drift beyond "
                f"{self.selectivity_tolerance:g} "
                f"({len(self.predicates)} observed predicates)"
            )
        if self.order_changed:
            before = " > ".join(name for name, _slots in self.order_before)
            after = " > ".join(name for name, _slots in self.order_after)
            lines.append(
                f"ordering ({self.ordering_strategy}): WOULD CHANGE under "
                f"observed costs"
            )
            lines.append(f"  current:      {before}")
            lines.append(f"  re-estimated: {after}")
            lines.append("  -> consider 'reorder' / DebugSession.reorder()")
        else:
            lines.append(
                f"ordering ({self.ordering_strategy}): stable — re-estimation "
                f"would keep the current rule/predicate order"
            )
        return "\n".join(lines)


def order_signature(function: MatchingFunction) -> OrderSignature:
    """Rule order plus within-rule predicate slot order, for comparison."""
    return tuple(
        (rule.name, tuple(predicate.slot for predicate in rule.predicates))
        for rule in function.rules
    )


def detect_drift(
    function: MatchingFunction,
    estimates: Estimates,
    profile: Union[Profiler, dict],
    ordering_strategy: str = "algorithm6",
    cost_tolerance: float = DEFAULT_COST_TOLERANCE,
    selectivity_tolerance: float = DEFAULT_SELECTIVITY_TOLERANCE,
) -> DriftReport:
    """Compare observed costs/selectivities to ``estimates``.

    ``profile`` is a :class:`Profiler` or one of its snapshots (e.g.
    merged back from parallel workers).  Only features/predicates the
    profiler actually observed are compared — unobserved ones cannot have
    drifted observably.  The ordering check re-runs ``ordering_strategy``
    with observed mean feature costs patched into the estimates and
    reports whether the resulting rule/predicate order differs from
    ordering the same function with the original estimates.
    """
    profiler = (
        profile if isinstance(profile, Profiler) else Profiler.from_snapshot(profile)
    )

    feature_drifts: List[FeatureDrift] = []
    observed_costs: Dict[str, float] = {}
    for feature in function.features():
        observed = profiler.observed_feature_cost(feature.name)
        if observed is None or not estimates.has_feature(feature):
            continue
        estimated = estimates.cost(feature)
        observed_costs[feature.name] = observed
        ratio = observed / estimated if estimated > 0.0 else float("inf")
        drifted = ratio > cost_tolerance or ratio < 1.0 / cost_tolerance
        feature_drifts.append(
            FeatureDrift(
                name=feature.name,
                estimated_cost=estimated,
                observed_cost=observed,
                samples=profiler.feature_costs[feature.name].count,
                drifted=drifted,
            )
        )

    predicate_drifts: List[PredicateDrift] = []
    for rule in function.rules:
        for predicate in rule.predicates:
            observed = profiler.observed_selectivity(predicate.pid)
            if observed is None:
                continue
            try:
                estimated = estimates.selectivity(predicate)
            except Exception:
                continue  # feature not in the sample — nothing to compare
            predicate_drifts.append(
                PredicateDrift(
                    pid=predicate.pid,
                    estimated_selectivity=estimated,
                    observed_selectivity=observed,
                    evaluations=profiler.predicate_evals[predicate.pid],
                    drifted=abs(observed - estimated) > selectivity_tolerance,
                )
            )

    before: OrderSignature = ()
    after: OrderSignature = ()
    if observed_costs and ordering_strategy not in ("original", "random"):
        patched = estimates.with_feature_costs(observed_costs)
        before = order_signature(
            order_function(function, estimates, ordering_strategy)
        )
        after = order_signature(
            order_function(function, patched, ordering_strategy)
        )

    return DriftReport(
        features=feature_drifts,
        predicates=predicate_drifts,
        order_before=before,
        order_after=after,
        ordering_strategy=ordering_strategy,
        cost_tolerance=cost_tolerance,
        selectivity_tolerance=selectivity_tolerance,
    )
