"""Sliding time-window aggregation for service telemetry.

The engine-side :class:`~repro.observability.metrics.MetricsRegistry`
accumulates *forever* — right for totals, useless for "requests per
second over the last minute".  This module adds windowed counterparts:

* :class:`RollingCounter` — a count over the trailing window.
* :class:`RollingHistogram` — a fixed-bucket histogram over the trailing
  window, with :meth:`~RollingHistogram.quantile` interpolated from the
  merged buckets (same estimator as ``Histogram.quantile``).
* :class:`RequestWindow` — requests + errors + latency for one key.
* :class:`RequestTelemetry` — the service-wide composite: a global
  window plus per-endpoint and per-session windows, fed once per HTTP
  request by the server and read by ``GET /metrics``, ``GET /health``,
  and the SLO evaluator.

Implementation is the classic ring of sub-window slices: the window is
split into ``slices`` cells keyed by absolute slice index; advancing
time zeroes expired cells lazily on access.  No threads, no timers —
everything is O(slices) per read and O(1) per write, using a monotonic
clock injected for testability.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from .metrics import bucket_quantile

#: Default window: one minute in twelve 5-second slices.
DEFAULT_WINDOW_SECONDS = 60.0
DEFAULT_SLICES = 12

#: Request-latency bucket ladder (seconds) — finer than the engine's
#: DEFAULT_BUCKETS at the sub-second range where HTTP latencies live.
LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, float("inf"),
)


class _Ring:
    """Shared slice bookkeeping: maps a monotonic ``now`` to a cell.

    ``_slot`` is the absolute slice index of the newest cell; advancing
    by ``d`` slices clears ``min(d, slices)`` cells in ring order.
    """

    __slots__ = ("window_seconds", "slices", "slice_seconds", "_slot", "_clock")

    def __init__(
        self,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        slices: int = DEFAULT_SLICES,
        clock: Callable[[], float] = time.monotonic,
    ):
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if slices < 1:
            raise ValueError("slices must be >= 1")
        self.window_seconds = float(window_seconds)
        self.slices = int(slices)
        self.slice_seconds = self.window_seconds / self.slices
        self._slot: Optional[int] = None
        self._clock = clock

    def now(self, now: Optional[float] = None) -> float:
        return self._clock() if now is None else now

    def advance(self, now: float, clear_cell: Callable[[int], None]) -> int:
        """Move to the cell for ``now``, clearing expired cells.

        Returns the ring position (0..slices-1) of the current cell.
        """
        slot = int(now / self.slice_seconds)
        if self._slot is None:
            self._slot = slot
        elif slot > self._slot:
            steps = min(slot - self._slot, self.slices)
            for step in range(1, steps + 1):
                clear_cell((self._slot + step) % self.slices)
            self._slot = slot
        # A stale ``now`` (caller passed an old timestamp) writes into
        # the current cell; windows are approximate by construction.
        return self._slot % self.slices


class RollingCounter:
    """Count of events over the trailing window."""

    def __init__(
        self,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        slices: int = DEFAULT_SLICES,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._ring = _Ring(window_seconds, slices, clock)
        self._cells = [0.0] * self._ring.slices

    @property
    def window_seconds(self) -> float:
        return self._ring.window_seconds

    def _clear(self, position: int) -> None:
        self._cells[position] = 0.0

    def inc(self, amount: float = 1.0, now: Optional[float] = None) -> None:
        moment = self._ring.now(now)
        position = self._ring.advance(moment, self._clear)
        self._cells[position] += amount

    def total(self, now: Optional[float] = None) -> float:
        moment = self._ring.now(now)
        self._ring.advance(moment, self._clear)
        return sum(self._cells)

    def rate(self, now: Optional[float] = None) -> float:
        """Events per second over the window."""
        return self.total(now) / self._ring.window_seconds


class _HistogramCell:
    __slots__ = ("buckets", "count", "total", "min", "max")

    def __init__(self, n_buckets: int):
        self.buckets = [0] * n_buckets
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def clear(self) -> None:
        for position in range(len(self.buckets)):
            self.buckets[position] = 0
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")


class RollingHistogram:
    """Fixed-bucket histogram over the trailing window.

    Bucket bounds follow the engine convention: cumulative upper bounds
    ending in ``+inf``, per-bucket (non-cumulative) counts.
    """

    def __init__(
        self,
        bounds=LATENCY_BUCKETS,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        slices: int = DEFAULT_SLICES,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.bounds = tuple(bounds)
        if not self.bounds or self.bounds[-1] != float("inf"):
            raise ValueError("histogram bounds must end with +inf")
        self._ring = _Ring(window_seconds, slices, clock)
        self._cells = [
            _HistogramCell(len(self.bounds)) for _ in range(self._ring.slices)
        ]

    @property
    def window_seconds(self) -> float:
        return self._ring.window_seconds

    def _clear(self, position: int) -> None:
        self._cells[position].clear()

    def observe(self, value: float, now: Optional[float] = None) -> None:
        moment = self._ring.now(now)
        cell = self._cells[self._ring.advance(moment, self._clear)]
        for position, bound in enumerate(self.bounds):
            if value <= bound:
                cell.buckets[position] += 1
                break
        cell.count += 1
        cell.total += value
        if value < cell.min:
            cell.min = value
        if value > cell.max:
            cell.max = value

    def merged(self, now: Optional[float] = None) -> Tuple[List[int], int, float, float, float]:
        """``(buckets, count, total, min, max)`` summed over live cells."""
        moment = self._ring.now(now)
        self._ring.advance(moment, self._clear)
        buckets = [0] * len(self.bounds)
        count = 0
        total = 0.0
        minimum = float("inf")
        maximum = float("-inf")
        for cell in self._cells:
            if not cell.count:
                continue
            for position, value in enumerate(cell.buckets):
                buckets[position] += value
            count += cell.count
            total += cell.total
            if cell.min < minimum:
                minimum = cell.min
            if cell.max > maximum:
                maximum = cell.max
        return buckets, count, total, minimum, maximum

    def count(self, now: Optional[float] = None) -> int:
        return self.merged(now)[1]

    def mean(self, now: Optional[float] = None) -> float:
        _, count, total, _, _ = self.merged(now)
        return total / count if count else 0.0

    def quantile(self, q: float, now: Optional[float] = None) -> float:
        """Interpolated ``q``-quantile over the window (0.0 when empty)."""
        buckets, count, _, minimum, maximum = self.merged(now)
        if not count:
            return 0.0
        return bucket_quantile(
            self.bounds, buckets, count, q, minimum=minimum, maximum=maximum
        )


class RequestWindow:
    """Requests, errors, and latency for one key (endpoint, session, or
    the whole service)."""

    def __init__(
        self,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        slices: int = DEFAULT_SLICES,
        clock: Callable[[], float] = time.monotonic,
        latency_bounds=LATENCY_BUCKETS,
    ):
        self.requests = RollingCounter(window_seconds, slices, clock)
        self.errors = RollingCounter(window_seconds, slices, clock)
        self.latency = RollingHistogram(
            latency_bounds, window_seconds, slices, clock
        )

    def record(
        self, seconds: float, error: bool = False, now: Optional[float] = None
    ) -> None:
        self.requests.inc(1.0, now=now)
        if error:
            self.errors.inc(1.0, now=now)
        self.latency.observe(seconds, now=now)

    def error_rate(self, now: Optional[float] = None) -> float:
        requests = self.requests.total(now)
        if not requests:
            return 0.0
        return self.errors.total(now) / requests

    def snapshot(self, now: Optional[float] = None) -> dict:
        requests = self.requests.total(now)
        return {
            "window_seconds": self.requests.window_seconds,
            "requests": requests,
            "errors": self.errors.total(now),
            "error_rate": self.error_rate(now),
            "rate": self.requests.rate(now),
            "latency_mean": self.latency.mean(now),
            "latency_p50": self.latency.quantile(0.5, now),
            "latency_p95": self.latency.quantile(0.95, now),
            "latency_p99": self.latency.quantile(0.99, now),
        }


class RequestTelemetry:
    """Service-wide rolling request telemetry.

    One global window, one per endpoint label (``"POST
    /sessions/{name}/ingest"`` — names are templated so cardinality stays
    bounded by the route table), and one per session name.  Thread-safe:
    the asyncio event loop records while executor threads may be reading
    through a scrape.
    """

    def __init__(
        self,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        slices: int = DEFAULT_SLICES,
        clock: Callable[[], float] = time.monotonic,
        latency_bounds=LATENCY_BUCKETS,
        max_sessions: int = 512,
    ):
        self._make = lambda: RequestWindow(
            window_seconds, slices, clock, latency_bounds
        )
        self._clock = clock
        self.window_seconds = float(window_seconds)
        self.total = self._make()
        self.by_endpoint: Dict[str, RequestWindow] = {}
        self.by_session: Dict[str, RequestWindow] = {}
        self.max_sessions = max_sessions
        self._mutex = threading.Lock()

    def record_request(
        self,
        endpoint: str,
        session: Optional[str],
        seconds: float,
        error: bool = False,
        now: Optional[float] = None,
    ) -> None:
        moment = self._clock() if now is None else now
        with self._mutex:
            self.total.record(seconds, error, now=moment)
            window = self.by_endpoint.get(endpoint)
            if window is None:
                window = self.by_endpoint[endpoint] = self._make()
            window.record(seconds, error, now=moment)
            if session is not None:
                window = self.by_session.get(session)
                if window is None:
                    if len(self.by_session) >= self.max_sessions:
                        return  # bounded cardinality: drop, keep totals
                    window = self.by_session[session] = self._make()
                window.record(seconds, error, now=moment)

    def endpoint(self, name: str) -> Optional[RequestWindow]:
        with self._mutex:
            return self.by_endpoint.get(name)

    def session(self, name: str) -> Optional[RequestWindow]:
        with self._mutex:
            return self.by_session.get(name)

    def forget_session(self, name: str) -> None:
        with self._mutex:
            self.by_session.pop(name, None)

    def snapshot(self, now: Optional[float] = None) -> dict:
        moment = self._clock() if now is None else now
        with self._mutex:
            return {
                "window_seconds": self.window_seconds,
                "total": self.total.snapshot(moment),
                "endpoints": {
                    name: window.snapshot(moment)
                    for name, window in sorted(self.by_endpoint.items())
                },
                "sessions": {
                    name: window.snapshot(moment)
                    for name, window in sorted(self.by_session.items())
                },
            }
