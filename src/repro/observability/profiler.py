"""Profiling hooks: observed per-feature / per-rule costs and selectivities.

The cost model (§4.4) plans with *estimated* per-feature costs and
predicate selectivities from a 1 % sample; the profiler measures what a
run actually *observed*, with bounded overhead:

* **feature costs** — ``feature.compute`` wall-clock, sampled: the first
  computation of each feature is always timed, then one of every
  ``sample_every`` (deterministic modular sampling, so tests are stable
  and two runs of the same workload sample the same computations);
* **rule costs** — full ``rule_true`` wall-clock, sampled the same way;
* **predicate selectivities** — exact true/evaluated counts per predicate
  pid (two dict increments per evaluation — cheap enough to always count
  while profiling is on).

When no profiler is attached the hot path pays a single ``is None`` check
(see :class:`~repro.core.matchers.PairEvaluator`), and the
:class:`~repro.core.stats.MatchStats` counters are never touched either
way — profiling observes, it does not participate.

Snapshots are plain picklable dicts, so parallel workers profile locally
and the parent merges (:meth:`Profiler.merge`), mirroring the memo/trace
merge-back.  :func:`repro.observability.drift.detect_drift` consumes the
merged snapshot.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Union

from .metrics import Histogram

#: Sample one of every this-many computations per feature by default.
DEFAULT_SAMPLE_EVERY = 64

#: Finer default bounds for per-computation costs (seconds).
COST_BUCKETS = (
    1e-7, 3e-7, 1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 1e-3, 1e-2, float("inf")
)


class Profiler:
    """Collects observed-cost histograms and predicate outcome counts."""

    __slots__ = (
        "sample_every",
        "clock",
        "feature_counts",
        "rule_counts",
        "feature_costs",
        "rule_costs",
        "predicate_evals",
        "predicate_trues",
        "bound_skips",
    )

    def __init__(
        self,
        sample_every: int = DEFAULT_SAMPLE_EVERY,
        clock=time.perf_counter,
    ):
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.sample_every = sample_every
        self.clock = clock
        #: total computations seen per feature (sampled or not).
        self.feature_counts: Dict[str, int] = {}
        self.rule_counts: Dict[str, int] = {}
        self.feature_costs: Dict[str, Histogram] = {}
        self.rule_costs: Dict[str, Histogram] = {}
        self.predicate_evals: Dict[str, int] = {}
        self.predicate_trues: Dict[str, int] = {}
        #: decisions reached via a cheap similarity bound instead of a
        #: feature computation (kernels with ``use_bounds``).  The decision
        #: itself is *also* counted in predicate_evals/predicate_trues so
        #: observed selectivities stay comparable with bounds off.
        self.bound_skips: Dict[str, int] = {}

    # ------------------------------------------------------------ sampling

    def sample_feature(self, name: str) -> bool:
        """Count one computation of ``name``; True when it should be timed."""
        seen = self.feature_counts.get(name, 0)
        self.feature_counts[name] = seen + 1
        return seen % self.sample_every == 0

    def sample_rule(self, name: str) -> bool:
        seen = self.rule_counts.get(name, 0)
        self.rule_counts[name] = seen + 1
        return seen % self.sample_every == 0

    # ----------------------------------------------- batched sampling
    #
    # The columnar engine sees N computations of a feature at once.  The
    # batched hooks advance the same modular-sampling counters by N and
    # report how many of those N positions the scalar path would have
    # timed — so sampled-observation *counts* are engine-independent
    # (only the observed durations differ: batch means vs. per-call).

    def _sampled_in(self, seen: int, count: int) -> int:
        """How many of positions [seen, seen+count) hit the sample grid."""
        if count <= 0:
            return 0
        every = self.sample_every
        first = seen if seen % every == 0 else seen + (every - seen % every)
        last = seen + count - 1
        if first > last:
            return 0
        return (last - first) // every + 1

    def count_features(self, name: str, count: int) -> int:
        """Count ``count`` computations of ``name``; sampled positions."""
        seen = self.feature_counts.get(name, 0)
        self.feature_counts[name] = seen + count
        return self._sampled_in(seen, count)

    def count_rules(self, name: str, count: int) -> int:
        seen = self.rule_counts.get(name, 0)
        self.rule_counts[name] = seen + count
        return self._sampled_in(seen, count)

    # ----------------------------------------------------------- recording

    def record_feature(self, name: str, seconds: float) -> None:
        histogram = self.feature_costs.get(name)
        if histogram is None:
            histogram = Histogram(name, bounds=COST_BUCKETS)
            self.feature_costs[name] = histogram
        histogram.observe(seconds)

    def record_rule(self, name: str, seconds: float) -> None:
        histogram = self.rule_costs.get(name)
        if histogram is None:
            histogram = Histogram(name, bounds=COST_BUCKETS)
            self.rule_costs[name] = histogram
        histogram.observe(seconds)

    def record_predicate(self, pid: str, outcome: bool) -> None:
        self.predicate_evals[pid] = self.predicate_evals.get(pid, 0) + 1
        if outcome:
            self.predicate_trues[pid] = self.predicate_trues.get(pid, 0) + 1

    def record_bound_skip(self, pid: str) -> None:
        """One predicate decision settled by a cheap bound (no compute)."""
        self.bound_skips[pid] = self.bound_skips.get(pid, 0) + 1

    # ------------------------------------------------ batched recording

    def _observe_bulk(self, histogram: Histogram, observations: int, seconds: float) -> None:
        for position, bound in enumerate(histogram.bounds):
            if seconds <= bound:
                histogram.bucket_counts[position] += observations
                break
        histogram.count += observations
        histogram.total += seconds * observations
        if seconds < histogram.min:
            histogram.min = seconds
        if seconds > histogram.max:
            histogram.max = seconds

    def record_feature_bulk(self, name: str, observations: int, seconds: float) -> None:
        """Record ``observations`` sampled computations at a mean duration."""
        if observations <= 0:
            return
        histogram = self.feature_costs.get(name)
        if histogram is None:
            histogram = Histogram(name, bounds=COST_BUCKETS)
            self.feature_costs[name] = histogram
        self._observe_bulk(histogram, observations, seconds)

    def record_rule_bulk(self, name: str, observations: int, seconds: float) -> None:
        if observations <= 0:
            return
        histogram = self.rule_costs.get(name)
        if histogram is None:
            histogram = Histogram(name, bounds=COST_BUCKETS)
            self.rule_costs[name] = histogram
        self._observe_bulk(histogram, observations, seconds)

    def record_predicate_bulk(self, pid: str, evals: int, trues: int) -> None:
        """Count a batch of predicate outcomes (``evals`` >= ``trues``)."""
        if evals <= 0:
            return
        self.predicate_evals[pid] = self.predicate_evals.get(pid, 0) + evals
        if trues:
            self.predicate_trues[pid] = self.predicate_trues.get(pid, 0) + trues

    def record_bound_skip_bulk(self, pid: str, count: int) -> None:
        if count <= 0:
            return
        self.bound_skips[pid] = self.bound_skips.get(pid, 0) + count

    # ------------------------------------------------------------- reading

    def observed_feature_cost(self, name: str) -> Optional[float]:
        """Mean sampled seconds per computation of ``name`` (None if unseen)."""
        histogram = self.feature_costs.get(name)
        if histogram is None or histogram.count == 0:
            return None
        return histogram.mean

    def observed_rule_cost(self, name: str) -> Optional[float]:
        histogram = self.rule_costs.get(name)
        if histogram is None or histogram.count == 0:
            return None
        return histogram.mean

    def observed_selectivity(self, pid: str) -> Optional[float]:
        """Observed fraction of true evaluations for predicate ``pid``.

        Caveat: under early exit this is the selectivity *conditioned on
        the predicate being reached*, which is exactly the quantity the
        grouped cost formulas consume.
        """
        evals = self.predicate_evals.get(pid, 0)
        if evals == 0:
            return None
        return self.predicate_trues.get(pid, 0) / evals

    # ------------------------------------------------- snapshot and merge

    def snapshot(self) -> dict:
        """Picklable plain-dict state (travels in ChunkOutcome.profile)."""
        return {
            "sample_every": self.sample_every,
            "feature_counts": dict(self.feature_counts),
            "rule_counts": dict(self.rule_counts),
            "feature_costs": {
                name: histogram.as_dict()
                for name, histogram in self.feature_costs.items()
            },
            "rule_costs": {
                name: histogram.as_dict()
                for name, histogram in self.rule_costs.items()
            },
            "predicate_evals": dict(self.predicate_evals),
            "predicate_trues": dict(self.predicate_trues),
            "bound_skips": dict(self.bound_skips),
        }

    def merge(self, other: Union["Profiler", dict]) -> "Profiler":
        """Fold another profiler (or a snapshot) into this one."""
        data = other.snapshot() if isinstance(other, Profiler) else other
        for name, count in data["feature_counts"].items():
            self.feature_counts[name] = self.feature_counts.get(name, 0) + count
        for name, count in data["rule_counts"].items():
            self.rule_counts[name] = self.rule_counts.get(name, 0) + count
        for store, incoming in (
            (self.feature_costs, data["feature_costs"]),
            (self.rule_costs, data["rule_costs"]),
        ):
            for name, histogram_data in incoming.items():
                histogram = store.get(name)
                if histogram is None:
                    histogram = Histogram(
                        name, bounds=tuple(histogram_data["bounds"])
                    )
                    store[name] = histogram
                for position, count in enumerate(histogram_data["buckets"]):
                    histogram.bucket_counts[position] += count
                histogram.count += histogram_data["count"]
                histogram.total += histogram_data["total"]
                if histogram_data["count"]:
                    histogram.min = min(histogram.min, histogram_data["min"])
                    histogram.max = max(histogram.max, histogram_data["max"])
        for name, count in data["predicate_evals"].items():
            self.predicate_evals[name] = self.predicate_evals.get(name, 0) + count
        for name, count in data["predicate_trues"].items():
            self.predicate_trues[name] = self.predicate_trues.get(name, 0) + count
        # .get: snapshots from older builds predate bound skipping.
        for name, count in data.get("bound_skips", {}).items():
            self.bound_skips[name] = self.bound_skips.get(name, 0) + count
        return self

    @classmethod
    def from_snapshot(cls, data: dict) -> "Profiler":
        profiler = cls(sample_every=data.get("sample_every", DEFAULT_SAMPLE_EVERY))
        return profiler.merge(data)

    # ------------------------------------------------------------- report

    def render(self) -> str:
        """Observed per-feature cost table, most expensive first."""
        if not self.feature_costs:
            return "no profiled computations yet"
        rows = sorted(
            (
                (histogram.mean, name, histogram.count,
                 self.feature_counts.get(name, 0))
                for name, histogram in self.feature_costs.items()
                if histogram.count
            ),
            reverse=True,
        )
        lines = ["feature                                   mean(us)  sampled  computed"]
        for mean, name, sampled, computed in rows:
            lines.append(
                f"{name:<42}{mean * 1e6:>8.2f}{sampled:>9}{computed:>10}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Profiler(1/{self.sample_every}, "
            f"{len(self.feature_costs)} features, "
            f"{len(self.predicate_evals)} predicates seen)"
        )
