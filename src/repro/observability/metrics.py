"""Metrics registry: named counters, gauges, and histograms.

One registry unifies the counters that previously lived in three places —
:class:`~repro.core.stats.MatchStats` (run counters),
:class:`~repro.core.stats.WorkerTiming` (per-chunk records), and the
streaming per-batch counters — behind a single
``snapshot()`` / ``merge()`` / ``diff()`` API with JSON-lines export.

Snapshots are plain picklable dicts (``name -> {"type": ..., ...}``), so
they travel across process boundaries, diff cleanly, and serialize
without custom hooks.  :func:`record_match_stats` and
:func:`record_batch_result` are the bridges from the existing
instrumentation objects into the registry; matchers themselves never
write here — counters on the hot path stay exactly as they were.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Union

Snapshot = Dict[str, dict]


def bucket_quantile(
    bounds,
    bucket_counts,
    count: int,
    q: float,
    minimum: Optional[float] = None,
    maximum: Optional[float] = None,
) -> float:
    """Estimate the ``q``-quantile from per-bucket counts.

    ``bounds`` are cumulative upper bounds ending in ``+inf``;
    ``bucket_counts`` are the per-bucket (non-cumulative) observation
    counts.  The estimate linearly interpolates within the bucket the
    target rank falls into — the same scheme Prometheus's
    ``histogram_quantile`` uses — clamped to the observed ``minimum`` /
    ``maximum`` when known, which tightens the first and +inf buckets.
    Returns 0.0 for an empty histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q!r}")
    if count <= 0:
        return 0.0
    rank = q * count
    cumulative = 0
    for position, bound in enumerate(bounds):
        bucket = bucket_counts[position]
        if bucket <= 0:
            continue
        if cumulative + bucket >= rank:
            lower = bounds[position - 1] if position > 0 else 0.0
            upper = bound
            if minimum is not None:
                lower = max(lower, minimum) if position == 0 else lower
            if upper == float("inf"):
                # +inf bucket: best estimate is the observed max (or the
                # previous finite bound when no max was tracked).
                return maximum if maximum is not None else lower
            fraction = (rank - cumulative) / bucket
            value = lower + (upper - lower) * fraction
            if maximum is not None and value > maximum:
                value = maximum
            if minimum is not None and value < minimum:
                value = minimum
            return value
        cumulative += bucket
    # Rank past every populated bucket (q == 1.0 with rounding): the max.
    if maximum is not None:
        return maximum
    return bounds[-2] if len(bounds) > 1 else 0.0

#: Default histogram bucket upper bounds (seconds) — geometric ladder
#: covering sub-microsecond feature computations up to multi-second runs.
DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, float("inf")
)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0):
        self.name = name
        self.value = value

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def as_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-written value (e.g. a phase duration, a memo size)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0.0):
        self.name = name
        self.value = value

    def set(self, value: float) -> None:
        self.value = value

    def as_dict(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bucket histogram with running count/total/min/max.

    Buckets are cumulative-upper-bound style (the last bound is +inf), so
    merging is element-wise addition — the property the parallel stitcher
    relies on when folding worker-local histograms into the session's.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds=DEFAULT_BUCKETS):
        self.name = name
        self.bounds = tuple(bounds)
        if not self.bounds or self.bounds[-1] != float("inf"):
            raise ValueError("histogram bounds must end with +inf")
        self.bucket_counts = [0] * len(self.bounds)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        for position, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[position] += 1
                break
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Interpolated ``q``-quantile estimate (see :func:`bucket_quantile`)."""
        return bucket_quantile(
            self.bounds,
            self.bucket_counts,
            self.count,
            q,
            minimum=self.min if self.count else None,
            maximum=self.max if self.count else None,
        )

    def as_dict(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "bounds": list(self.bounds),
            "buckets": list(self.bucket_counts),
        }


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named metrics with snapshot/merge/diff and JSON-lines export."""

    def __init__(self):
        self._metrics: Dict[str, Metric] = {}

    # ----------------------------------------------------------- creation

    def _get(self, name: str, kind: type, **kwargs) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, bounds=DEFAULT_BUCKETS) -> Histogram:
        return self._get(name, Histogram, bounds=bounds)

    # ------------------------------------------------------------- access

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def value(self, name: str):
        """Scalar value of a counter/gauge (KeyError if absent)."""
        metric = self._metrics[name]
        if isinstance(metric, Histogram):
            raise TypeError(f"{name!r} is a histogram; read its snapshot")
        return metric.value

    # --------------------------------------------- snapshot / merge / diff

    def snapshot(self) -> Snapshot:
        """Picklable plain-dict view of every metric (deep copy)."""
        return {name: metric.as_dict() for name, metric in sorted(self._metrics.items())}

    def merge(self, other: Union["MetricsRegistry", Snapshot]) -> "MetricsRegistry":
        """Fold another registry (or a snapshot of one) into this one.

        Counters and histograms add; gauges take the incoming value
        (last-write-wins, matching their point-in-time semantics).
        """
        incoming = other.snapshot() if isinstance(other, MetricsRegistry) else other
        for name, data in incoming.items():
            kind = data["type"]
            if kind == "counter":
                self.counter(name).inc(data["value"])
            elif kind == "gauge":
                self.gauge(name).set(data["value"])
            elif kind == "histogram":
                histogram = self.histogram(name, bounds=tuple(data["bounds"]))
                if tuple(data["bounds"]) != histogram.bounds:
                    raise ValueError(
                        f"histogram {name!r} bucket bounds mismatch on merge"
                    )
                for position, count in enumerate(data["buckets"]):
                    histogram.bucket_counts[position] += count
                histogram.count += data["count"]
                histogram.total += data["total"]
                if data["count"]:
                    histogram.min = min(histogram.min, data["min"])
                    histogram.max = max(histogram.max, data["max"])
            else:
                raise ValueError(f"unknown metric type {kind!r} for {name!r}")
        return self

    def diff(self, earlier: Snapshot) -> Snapshot:
        """What changed since ``earlier`` (an older snapshot of this registry).

        Counters/histograms subtract; gauges report the current value when
        it differs.  Metrics absent from ``earlier`` appear whole; metrics
        only in ``earlier`` are ignored (registries never shrink).
        """
        delta: Snapshot = {}
        for name, data in self.snapshot().items():
            before = earlier.get(name)
            if before is None:
                delta[name] = data
                continue
            kind = data["type"]
            if kind == "counter":
                change = data["value"] - before["value"]
                if change:
                    delta[name] = {"type": "counter", "value": change}
            elif kind == "gauge":
                if data["value"] != before["value"]:
                    delta[name] = data
            elif kind == "histogram":
                change = data["count"] - before["count"]
                if change:
                    delta[name] = {
                        "type": "histogram",
                        "count": change,
                        "total": data["total"] - before["total"],
                        "min": data["min"],
                        "max": data["max"],
                        "bounds": data["bounds"],
                        "buckets": [
                            now - then
                            for now, then in zip(data["buckets"], before["buckets"])
                        ],
                    }
        return delta

    # ------------------------------------------------------------- export

    def to_json_lines(self) -> str:
        """One JSON object per metric: ``{"name": ..., **as_dict()}``."""
        return "\n".join(
            json.dumps({"name": name, **data}, sort_keys=True)
            for name, data in self.snapshot().items()
        )

    def render(self, prefix: str = "") -> str:
        """Human-readable one-line-per-metric digest."""
        lines = []
        for name, data in self.snapshot().items():
            if prefix and not name.startswith(prefix):
                continue
            if data["type"] == "histogram":
                mean = data["total"] / data["count"] if data["count"] else 0.0
                lines.append(
                    f"{name}: n={data['count']} mean={mean:.6g} "
                    f"min={data['min']} max={data['max']}"
                )
            else:
                lines.append(f"{name}: {data['value']:g}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._metrics)} metrics)"


# ---------------------------------------------------------------------------
# Bridges from the existing instrumentation objects
# ---------------------------------------------------------------------------


def record_match_stats(
    registry: MetricsRegistry, stats, prefix: str = "run"
) -> None:
    """Fold one :class:`~repro.core.stats.MatchStats` into the registry.

    Scalar work counters become counters, per-phase wall-clock becomes
    gauges, per-chunk timings feed a histogram — one vocabulary for
    serial, parallel, and streaming runs.
    """
    for field_name in (
        "feature_computations",
        "memo_hits",
        "predicate_evaluations",
        "bound_skips",
        "rule_evaluations",
        "pairs_evaluated",
        "pairs_matched",
        "deltas_applied",
        "pairs_gained",
        "pairs_lost",
        "pairs_invalidated",
    ):
        value = getattr(stats, field_name)
        if value:
            registry.counter(f"{prefix}.{field_name}").inc(value)
    registry.counter(f"{prefix}.runs").inc()
    registry.histogram(f"{prefix}.elapsed_seconds").observe(stats.elapsed_seconds)
    for feature_name, count in stats.computations_by_feature.items():
        registry.counter(f"{prefix}.computations.{feature_name}").inc(count)
    for phase, seconds in stats.phase_seconds.items():
        registry.gauge(f"{prefix}.phase.{phase}").set(seconds)
    for timing in stats.worker_timings:
        registry.histogram(f"{prefix}.chunk_seconds").observe(timing.elapsed_seconds)
        registry.counter(f"{prefix}.chunks").inc()
        if timing.attempts > 1:
            registry.counter(f"{prefix}.chunk_retries").inc(timing.attempts - 1)
        if timing.fallback:
            registry.counter(f"{prefix}.chunk_fallbacks").inc()


def record_batch_result(
    registry: MetricsRegistry, result, prefix: str = "stream"
) -> None:
    """Fold one streaming :class:`~repro.streaming.session.BatchResult`."""
    record_match_stats(registry, result.stats, prefix=prefix)
    registry.counter(f"{prefix}.batches").inc()
    registry.counter(f"{prefix}.affected_pairs").inc(result.affected)
    registry.gauge(f"{prefix}.match_count").set(result.match_count)
    if result.executed_parallel:
        registry.counter(f"{prefix}.parallel_batches").inc()
