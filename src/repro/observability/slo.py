"""Service-level objectives over rolling telemetry windows.

An :class:`SLO` declares one objective — a latency quantile or an error
rate — optionally scoped to a single endpoint label.  An
:class:`SLOPolicy` evaluates its objectives against a
:class:`~repro.observability.rolling.RequestTelemetry`, producing
:class:`SLOStatus` rows and appending breaches to a bounded, cooldown-
throttled :class:`AlertLog`.  The service surfaces both through
``GET /health`` (operator view) and ``GET /metrics`` (scrape view).

Evaluation is *pull-based*: nothing runs in the background; the policy
is re-evaluated whenever health or metrics are read, which is exactly
when anyone can observe the result.  ``min_requests`` guards against
alerting on a nearly-empty window.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class SLO:
    """One objective.  ``kind`` is ``"latency"`` (quantile vs threshold
    seconds) or ``"error_rate"`` (window error fraction vs threshold)."""

    name: str
    kind: str
    threshold: float
    quantile: float = 0.95
    endpoint: Optional[str] = None
    min_requests: int = 1

    def __post_init__(self):
        if self.kind not in ("latency", "error_rate"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if self.threshold < 0:
            raise ValueError("SLO threshold must be non-negative")
        if not 0.0 < self.quantile <= 1.0:
            raise ValueError("SLO quantile must be in (0, 1]")

    def describe(self) -> str:
        scope = self.endpoint or "all traffic"
        if self.kind == "latency":
            return (
                f"p{int(self.quantile * 100)} latency < "
                f"{self.threshold * 1000:g}ms on {scope}"
            )
        return f"error rate < {self.threshold:.1%} on {scope}"


@dataclass
class SLOStatus:
    """One evaluation result.  ``ok`` is ``None`` when the window held
    fewer than ``min_requests`` samples (insufficient data ≠ breach)."""

    slo: SLO
    ok: Optional[bool]
    observed: Optional[float]
    requests: float
    #: Fraction of the budget left: 1.0 fully healthy, 0.0 at the
    #: threshold, negative when breached (clamped at -1.0 for display).
    budget_remaining: Optional[float] = None

    def as_dict(self) -> dict:
        return {
            "name": self.slo.name,
            "kind": self.slo.kind,
            "endpoint": self.slo.endpoint,
            "objective": self.slo.describe(),
            "threshold": self.slo.threshold,
            "quantile": self.slo.quantile if self.slo.kind == "latency" else None,
            "ok": self.ok,
            "observed": self.observed,
            "requests": self.requests,
            "budget_remaining": self.budget_remaining,
        }


class AlertLog:
    """Bounded breach log with per-SLO cooldown.

    A breach only appends a new alert when the previous alert for the
    same SLO is older than ``cooldown_seconds`` — a flapping objective
    produces a trickle, not a flood.
    """

    def __init__(
        self,
        max_alerts: int = 100,
        cooldown_seconds: float = 30.0,
        clock: Callable[[], float] = time.time,
    ):
        self.cooldown_seconds = cooldown_seconds
        self._clock = clock
        self._alerts: Deque[dict] = deque(maxlen=max_alerts)
        self._last_fired: Dict[str, float] = {}
        self.total_fired = 0

    def __len__(self) -> int:
        return len(self._alerts)

    def fire(
        self, slo: SLO, observed: float, now: Optional[float] = None
    ) -> bool:
        moment = self._clock() if now is None else now
        last = self._last_fired.get(slo.name)
        if last is not None and moment - last < self.cooldown_seconds:
            return False
        self._last_fired[slo.name] = moment
        self.total_fired += 1
        self._alerts.append(
            {
                "at": moment,
                "slo": slo.name,
                "observed": observed,
                "threshold": slo.threshold,
                "message": (
                    f"SLO breach: {slo.describe()} — observed "
                    f"{observed:.6g}, threshold {slo.threshold:.6g}"
                ),
            }
        )
        return True

    def tail(self, limit: int = 20) -> List[dict]:
        alerts = list(self._alerts)
        return alerts[-limit:]


def default_slos() -> Tuple[SLO, ...]:
    """Conservative defaults: overall p95 under 1s, error rate under 5%."""
    return (
        SLO(name="latency_p95", kind="latency", threshold=1.0,
            quantile=0.95, min_requests=5),
        SLO(name="error_rate", kind="error_rate", threshold=0.05,
            min_requests=5),
    )


class SLOPolicy:
    """A set of SLOs plus their alert log."""

    def __init__(
        self,
        slos: Optional[Sequence[SLO]] = None,
        max_alerts: int = 100,
        cooldown_seconds: float = 30.0,
        clock: Callable[[], float] = time.time,
    ):
        self.slos: Tuple[SLO, ...] = (
            tuple(slos) if slos is not None else default_slos()
        )
        self.alerts = AlertLog(max_alerts, cooldown_seconds, clock)

    def _window(self, telemetry, slo: SLO):
        if slo.endpoint is None:
            return telemetry.total
        return telemetry.endpoint(slo.endpoint)

    def evaluate(self, telemetry, now: Optional[float] = None) -> List[SLOStatus]:
        """Evaluate every objective; breaches feed the alert log."""
        statuses: List[SLOStatus] = []
        for slo in self.slos:
            window = self._window(telemetry, slo)
            requests = window.requests.total() if window is not None else 0.0
            if window is None or requests < slo.min_requests:
                statuses.append(SLOStatus(slo, None, None, requests))
                continue
            if slo.kind == "latency":
                observed = window.latency.quantile(slo.quantile)
            else:
                observed = window.error_rate()
            ok = observed <= slo.threshold
            if slo.threshold > 0:
                budget = max(-1.0, 1.0 - observed / slo.threshold)
            else:
                budget = 0.0 if ok else -1.0
            statuses.append(SLOStatus(slo, ok, observed, requests, budget))
            if not ok:
                self.alerts.fire(slo, observed, now=now)
        return statuses

    def payload(self, telemetry, alert_limit: int = 20) -> dict:
        """JSON-ready view for ``GET /health``."""
        statuses = self.evaluate(telemetry)
        breached = [s for s in statuses if s.ok is False]
        return {
            "objectives": [status.as_dict() for status in statuses],
            "breached": len(breached),
            "alerts": self.alerts.tail(alert_limit),
            "alerts_total": self.alerts.total_fired,
        }


def slos_from_payload(raw: Sequence[dict]) -> Tuple[SLO, ...]:
    """Build SLOs from a JSON-ish list (service config / tests)."""
    out: List[SLO] = []
    for item in raw:
        out.append(
            SLO(
                name=str(item["name"]),
                kind=str(item.get("kind", "latency")),
                threshold=float(item["threshold"]),
                quantile=float(item.get("quantile", 0.95)),
                endpoint=item.get("endpoint"),
                min_requests=int(item.get("min_requests", 1)),
            )
        )
    return tuple(out)
