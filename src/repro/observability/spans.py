"""Structured tracing: lightweight nested spans.

A :class:`Tracer` records *spans* — named, timed, attributed intervals —
into a :class:`SpanLog`.  Spans nest through an explicit stack kept by the
tracer, so ``span("match") > span("rule:r3") > span("feature:jaccard")``
falls out of ordinary ``with`` nesting.

The log is deliberately dumb and **picklable**: plain records with integer
ids, no live references.  That mirrors how
:class:`~repro.core.matchers.TraceLog` travels back from parallel workers
— each worker traces into its own local ``SpanLog`` and the parent
*splices* the child log under the span that dispatched the chunk
(:meth:`SpanLog.splice`), re-identifying and re-parenting every child
span.  A spliced tree is indistinguishable from one recorded live in a
single process, except that child timestamps are rebased (worker clocks
share no epoch with the parent).

Disabled tracing costs one attribute check per ``span()`` call and
allocates nothing.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


@dataclass
class SpanRecord:
    """One completed (or still-open) span."""

    span_id: int
    parent_id: Optional[int]
    name: str
    #: seconds since the owning log's epoch.
    start: float
    #: seconds; -1.0 while the span is still open.
    duration: float = -1.0
    attrs: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        return record


class SpanLog:
    """An append-only list of span records with tree helpers.

    Records are kept in *start order*, which is also a valid topological
    order (a child starts after its parent) — rendering and JSON export
    need no sorting.
    """

    def __init__(self):
        self.records: List[SpanRecord] = []
        self._next_id = 0

    # ------------------------------------------------------------- record

    def new_span(
        self,
        name: str,
        parent_id: Optional[int],
        start: float,
        attrs: Optional[Dict[str, object]] = None,
    ) -> SpanRecord:
        record = SpanRecord(
            span_id=self._next_id,
            parent_id=parent_id,
            name=name,
            start=start,
            attrs=dict(attrs or {}),
        )
        self._next_id += 1
        self.records.append(record)
        return record

    # ------------------------------------------------------------- access

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[SpanRecord]:
        return iter(self.records)

    def roots(self) -> List[SpanRecord]:
        return [record for record in self.records if record.parent_id is None]

    def children(self, span_id: int) -> List[SpanRecord]:
        return [record for record in self.records if record.parent_id == span_id]

    def find(self, name: str) -> Optional[SpanRecord]:
        """First span with the given name, in start order."""
        for record in self.records:
            if record.name == name:
                return record
        return None

    def for_request(self, request_id: str) -> List[SpanRecord]:
        """Spans stamped with ``attrs["request_id"] == request_id``.

        The returned list is a consistent sub-forest: every span created
        (or spliced) while that request's trace context was active, in
        start order — renderable as its own tree.
        """
        return [
            record
            for record in self.records
            if record.attrs.get("request_id") == request_id
        ]

    def request_ids(self) -> List[str]:
        """Distinct request ids present in the log, in first-seen order."""
        seen: Dict[str, None] = {}
        for record in self.records:
            rid = record.attrs.get("request_id")
            if isinstance(rid, str) and rid not in seen:
                seen[rid] = None
        return list(seen)

    # ------------------------------------------------------------- splice

    def splice(
        self,
        child: "SpanLog",
        parent_id: Optional[int] = None,
        time_offset: float = 0.0,
    ) -> int:
        """Graft every span of ``child`` into this log.

        Child span ids are rebased past this log's id space, child *root*
        spans are re-parented under ``parent_id``, and child timestamps are
        shifted by ``time_offset`` (the parent-epoch second at which the
        child's clock started — worker clocks share no epoch with the
        parent, so child starts are only meaningful relative to each
        other).  Returns the number of spans spliced.  The analogue of
        :meth:`~repro.core.matchers.TraceLog.replay_into` for spans.
        """
        if not child.records:
            return 0
        id_offset = self._next_id
        base = min(record.start for record in child.records)
        for record in child.records:
            self.records.append(
                SpanRecord(
                    span_id=record.span_id + id_offset,
                    parent_id=(
                        record.parent_id + id_offset
                        if record.parent_id is not None
                        else parent_id
                    ),
                    name=record.name,
                    start=record.start - base + time_offset,
                    duration=record.duration,
                    attrs=dict(record.attrs),
                )
            )
        self._next_id += child._next_id
        return len(child.records)

    # ------------------------------------------------------------- export

    def to_json_lines(self) -> str:
        """One JSON object per span, in start order."""
        return "\n".join(
            json.dumps(record.as_dict(), sort_keys=True, default=str)
            for record in self.records
        )

    def render(self, unit_ms: bool = True) -> str:
        """ASCII tree of the span forest with durations."""
        by_parent: Dict[Optional[int], List[SpanRecord]] = {}
        for record in self.records:
            by_parent.setdefault(record.parent_id, []).append(record)

        lines: List[str] = []

        def walk(record: SpanRecord, depth: int) -> None:
            if record.duration >= 0.0:
                took = (
                    f"{record.duration * 1000:.2f}ms"
                    if unit_ms
                    else f"{record.duration:.6f}s"
                )
            else:
                took = "open"
            attrs = (
                " " + " ".join(f"{k}={v}" for k, v in record.attrs.items())
                if record.attrs
                else ""
            )
            lines.append(f"{'  ' * depth}{record.name}  [{took}]{attrs}")
            for child in by_parent.get(record.span_id, []):
                walk(child, depth + 1)

        for root in by_parent.get(None, []):
            walk(root, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"SpanLog({len(self.records)} spans, {len(self.roots())} roots)"


class Tracer:
    """Records nested spans into a :class:`SpanLog`.

    ``enabled=False`` makes :meth:`span` a no-op context manager yielding
    ``None`` — callers never need to branch on the flag themselves.
    """

    def __init__(self, enabled: bool = True, log: Optional[SpanLog] = None):
        self.enabled = enabled
        self.log = log if log is not None else SpanLog()
        self._stack: List[int] = []
        self._epoch = time.perf_counter()
        # Request correlation is thread-local: the service runs each
        # request's engine work on one executor thread, so spans opened
        # on that thread (including splices of worker logs) belong to
        # the request whose context is active there.
        self._context = threading.local()

    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    # ------------------------------------------------------ request context

    @property
    def active_request_id(self) -> Optional[str]:
        """Request id of the trace context active on this thread, if any."""
        return getattr(self._context, "request_id", None)

    @contextmanager
    def request_context(self, request_id: Optional[str]):
        """Stamp every span opened (or spliced) inside with ``request_id``.

        Contexts nest: the innermost non-``None`` id wins, and the prior
        id is restored on exit.  A ``None`` id makes this a no-op wrapper
        so callers need not branch.
        """
        if request_id is None:
            yield
            return
        previous = getattr(self._context, "request_id", None)
        self._context.request_id = request_id
        try:
            yield
        finally:
            self._context.request_id = previous

    @contextmanager
    def span(self, name: str, **attrs):
        """Open a span named ``name``; attributes become span attrs."""
        if not self.enabled:
            yield None
            return
        parent_id = self._stack[-1] if self._stack else None
        record = self.log.new_span(name, parent_id, self._now(), attrs)
        request_id = self.active_request_id
        if request_id is not None:
            record.attrs.setdefault("request_id", request_id)
        self._stack.append(record.span_id)
        try:
            yield record
        finally:
            self._stack.pop()
            record.duration = self._now() - record.start

    def current_span_id(self) -> Optional[int]:
        return self._stack[-1] if self._stack else None

    def splice(
        self, child: SpanLog, parent_id: Optional[int] = None
    ) -> int:
        """Splice a worker-recorded log under ``parent_id`` (default: the
        currently open span), rebasing child times to *now*."""
        if not self.enabled:
            return 0
        if parent_id is None:
            parent_id = self.current_span_id()
        before = len(self.log.records)
        spliced = self.log.splice(
            child, parent_id=parent_id, time_offset=self._now()
        )
        request_id = self.active_request_id
        if request_id is not None and spliced:
            # Worker logs were recorded out-of-process with no context;
            # stamp them with the request that dispatched the chunk.
            for record in self.log.records[before:]:
                record.attrs.setdefault("request_id", request_id)
        return spliced

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"Tracer({state}, {len(self.log)} spans)"
