"""Exporters: Prometheus text exposition and JSON-lines file rotation.

:class:`Exposition` builds Prometheus text format 0.0.4 — ``# TYPE``
headers, label-escaped samples, and histogram families expanded into
cumulative ``_bucket{le=...}`` / ``_sum`` / ``_count`` series from the
engine's per-bucket counts.  :func:`parse_prometheus` inverts the format
well enough for round-trip tests and the workbench ``top`` dashboard —
it is *not* a general Prometheus client.

Mapping conventions (relied on by tests asserting JSON/scrape parity):

* engine metric names are sanitized (``.`` → ``_``) and prefixed, so
  session counter ``stream.batches`` scrapes as
  ``repro_engine_stream_batches_total{session="demo"}``;
* counters gain a ``_total`` suffix, gauges and histograms keep their
  sanitized name;
* histogram buckets are emitted cumulatively with ``le`` labels ending
  in ``+Inf`` per the Prometheus convention, even though the in-process
  representation is per-bucket.

:func:`rotate_file` implements size-based generation shifting
(``file`` → ``file.1`` → ``file.2`` ...) used by
``Observability.flush_json_lines`` so long-lived sessions can't grow one
unbounded ``observability.jsonl``.
"""

from __future__ import annotations

import os
import re
from typing import Dict, Iterable, List, Optional, Tuple

from .metrics import Snapshot, bucket_quantile

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

LabelItems = Tuple[Tuple[str, str], ...]


def sanitize_metric_name(name: str) -> str:
    """Make ``name`` a legal Prometheus metric name (dots become ``_``)."""
    candidate = _NAME_BAD_CHARS.sub("_", name)
    if not candidate or candidate[0].isdigit():
        candidate = "_" + candidate
    return candidate


def escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _unescape_label_value(value: str) -> str:
    out: List[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "n":
                out.append("\n")
            else:
                out.append(nxt)
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if value != value:  # NaN
        return "NaN"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class Exposition:
    """Accumulates samples; renders Prometheus text format 0.0.4."""

    def __init__(self):
        self._types: Dict[str, str] = {}
        self._order: List[str] = []
        self._samples: Dict[str, List[Tuple[LabelItems, float]]] = {}

    # ------------------------------------------------------------- adding

    def _family(self, name: str, type_: str) -> List[Tuple[LabelItems, float]]:
        if not _NAME_OK.match(name):
            raise ValueError(f"illegal metric name {name!r}")
        known = self._types.get(name)
        if known is None:
            self._types[name] = type_
            self._order.append(name)
            self._samples[name] = []
        elif known != type_:
            raise ValueError(
                f"metric {name!r} registered as {known}, re-added as {type_}"
            )
        return self._samples[name]

    def add(
        self,
        name: str,
        value: float,
        labels: Optional[Dict[str, str]] = None,
        type: str = "gauge",
    ) -> None:
        items: LabelItems = tuple(sorted((labels or {}).items()))
        self._family(name, type).append((items, float(value)))

    def add_histogram(
        self,
        name: str,
        bounds: Iterable[float],
        buckets: Iterable[float],
        count: float,
        total: float,
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        """Expand per-bucket counts into cumulative ``le`` series."""
        base: Dict[str, str] = dict(labels or {})
        family = self._family(name, "histogram")
        cumulative = 0.0
        for bound, bucket in zip(bounds, buckets):
            cumulative += bucket
            items = tuple(sorted({**base, "le": format_value(bound)}.items()))
            family.append((items, cumulative))
        items = tuple(sorted(base.items()))
        self._samples.setdefault(name + "_sum", [])
        self._samples.setdefault(name + "_count", [])
        self._samples[name + "_sum"].append((items, float(total)))
        self._samples[name + "_count"].append((items, float(count)))

    # ----------------------------------------------------------- rendering

    def render(self) -> str:
        lines: List[str] = []
        for name in self._order:
            type_ = self._types[name]
            lines.append(f"# TYPE {name} {type_}")
            if type_ == "histogram":
                self._render_samples(lines, name + "_bucket", self._samples[name])
                self._render_samples(lines, name + "_sum", self._samples.get(name + "_sum", []))
                self._render_samples(lines, name + "_count", self._samples.get(name + "_count", []))
            else:
                self._render_samples(lines, name, self._samples[name])
        return "\n".join(lines) + "\n" if lines else ""

    @staticmethod
    def _render_samples(
        lines: List[str],
        name: str,
        samples: List[Tuple[LabelItems, float]],
    ) -> None:
        for items, value in samples:
            if items:
                rendered = ",".join(
                    f'{key}="{escape_label_value(str(val))}"'
                    for key, val in items
                )
                lines.append(f"{name}{{{rendered}}} {format_value(value)}")
            else:
                lines.append(f"{name} {format_value(value)}")


# ---------------------------------------------------------------------------
# Engine-registry and request-telemetry adapters
# ---------------------------------------------------------------------------


def add_registry_snapshot(
    exposition: Exposition,
    snapshot: Snapshot,
    labels: Optional[Dict[str, str]] = None,
    prefix: str = "repro_engine",
) -> None:
    """Expose a :class:`MetricsRegistry` snapshot under ``prefix``.

    Counter ``stream.batches`` → ``{prefix}_stream_batches_total``;
    gauges keep their sanitized name; histograms expand into cumulative
    bucket series.  The numbers are exactly the snapshot's — the parity
    property ``GET /metrics`` tests rely on.
    """
    for name, data in sorted(snapshot.items()):
        flat = sanitize_metric_name(f"{prefix}_{name}" if prefix else name)
        kind = data["type"]
        if kind == "counter":
            exposition.add(flat + "_total", data["value"], labels, type="counter")
        elif kind == "gauge":
            exposition.add(flat, data["value"], labels, type="gauge")
        elif kind == "histogram":
            exposition.add_histogram(
                flat,
                data["bounds"],
                data["buckets"],
                data["count"],
                data["total"],
                labels,
            )


def add_request_telemetry(
    exposition: Exposition,
    telemetry,
    prefix: str = "repro_http",
) -> None:
    """Expose a :class:`~repro.observability.rolling.RequestTelemetry`.

    Rolling windows are inherently gauges (they describe the trailing
    window, not a monotone total) except the latency histograms, which
    are exposed as histogram families over the window.
    """
    snap = telemetry.snapshot()
    window = snap["window_seconds"]
    exposition.add(f"{prefix}_window_seconds", window, type="gauge")

    def emit(scope_labels: Dict[str, str], window_snap: dict) -> None:
        exposition.add(
            f"{prefix}_requests", window_snap["requests"],
            scope_labels, type="gauge",
        )
        exposition.add(
            f"{prefix}_errors", window_snap["errors"],
            scope_labels, type="gauge",
        )
        exposition.add(
            f"{prefix}_error_rate", window_snap["error_rate"],
            scope_labels, type="gauge",
        )
        exposition.add(
            f"{prefix}_request_rate", window_snap["rate"],
            scope_labels, type="gauge",
        )

    emit({}, snap["total"])
    for endpoint, window_snap in snap["endpoints"].items():
        emit({"endpoint": endpoint}, window_snap)
    for session, window_snap in snap["sessions"].items():
        emit({"session": session}, window_snap)

    # Latency histograms need the raw buckets, not the snapshot dict.
    buckets, count, total, _, _ = telemetry.total.latency.merged()
    exposition.add_histogram(
        f"{prefix}_request_seconds",
        telemetry.total.latency.bounds, buckets, count, total,
    )
    for endpoint in sorted(snap["endpoints"]):
        window_obj = telemetry.endpoint(endpoint)
        if window_obj is None:
            continue
        buckets, count, total, _, _ = window_obj.latency.merged()
        exposition.add_histogram(
            f"{prefix}_request_seconds",
            window_obj.latency.bounds, buckets, count, total,
            labels={"endpoint": endpoint},
        )


# ---------------------------------------------------------------------------
# Parsing (round-trip tests + workbench `top`)
# ---------------------------------------------------------------------------

_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:\\.|[^"\\])*)"')


def _parse_number(token: str) -> float:
    if token == "+Inf":
        return float("inf")
    if token == "-Inf":
        return float("-inf")
    if token == "NaN":
        return float("nan")
    return float(token)


def parse_prometheus(text: str) -> Dict[str, object]:
    """Parse exposition text into ``{"types": ..., "samples": ...}``.

    ``samples`` maps ``(name, sorted-label-items-tuple)`` to the float
    value; ``types`` maps family name to declared type.  Raises
    ``ValueError`` on a malformed sample line, making this usable as the
    "is it parseable Prometheus text" check in tests.
    """
    types: Dict[str, str] = {}
    samples: Dict[Tuple[str, LabelItems], float] = {}
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        match = _SAMPLE.match(line)
        if not match:
            raise ValueError(f"malformed sample on line {line_number}: {raw!r}")
        labels_blob = match.group("labels")
        items: List[Tuple[str, str]] = []
        if labels_blob:
            for label in _LABEL.finditer(labels_blob):
                items.append(
                    (label.group("key"), _unescape_label_value(label.group("value")))
                )
        key = (match.group("name"), tuple(sorted(items)))
        samples[key] = _parse_number(match.group("value"))
    return {"types": types, "samples": samples}


def histogram_quantile(
    samples: Dict[Tuple[str, LabelItems], float],
    family: str,
    q: float,
    labels: Optional[Dict[str, str]] = None,
) -> Optional[float]:
    """Estimate a quantile from parsed cumulative ``_bucket`` samples.

    ``labels`` selects a specific series (matched exactly, ignoring
    ``le``).  Returns ``None`` when the series is absent or empty.
    """
    want = tuple(sorted((labels or {}).items()))
    series: List[Tuple[float, float]] = []
    for (name, items), value in samples.items():
        if name != family + "_bucket":
            continue
        le = None
        rest = []
        for key, val in items:
            if key == "le":
                le = _parse_number(val)
            else:
                rest.append((key, val))
        if le is None or tuple(sorted(rest)) != want:
            continue
        series.append((le, value))
    if not series:
        return None
    series.sort()
    bounds = [bound for bound, _ in series]
    cumulative = [count for _, count in series]
    total = cumulative[-1]
    if not total:
        return None
    per_bucket = [cumulative[0]] + [
        cumulative[i] - cumulative[i - 1] for i in range(1, len(cumulative))
    ]
    return bucket_quantile(bounds, per_bucket, int(total), q)


# ---------------------------------------------------------------------------
# Size-based file rotation
# ---------------------------------------------------------------------------


def rotate_file(
    path,
    max_bytes: int,
    backups: int = 3,
    incoming_bytes: int = 0,
) -> bool:
    """Shift ``path`` → ``path.1`` → ... when adding ``incoming_bytes``
    would push it past ``max_bytes``.

    Returns True when a rotation happened.  ``backups=0`` truncates (the
    old file is simply removed).  Missing files are fine — this is a
    best-effort sink, not a WAL.
    """
    path = os.fspath(path)
    try:
        size = os.path.getsize(path)
    except OSError:
        return False
    if size + incoming_bytes <= max_bytes:
        return False
    oldest = f"{path}.{backups}"
    if backups > 0 and os.path.exists(oldest):
        os.remove(oldest)
    for generation in range(backups - 1, 0, -1):
        source = f"{path}.{generation}"
        if os.path.exists(source):
            os.replace(source, f"{path}.{generation + 1}")
    if backups > 0:
        os.replace(path, f"{path}.1")
    else:
        os.remove(path)
    return True
