"""Unified observability layer: tracing, metrics, profiling, drift.

One :class:`Observability` object rides along a debugging session (serial,
parallel, or streaming) and collects three coordinated views of a run:

* **spans** (:mod:`repro.observability.spans`) — where wall-clock time
  went, as a nested tree; parallel workers record locally and the parent
  splices their logs under the dispatching span;
* **metrics** (:mod:`repro.observability.metrics`) — the counters that
  previously lived separately in ``MatchStats``, ``WorkerTiming``, and the
  streaming batch results, unified in one registry with
  ``snapshot()/merge()/diff()`` and JSON-lines export;
* **profile** (:mod:`repro.observability.profiler`) — sampled observed
  per-feature/per-rule costs and exact predicate selectivities, feeding
  :func:`~repro.observability.drift.detect_drift`.

Everything is opt-in: sessions built without an ``Observability`` run the
exact seed code paths (matcher counters byte-identical), and a disabled
tracer/absent profiler costs one pointer check on the paths it touches.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Optional

from .drift import (
    DriftMonitor,
    DriftReport,
    FeatureDrift,
    PredicateDrift,
    detect_drift,
    focus_rules_for_report,
    order_signature,
)
from .export import (
    Exposition,
    add_registry_snapshot,
    add_request_telemetry,
    parse_prometheus,
    rotate_file,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_quantile,
    record_batch_result,
    record_match_stats,
)
from .profiler import DEFAULT_SAMPLE_EVERY, Profiler
from .rolling import (
    RequestTelemetry,
    RequestWindow,
    RollingCounter,
    RollingHistogram,
)
from .slo import SLO, AlertLog, SLOPolicy, SLOStatus, default_slos
from .spans import SpanLog, SpanRecord, Tracer

__all__ = [
    "Observability",
    "Tracer",
    "SpanLog",
    "SpanRecord",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "bucket_quantile",
    "Profiler",
    "DriftMonitor",
    "DriftReport",
    "FeatureDrift",
    "PredicateDrift",
    "detect_drift",
    "focus_rules_for_report",
    "order_signature",
    "record_match_stats",
    "record_batch_result",
    "maybe_span",
    "RequestTelemetry",
    "RequestWindow",
    "RollingCounter",
    "RollingHistogram",
    "Exposition",
    "add_registry_snapshot",
    "add_request_telemetry",
    "parse_prometheus",
    "rotate_file",
    "SLO",
    "SLOPolicy",
    "SLOStatus",
    "AlertLog",
    "default_slos",
]


class Observability:
    """Tracer + metrics registry + optional profiler, as one handle.

    ``enabled`` controls tracing; ``profile`` attaches a
    :class:`Profiler` with the given ``sample_every``.  The object is
    shared — a :class:`~repro.core.session.DebugSession`, the parallel
    executor it dispatches to, and a wrapping
    :class:`~repro.streaming.session.StreamingSession` all write into the
    same span log and registry, which is what makes one run's telemetry
    coherent end to end.
    """

    def __init__(
        self,
        enabled: bool = True,
        profile: bool = False,
        sample_every: int = DEFAULT_SAMPLE_EVERY,
    ):
        self.tracer = Tracer(enabled=enabled)
        self.metrics = MetricsRegistry()
        self.profiler: Optional[Profiler] = (
            Profiler(sample_every=sample_every) if profile else None
        )
        self.drift_monitor: Optional[DriftMonitor] = None

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled

    def enable_profiling(
        self, sample_every: int = DEFAULT_SAMPLE_EVERY
    ) -> Profiler:
        """Attach (or replace) the profiler; returns it."""
        self.profiler = Profiler(sample_every=sample_every)
        return self.profiler

    def disable_profiling(self) -> None:
        self.profiler = None

    def attach_drift_monitor(self, every: int = 5, **kwargs) -> DriftMonitor:
        """Attach (or replace) a :class:`DriftMonitor`; returns it.

        A monitor needs observed costs/selectivities to compare, so a
        profiler is attached too if one isn't already running.
        """
        if self.profiler is None:
            self.enable_profiling()
        self.drift_monitor = DriftMonitor(every=every, **kwargs)
        return self.drift_monitor

    def export_json_lines(self) -> str:
        """Spans then metrics, one JSON object per line.

        Span lines carry ``"kind": "span"``, metric lines ``"kind":
        "metric"`` — a consumer can split the stream back apart.
        """
        import json

        lines = []
        for record in self.tracer.log:
            lines.append(
                json.dumps(
                    {"kind": "span", **record.as_dict()},
                    sort_keys=True,
                    default=str,
                )
            )
        for name, data in self.metrics.snapshot().items():
            lines.append(
                json.dumps({"kind": "metric", "name": name, **data}, sort_keys=True)
            )
        return "\n".join(lines)

    def flush_json_lines(
        self,
        path,
        max_bytes: Optional[int] = None,
        backups: int = 3,
    ) -> int:
        """Write :meth:`export_json_lines` to ``path``; returns line count.

        The service layer's graceful shutdown calls this per session so a
        stopped server leaves its telemetry on disk next to the
        checkpoints.  Parent directories are created; an empty export
        still produces the file (a truthful "nothing was recorded").

        With ``max_bytes`` set, an existing file that would exceed the
        cap is first rotated through ``path.1`` ... ``path.{backups}``
        (see :func:`~repro.observability.export.rotate_file`) so a
        long-lived session can't grow one unbounded sink file.
        """
        from pathlib import Path

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = self.export_json_lines()
        if payload:
            payload += "\n"
        if max_bytes is not None:
            rotate_file(
                path, max_bytes, backups=backups,
                incoming_bytes=len(payload.encode("utf-8")),
            )
        path.write_text(payload, encoding="utf-8")
        return 0 if not payload else payload.count("\n")

    def __repr__(self) -> str:
        profiling = (
            f"profiling 1/{self.profiler.sample_every}"
            if self.profiler
            else "no profiler"
        )
        return (
            f"Observability({'enabled' if self.enabled else 'disabled'}, "
            f"{len(self.tracer.log)} spans, {len(self.metrics)} metrics, "
            f"{profiling})"
        )


def maybe_span(observability: Optional[Observability], name: str, **attrs):
    """``observability.tracer.span(...)`` or a no-op context manager.

    The one-liner every integration point uses so the ``None`` (fully
    disabled) case stays branch-free at the call site.
    """
    if observability is None or not observability.tracer.enabled:
        return nullcontext()
    return observability.tracer.span(name, **attrs)
