"""Interactive command-line workbench — the Figure 1 loop at a prompt.

``python -m repro.workbench`` starts a small REPL where an analyst can
load a dataset, run matching, inspect quality and individual pairs, apply
rule edits (incrementally), ask for suggested edits, and save/restore the
session state:

.. code-block:: text

    repro> load products --scale 0.4
    repro> run
    repro> metrics
    repro> suggest tighten
    repro> apply 1
    repro> explain a3 b17
    repro> save /tmp/session1

The engine is :class:`Workbench`, a plain object mapping command strings
to actions — fully testable without a TTY (``tests/test_workbench.py``).
"""

from __future__ import annotations

import shlex
import sys
import time
from typing import Callable, Dict, List, Optional

from .core.changes import (
    AddRule,
    Change,
    RelaxPredicate,
    RemovePredicate,
    RemoveRule,
    TightenPredicate,
)
from .core.parser import format_rule, parse_rule
from .core.persistence import load_state, save_state
from .core.session import DebugSession
from .errors import ReproError
from .observability import DEFAULT_SAMPLE_EVERY, Observability, detect_drift
from .evaluation.suggest import Suggestion, suggest_relaxations, suggest_tightenings
from .learning import build_workload


class WorkbenchError(ReproError):
    """User-facing command error (bad syntax, wrong session phase)."""


def parse_workers_flag(arguments: List[str]) -> "tuple[int, List[str]]":
    """Extract ``--workers N`` from an argument list.

    Returns ``(workers, remaining_arguments)`` with the flag and its value
    removed; ``workers`` is 1 when the flag is absent.  Raises
    :class:`WorkbenchError` on a missing value, a non-integer, or a value
    below 1 — shared by every command that can shard work over the pool
    (``run``, ``ingest``).  Pool runs are observable like serial ones:
    worker span logs are spliced into the session's trace (see the
    ``trace`` command) and worker profiles fold into ``profile``.
    """
    workers = 1
    remaining: List[str] = []
    iterator = iter(arguments)
    for token in iterator:
        if token != "--workers":
            remaining.append(token)
            continue
        try:
            value = next(iterator)
        except StopIteration:
            raise WorkbenchError("--workers needs a value") from None
        try:
            workers = int(value)
        except ValueError:
            raise WorkbenchError("--workers needs an integer") from None
        if workers < 1:
            raise WorkbenchError("--workers must be >= 1")
    return workers, remaining


class Workbench:
    """Stateful command interpreter over one debugging session."""

    def __init__(self):
        self.workload = None
        self.session: Optional[DebugSession] = None
        self.suggestions: List[Suggestion] = []
        # last refinement report; 'refine apply <n>' indexes its frontier.
        self.refinement = None
        # live-table context for streaming ingestion; set by load/load-csv.
        self.tables = None
        self.blocker = None
        self.streaming = None
        # one Observability per loaded dataset; every run/ingest of the
        # session writes into it (see 'trace', 'profile', 'drift').
        self.observability: Optional[Observability] = None
        # service-layer handles: an embedded server ('serve') and a
        # client connection to any server ('remote').
        self.service_thread = None
        self.remote_client = None
        self._commands: Dict[str, Callable[[List[str]], str]] = {
            "help": self.cmd_help,
            "load": self.cmd_load,
            "load-csv": self.cmd_load_csv,
            "rules": self.cmd_rules,
            "plan": self.cmd_plan,
            "run": self.cmd_run,
            "ingest": self.cmd_ingest,
            "delta-stats": self.cmd_delta_stats,
            "metrics": self.cmd_metrics,
            "explain": self.cmd_explain,
            "tighten": self.cmd_tighten,
            "relax": self.cmd_relax,
            "drop-rule": self.cmd_drop_rule,
            "drop-predicate": self.cmd_drop_predicate,
            "add-rule": self.cmd_add_rule,
            "suggest": self.cmd_suggest,
            "apply": self.cmd_apply,
            "refine": self.cmd_refine,
            "history": self.cmd_history,
            "memory": self.cmd_memory,
            "cache": self.cmd_cache,
            "stats": self.cmd_stats,
            "trace": self.cmd_trace,
            "profile": self.cmd_profile,
            "drift": self.cmd_drift,
            "simplify": self.cmd_simplify,
            "lint": self.cmd_lint,
            "report": self.cmd_report,
            "save": self.cmd_save,
            "restore": self.cmd_restore,
            "serve": self.cmd_serve,
            "remote": self.cmd_remote,
            "top": self.cmd_top,
        }

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def execute(self, line: str) -> str:
        """Run one command line; returns the output text (never prints)."""
        parts = shlex.split(line)
        if not parts:
            return ""
        command, *arguments = parts
        handler = self._commands.get(command)
        if handler is None:
            raise WorkbenchError(
                f"unknown command {command!r}; try 'help'"
            )
        return handler(arguments)

    def _require_session(self) -> DebugSession:
        if self.session is None or self.session.state is None:
            raise WorkbenchError("no active run; use 'load <dataset>' then 'run'")
        return self.session

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------

    def cmd_help(self, arguments: List[str]) -> str:
        return "\n".join(
            [
                "commands:",
                "  load <dataset> [--scale S] [--rules N] [--seed K]",
                "  load-csv <a.csv> <b.csv> --block <attr> --rules '<DSL>'",
                "  run [--workers N]            full matching run (orders rules first;",
                "                               N>1 shards it over a process pool)",
                "  rules                        list current rules",
                "  plan                         compiled evaluation plan with",
                "                               cost/selectivity annotations",
                "  metrics                      P/R/F1 against gold",
                "  explain <a_id> <b_id>        per-rule, per-predicate trace",
                "  tighten <rule> <slot> <thr>  stricter threshold (Alg 7)",
                "  relax <rule> <slot> <thr>    looser threshold (Alg 8)",
                "  drop-predicate <rule> <slot> remove a predicate (Alg 8)",
                "  drop-rule <rule>             remove a rule (Alg 9)",
                "  add-rule <dsl text>          add a rule (Alg 10)",
                "  ingest <op> <side> <id> [attr=value ...] [--workers N]",
                "                               apply a record delta (op: insert|",
                "                               update|delete; side: a|b) and re-",
                "                               match only the affected pairs",
                "  delta-stats                  per-batch streaming counters",
                "  suggest [tighten|relax]      ranked edit proposals",
                "  apply <n>                    apply the n-th suggestion",
                "  refine [--budget N] [--beam W] [--depth D] [--seed K]",
                "         [--space]             automated edit search ->",
                "                               Pareto frontier (P, R, cost)",
                "  refine apply <n>             apply the n-th frontier entry",
                "  history                      applied edits with timings",
                "  memory                       materialized-state bytes",
                "  cache stats                  token-cache sizes, hit rates,",
                "                               and bound-skip counts",
                "  stats                        rule-set structure report",
                "                               (+ metrics digest once run)",
                "  trace [--json]               span tree of run/ingest timings",
                "  profile [on|off] [--sample N]",
                "                               sampled per-feature cost profile",
                "  drift                        observed vs estimated costs;",
                "                               flags stale rule ordering",
                "  simplify                     list subsumed (redundant) rules",
                "  lint                         static checks on the rule set",
                "  report                       per-rule precision table",
                "  save <dir> / restore <dir>   persist / reload the session state",
                "  serve start [port] [ckpt-dir] | status | stop",
                "                               run the matching service in-process",
                "  remote connect <host:port>   point 'remote' at a server",
                "  remote create <name> <dataset> [--scale S] [--seed K] [--workers N]",
                "  remote sessions | info <name> | close <name>",
                "  remote ingest <name> <op> <a|b> <id> [attr=value ...]",
                "  remote tighten|relax <name> <rule> <slot> <thr>",
                "  remote refine <name> [--budget N] [--apply best|<i>]",
                "  remote metrics <name> | trace <name>",
                "  top [--watch N] [--interval S]",
                "                               live dashboard from /metrics +",
                "                               /health (rates, p95s, SLOs)",
            ]
        )

    def cmd_load(self, arguments: List[str]) -> str:
        if not arguments:
            raise WorkbenchError("usage: load <dataset> [--scale S] [--rules N] [--seed K]")
        name = arguments[0]
        scale, max_rules, seed = 0.5, 80, 7
        iterator = iter(arguments[1:])
        for flag in iterator:
            try:
                if flag == "--scale":
                    scale = float(next(iterator))
                elif flag == "--rules":
                    max_rules = int(next(iterator))
                elif flag == "--seed":
                    seed = int(next(iterator))
                else:
                    raise WorkbenchError(f"unknown flag {flag!r}")
            except StopIteration:
                raise WorkbenchError(f"flag {flag!r} needs a value") from None
        from .learning.workload import default_blocker

        blocker = default_blocker(name)
        self.workload = build_workload(
            name, seed=seed, scale=scale, max_rules=max_rules, blocker=blocker
        )
        self.observability = Observability()
        self.session = DebugSession(
            self.workload.candidates,
            self.workload.function,
            gold=self.workload.gold,
            ordering="algorithm6",
            observability=self.observability,
        )
        self.suggestions = []
        self.refinement = None
        self.tables = (self.workload.dataset.table_a, self.workload.dataset.table_b)
        self.blocker = blocker
        self.streaming = None
        return f"loaded {self.workload.summary()}"

    def cmd_load_csv(self, arguments: List[str]) -> str:
        """Bring-your-own-data entry point.

        ``load-csv A.csv B.csv --block title [--overlap 1] [--gold g.csv]
        --rules 'R1: jaccard_ws(title, title) >= 0.7'``

        Loads two CSV tables (id column ``id``), blocks on the given
        attribute, and starts a session with the supplied DSL rules.
        """
        if len(arguments) < 2:
            raise WorkbenchError(
                "usage: load-csv <a.csv> <b.csv> --block <attr> "
                "[--overlap N] [--gold gold.csv] --rules '<DSL>'"
            )
        from .blocking import OverlapBlocker
        from .core.parser import parse_function
        from .data import load_gold, load_table

        path_a, path_b, *rest = arguments
        block_attribute = None
        overlap = 1
        gold_path = None
        rules_text = None
        iterator = iter(rest)
        for flag in iterator:
            try:
                if flag == "--block":
                    block_attribute = next(iterator)
                elif flag == "--overlap":
                    overlap = int(next(iterator))
                elif flag == "--gold":
                    gold_path = next(iterator)
                elif flag == "--rules":
                    rules_text = next(iterator)
                else:
                    raise WorkbenchError(f"unknown flag {flag!r}")
            except StopIteration:
                raise WorkbenchError(f"flag {flag!r} needs a value") from None
        if block_attribute is None or rules_text is None:
            raise WorkbenchError("--block and --rules are required")

        table_a = load_table(path_a)
        table_b = load_table(path_b)
        blocker = OverlapBlocker(block_attribute, min_overlap=overlap)
        candidates = blocker.block(table_a, table_b)
        gold = load_gold(gold_path) if gold_path else None
        self.workload = None  # no feature space; DSL resolves via registry
        self.observability = Observability()
        self.session = DebugSession(
            candidates,
            parse_function(rules_text),
            gold=gold,
            ordering="algorithm5",
            observability=self.observability,
        )
        self.suggestions = []
        self.refinement = None
        self.tables = (table_a, table_b)
        self.blocker = blocker
        self.streaming = None
        return (
            f"loaded {table_a.name} ({len(table_a)}) x {table_b.name} "
            f"({len(table_b)}): {len(candidates)} candidate pairs"
            + (f", {len(gold)} gold labels" if gold else "")
        )

    def cmd_plan(self, arguments: List[str]) -> str:
        """``plan`` — the compiled columnar evaluation plan of the current
        function: ordered predicate steps with kernel support (and *why*
        an unsupported step falls back — feature family, overridden
        compare), bound eligibility, and cost-model annotations, plus the
        cost model's engine decision and which engine the session would
        pick for it."""
        if arguments:
            raise WorkbenchError("usage: plan")
        if self.session is None:
            raise WorkbenchError("load a dataset first")
        session = self.session
        function = (
            session.state.function
            if session.state is not None
            else session.initial_function
        )
        plan = session.compile_plan(function)
        resolved = session._resolve_engine(function)
        return plan.describe() + f"\nengine: {session.engine} -> {resolved}"

    def cmd_run(self, arguments: List[str]) -> str:
        if self.session is None:
            raise WorkbenchError("load a dataset first")
        workers, remaining = parse_workers_flag(arguments)
        if remaining:
            raise WorkbenchError(f"unknown flag {remaining[0]!r}")
        result = self.session.run(workers=workers)
        output = f"ran: {result.stats.summary()}"
        if workers > 1 and result.stats.worker_timings:
            chunks = len(result.stats.worker_timings)
            pids = {timing.worker_pid for timing in result.stats.worker_timings}
            retried = sum(
                1 for timing in result.stats.worker_timings if timing.attempts > 1
            )
            fallbacks = sum(
                1 for timing in result.stats.worker_timings if timing.fallback
            )
            output += (
                f"\nparallel: {chunks} chunks over {len(pids)} workers"
                + (f", {retried} retried" if retried else "")
                + (f", {fallbacks} ran in parent" if fallbacks else "")
            )
        return output

    def _require_streaming(self, workers: int = 1):
        """The lazily created streaming wrapper around the live session."""
        from .streaming import StreamingSession

        session = self._require_session()
        if self.tables is None or self.blocker is None:
            raise WorkbenchError(
                "no live tables; 'load' or 'load-csv' a dataset first"
            )
        if self.streaming is None or self.streaming.session is not session:
            self.streaming = StreamingSession.adopt(
                session, self.tables[0], self.tables[1], self.blocker,
                workers=workers,
            )
        else:
            self.streaming.workers = workers
        return self.streaming

    def cmd_ingest(self, arguments: List[str]) -> str:
        """``ingest <insert|update|delete> <a|b> <id> [attr=value ...]``"""
        from .streaming import Delta

        workers, arguments = parse_workers_flag(arguments)
        if len(arguments) < 3:
            raise WorkbenchError(
                "usage: ingest <insert|update|delete> <a|b> <record_id> "
                "[attr=value ...] [--workers N]"
            )
        op, side, record_id, *assignments = arguments
        values = {}
        for assignment in assignments:
            attribute, separator, value = assignment.partition("=")
            if not separator or not attribute:
                raise WorkbenchError(
                    f"expected attr=value, got {assignment!r}"
                )
            values[attribute] = value if value != "" else None
        try:
            if op == "delete":
                if values:
                    raise WorkbenchError("delete takes no attr=value arguments")
                delta = Delta.delete(side, record_id)
            elif op in ("insert", "update"):
                delta = Delta(op, side, record_id, values)
            else:
                raise WorkbenchError(
                    f"unknown delta op {op!r}; use insert, update, or delete"
                )
            streaming = self._require_streaming(workers)
            result = streaming.ingest(delta)
        except ReproError as error:
            if isinstance(error, WorkbenchError):
                raise
            raise WorkbenchError(str(error)) from error
        return f"ingested: {result.summary()}"

    def cmd_delta_stats(self, arguments: List[str]) -> str:
        if self.streaming is None or not self.streaming.batch_history:
            return "no deltas ingested yet"
        lines = [
            f"{index + 1}. {result.summary()}"
            for index, result in enumerate(self.streaming.batch_history)
        ]
        total = self.streaming.total_batch_stats()
        lines.append(f"total: {total.delta_summary()}")
        return "\n".join(lines)

    def cmd_rules(self, arguments: List[str]) -> str:
        session = self._require_session()
        return "\n".join(format_rule(rule) for rule in session.function.rules)

    def cmd_metrics(self, arguments: List[str]) -> str:
        session = self._require_session()
        return session.metrics().summary()

    def cmd_explain(self, arguments: List[str]) -> str:
        if len(arguments) != 2:
            raise WorkbenchError("usage: explain <a_id> <b_id>")
        session = self._require_session()
        try:
            return session.explain(arguments[0], arguments[1]).render()
        except KeyError:
            raise WorkbenchError(
                f"({arguments[0]}, {arguments[1]}) is not a candidate pair"
            ) from None

    def _threshold_change(self, arguments: List[str], change_class) -> str:
        if len(arguments) != 3:
            raise WorkbenchError(
                f"usage: {change_class.__name__.lower()} <rule> <slot> <threshold>"
            )
        session = self._require_session()
        rule_name, slot, threshold_text = arguments
        try:
            threshold = float(threshold_text)
        except ValueError:
            raise WorkbenchError(f"{threshold_text!r} is not a number") from None
        change = change_class(rule_name, slot, threshold)
        change.validate(session.function)
        outcome = session.apply(change)
        return outcome.summary()

    def cmd_tighten(self, arguments: List[str]) -> str:
        return self._threshold_change(arguments, TightenPredicate)

    def cmd_relax(self, arguments: List[str]) -> str:
        return self._threshold_change(arguments, RelaxPredicate)

    def cmd_drop_rule(self, arguments: List[str]) -> str:
        if len(arguments) != 1:
            raise WorkbenchError("usage: drop-rule <rule>")
        session = self._require_session()
        change = RemoveRule(arguments[0])
        change.validate(session.function)
        return session.apply(change).summary()

    def cmd_drop_predicate(self, arguments: List[str]) -> str:
        if len(arguments) != 2:
            raise WorkbenchError("usage: drop-predicate <rule> <slot>")
        session = self._require_session()
        change = RemovePredicate(arguments[0], arguments[1])
        change.validate(session.function)
        return session.apply(change).summary()

    def cmd_add_rule(self, arguments: List[str]) -> str:
        if not arguments:
            raise WorkbenchError("usage: add-rule <rule DSL text>")
        session = self._require_session()
        resolver = self.workload.space.resolver() if self.workload else None
        rule = parse_rule(" ".join(arguments), resolver)
        change = AddRule(rule)
        change.validate(session.function)
        return session.apply(change).summary()

    def cmd_suggest(self, arguments: List[str]) -> str:
        session = self._require_session()
        if session.gold is None:
            raise WorkbenchError("suggestions need gold labels")
        kind = arguments[0] if arguments else "tighten"
        if kind == "tighten":
            self.suggestions = suggest_tightenings(session.state, session.gold)
        elif kind == "relax":
            self.suggestions = suggest_relaxations(session.state, session.gold)
        else:
            raise WorkbenchError("usage: suggest [tighten|relax]")
        if not self.suggestions:
            return "no suggestions (nothing to fix in this direction)"
        return "\n".join(
            f"{index + 1}. {suggestion.describe()}"
            for index, suggestion in enumerate(self.suggestions)
        )

    def cmd_apply(self, arguments: List[str]) -> str:
        if len(arguments) != 1 or not arguments[0].isdigit():
            raise WorkbenchError("usage: apply <suggestion number>")
        position = int(arguments[0]) - 1
        if not 0 <= position < len(self.suggestions):
            raise WorkbenchError(
                f"no suggestion #{arguments[0]}; run 'suggest' first"
            )
        session = self._require_session()
        suggestion = self.suggestions.pop(position)
        outcome = session.apply(suggestion.change)
        return outcome.summary()

    def cmd_refine(self, arguments: List[str]) -> str:
        """Automated refinement search (see :mod:`repro.refine`):
        ``refine [--budget N] [--beam W] [--depth D] [--seed K] [--space]``
        searches and prints the Pareto frontier; ``refine apply <n>``
        applies the n-th frontier entry of the last search."""
        session = self._require_session()
        if arguments and arguments[0] == "apply":
            if len(arguments) != 2 or not arguments[1].isdigit():
                raise WorkbenchError("usage: refine apply <frontier number>")
            if self.refinement is None:
                raise WorkbenchError("no refinement result; run 'refine' first")
            position = int(arguments[1]) - 1
            frontier = self.refinement.frontier
            if not 0 <= position < len(frontier):
                raise WorkbenchError(
                    f"no frontier entry #{arguments[1]} "
                    f"(the frontier has {len(frontier)} point(s))"
                )
            candidate = frontier[position]
            self.refinement = None
            if not candidate.edits:
                return "that frontier point is the unedited baseline"
            outcomes = session.apply_many(candidate.edits)
            lines = [outcome.summary() for outcome in outcomes]
            if session.gold is not None:
                lines.append(session.metrics().summary())
            return "\n".join(lines)

        if session.gold is None:
            raise WorkbenchError("refinement needs gold labels")
        options = {}
        use_space = False
        iterator = iter(arguments)
        flag_names = {
            "--budget": "budget",
            "--beam": "beam_width",
            "--depth": "max_depth",
            "--seed": "seed",
        }
        for flag in iterator:
            if flag == "--space":
                use_space = True
                continue
            key = flag_names.get(flag)
            if key is None:
                raise WorkbenchError(f"unknown flag {flag!r}")
            try:
                options[key] = int(next(iterator))
            except (StopIteration, ValueError):
                raise WorkbenchError(f"{flag} needs an integer") from None
        feature_space = (
            self.workload.space if (use_space and self.workload) else None
        )
        report = session.refine(feature_space=feature_space, **options)
        self.refinement = report
        lines = [
            f"baseline: {report.baseline.summary()}",
            f"scored {report.candidates_scored} candidate(s) in "
            f"{report.rounds} round(s) "
            f"({report.incremental_evals} incremental evals, "
            f"{report.full_rematches} full re-matches)",
        ]
        for index, candidate in enumerate(report.frontier):
            marker = "*" if candidate is report.best else " "
            lines.append(f"{index + 1}.{marker} {candidate.summary()}")
        lines.append("apply one with: refine apply <n>")
        return "\n".join(lines)

    def cmd_history(self, arguments: List[str]) -> str:
        session = self._require_session()
        if not session.history:
            return "no edits applied yet"
        return "\n".join(
            f"{index + 1}. {result.summary()}"
            for index, result in enumerate(session.history)
        )

    def cmd_memory(self, arguments: List[str]) -> str:
        session = self._require_session()
        report = session.memory_report()
        return (
            f"memo {report['memo'] / 1e6:.2f}MB, "
            f"rule bitmaps {report['rule_bitmaps'] / 1e6:.2f}MB, "
            f"predicate bitmaps {report['predicate_bitmaps'] / 1e6:.2f}MB, "
            f"total {report['total'] / 1e6:.2f}MB"
        )

    def cmd_cache(self, arguments: List[str]) -> str:
        """``cache stats`` — per-(attribute, tokenizer) token-cache report.

        Folds the session's live kernel counters into the metrics
        registry first, so the printed totals match what ``stats`` and the
        rendered metrics show.
        """
        if arguments not in ([], ["stats"]):
            raise WorkbenchError("usage: cache stats")
        session = self._require_session()
        kernels = session.kernels
        if kernels is None:
            return "token caching is off (session built with use_kernels=False)"
        if self.observability is not None:
            kernels.report_metrics(self.observability.metrics)
        rows = kernels.cache.stats()
        if not rows:
            return "token cache is empty; 'run' something first"
        lines = [
            "cache (attribute:tokenizer)            entries      hits    misses  hit-rate"
        ]
        for row in rows:
            lines.append(
                f"{row['label']:<38}{row['entries']:>8}{row['hits']:>10}"
                f"{row['misses']:>10}{row['hit_rate']:>9.1%}"
            )
        total_accesses = kernels.cache.total_hits + kernels.cache.total_misses
        overall = (
            kernels.cache.total_hits / total_accesses if total_accesses else 0.0
        )
        lines.append(
            f"total: {len(kernels.cache)} entries, "
            f"{kernels.cache.total_hits} hits / {total_accesses} accesses "
            f"({overall:.1%}), {kernels.total_bound_skips} bound skips"
        )
        if kernels.bound_skips:
            lines.append("bound skips by predicate:")
            for pid, count in sorted(kernels.bound_skips.items()):
                lines.append(f"  {pid:<48}{count:>8}")
        return "\n".join(lines)

    def cmd_stats(self, arguments: List[str]) -> str:
        from .core.analysis import describe_function

        session = self._require_session()
        output = describe_function(session.function)
        if self.observability is not None and len(self.observability.metrics):
            output += "\n\nmetrics:\n" + self.observability.metrics.render()
        return output

    def cmd_trace(self, arguments: List[str]) -> str:
        """``trace [--json]`` — span tree of everything recorded so far."""
        if arguments and arguments != ["--json"]:
            raise WorkbenchError("usage: trace [--json]")
        if self.observability is None or not len(self.observability.tracer.log):
            return "no spans recorded yet; 'run' or 'ingest' something first"
        if arguments:
            return self.observability.tracer.log.to_json_lines()
        return self.observability.tracer.log.render()

    def cmd_profile(self, arguments: List[str]) -> str:
        """``profile [on|off] [--sample N]`` — toggle/show cost profiling.

        With no arguments, prints the observed-cost table collected so
        far.  ``on`` attaches a fresh profiler (sampling 1-of-every-N
        feature computations, default 1/{default}); subsequent ``run`` /
        ``ingest`` calls feed it.  ``off`` detaches it.
        """
        if self.observability is None:
            raise WorkbenchError("load a dataset first")
        sample_every = DEFAULT_SAMPLE_EVERY
        mode = None
        iterator = iter(arguments)
        for token in iterator:
            if token in ("on", "off"):
                mode = token
            elif token == "--sample":
                try:
                    sample_every = int(next(iterator))
                except StopIteration:
                    raise WorkbenchError("--sample needs a value") from None
                except ValueError:
                    raise WorkbenchError("--sample needs an integer") from None
                if sample_every < 1:
                    raise WorkbenchError("--sample must be >= 1")
            else:
                raise WorkbenchError("usage: profile [on|off] [--sample N]")
        if mode == "on":
            self.observability.enable_profiling(sample_every=sample_every)
            return (
                f"profiling on (sampling 1/{sample_every}); "
                "'run' to collect, 'profile' to inspect, 'drift' to compare"
            )
        if mode == "off":
            self.observability.disable_profiling()
            return "profiling off"
        profiler = self.observability.profiler
        if profiler is None:
            return "profiling is off; 'profile on' to enable"
        return profiler.render()

    cmd_profile.__doc__ = cmd_profile.__doc__.format(default=DEFAULT_SAMPLE_EVERY)

    def cmd_drift(self, arguments: List[str]) -> str:
        """Compare observed costs/selectivities against the estimates."""
        session = self._require_session()
        profiler = (
            self.observability.profiler if self.observability is not None else None
        )
        if profiler is None:
            raise WorkbenchError(
                "drift needs a profile; 'profile on' then 'run' first"
            )
        if session.estimates is None:
            raise WorkbenchError(
                "no cost estimates to compare against; 'run' first"
            )
        report = detect_drift(
            session.function,
            session.estimates,
            profiler,
            ordering_strategy=session.ordering_strategy,
        )
        return report.render()

    def cmd_simplify(self, arguments: List[str]) -> str:
        """Report (not apply) subsumption redundancy in the current rules.

        Applying removals mid-session would need one RemoveRule change per
        redundant rule; the command prints the exact commands to run.
        """
        from .learning.simplify import redundancy_report

        session = self._require_session()
        pairs = redundancy_report(session.function)
        if not pairs:
            return "no subsumed rules"
        lines = [
            f"{specific} is subsumed by {general}  ->  drop-rule {specific}"
            for general, specific in pairs
        ]
        return "\n".join(lines)

    def cmd_lint(self, arguments: List[str]) -> str:
        from .core.validation import lint_function

        session = self._require_session()
        findings = lint_function(session.function, session.estimates)
        if not findings:
            return "no findings — the rule set is clean"
        return "\n".join(finding.render() for finding in findings)

    def cmd_report(self, arguments: List[str]) -> str:
        from .evaluation.debug_report import build_report, render_report

        session = self._require_session()
        if session.gold is None:
            raise WorkbenchError("the report needs gold labels")
        return render_report(build_report(session.state, session.gold))

    def cmd_save(self, arguments: List[str]) -> str:
        if len(arguments) != 1:
            raise WorkbenchError("usage: save <directory>")
        session = self._require_session()
        path = save_state(session.state, arguments[0])
        return f"state saved to {path}"

    def cmd_restore(self, arguments: List[str]) -> str:
        if len(arguments) != 1:
            raise WorkbenchError("usage: restore <directory>")
        if self.session is None:
            raise WorkbenchError("load the same dataset first, then restore")
        resolver = self.workload.space.resolver() if self.workload else None
        state = load_state(arguments[0], self.session.candidates, resolver)
        self.session.state = state
        return (
            f"state restored: {state.match_count()} matches, "
            f"{len(state.memo)} memoized values"
        )


    # ------------------------------------------------------------------
    # Service layer: embedded server + remote client
    # ------------------------------------------------------------------

    def cmd_serve(self, arguments: List[str]) -> str:
        """``serve start [port] [checkpoint_dir]`` / ``status`` / ``stop``."""
        action = arguments[0] if arguments else "status"
        if action == "start":
            if self.service_thread is not None and self.service_thread.running:
                host, port = self.service_thread.address
                raise WorkbenchError(f"already serving on {host}:{port}")
            from .service import ServiceThread

            port = 0
            if len(arguments) > 1:
                try:
                    port = int(arguments[1])
                except ValueError:
                    raise WorkbenchError("serve start needs a numeric port") from None
            checkpoint_root = arguments[2] if len(arguments) > 2 else None
            self.service_thread = ServiceThread(
                port=port, checkpoint_root=checkpoint_root
            )
            host, bound = self.service_thread.start()
            restored = getattr(
                self.service_thread.service, "restored_sessions", []
            )
            suffix = (
                f", restored {len(restored)} session(s)" if restored else ""
            )
            durable = (
                f", checkpoints in {checkpoint_root}"
                if checkpoint_root
                else " (not durable)"
            )
            return f"serving on {host}:{bound}{durable}{suffix}"
        if action == "status":
            if self.service_thread is None or not self.service_thread.running:
                return "not serving"
            host, port = self.service_thread.address
            sessions = len(self.service_thread.service.registry)
            return f"serving on {host}:{port}, {sessions} session(s)"
        if action == "stop":
            if self.service_thread is None or not self.service_thread.running:
                raise WorkbenchError("not serving")
            report = self.service_thread.stop()
            self.service_thread = None
            return (
                f"stopped: drained={report['drained']} "
                f"checkpointed={report['checkpointed']} "
                f"flushed={report['flushed']}"
            )
        raise WorkbenchError("usage: serve start [port] [ckpt-dir] | status | stop")

    def _require_remote(self):
        if self.remote_client is None:
            raise WorkbenchError(
                "no server connection; use 'remote connect <host:port>'"
            )
        return self.remote_client

    def cmd_remote(self, arguments: List[str]) -> str:
        """Drive a running matching service over HTTP (see ``help``)."""
        from .service import ServiceClient, ServiceClientError

        if not arguments:
            raise WorkbenchError("usage: remote <connect|create|sessions|...>")
        action, *rest = arguments
        try:
            if action == "connect":
                if len(rest) != 1 or ":" not in rest[0]:
                    raise WorkbenchError("usage: remote connect <host:port>")
                host, _, port_text = rest[0].rpartition(":")
                try:
                    port = int(port_text)
                except ValueError:
                    raise WorkbenchError(f"bad port {port_text!r}") from None
                client = ServiceClient(host, port)
                health = client.health()
                self.remote_client = client
                return (
                    f"connected to {host}:{port} "
                    f"({health['sessions']} session(s), "
                    f"{'durable' if health['durable'] else 'not durable'})"
                )
            return self._remote_action(action, rest)
        except ServiceClientError as error:
            raise WorkbenchError(
                f"server error [{error.code}]: {error}"
            ) from error
        except (ConnectionError, OSError) as error:
            raise WorkbenchError(f"connection failed: {error}") from error

    def _remote_action(self, action: str, rest: List[str]) -> str:
        client = self._require_remote()
        if action == "create":
            workers, rest = parse_workers_flag(rest)
            if len(rest) < 2:
                raise WorkbenchError(
                    "usage: remote create <name> <dataset> [--scale S] "
                    "[--seed K] [--workers N]"
                )
            name, dataset, *flags = rest
            spec = {"name": dataset}
            iterator = iter(flags)
            for flag in iterator:
                try:
                    if flag == "--scale":
                        spec["scale"] = float(next(iterator))
                    elif flag == "--seed":
                        spec["seed"] = int(next(iterator))
                    else:
                        raise WorkbenchError(f"unknown flag {flag!r}")
                except (StopIteration, ValueError):
                    raise WorkbenchError(f"{flag} needs a value") from None
            created = client.create_session(
                {"name": name, "dataset": spec, "workers": workers}
            )
            run = created["initial_run"]
            return (
                f"created {name!r}: "
                f"{created['session']['candidates']} candidates, "
                f"{run['match_count']} matches"
            )
        if action == "sessions":
            sessions = client.list_sessions()
            if not sessions:
                return "no sessions"
            return "\n".join(
                f"{info['name']}: {info['candidates']} candidates, "
                f"{info['batches_ingested']} batch(es), seq={info['seq']}"
                f"{' [dirty]' if info['dirty'] else ''}"
                for info in sessions
            )
        if action == "info":
            if len(rest) != 1:
                raise WorkbenchError("usage: remote info <name>")
            info = client.session_info(rest[0])
            return (
                f"{info['name']}: {info['candidates']} candidates, "
                f"{info['batches_ingested']} batch(es), "
                f"{info['edits_applied']} edit(s), "
                f"rules: {', '.join(info['rules'])}"
            )
        if action == "close":
            if len(rest) != 1:
                raise WorkbenchError("usage: remote close <name>")
            closed = client.close_session(rest[0])
            return f"closed {closed['closed']!r} (checkpoint: {closed['checkpoint']})"
        if action == "ingest":
            if len(rest) < 4:
                raise WorkbenchError(
                    "usage: remote ingest <name> <op> <a|b> <id> [attr=value ...]"
                )
            name, op, side, record_id, *assignments = rest
            values = {}
            for assignment in assignments:
                attribute, separator, value = assignment.partition("=")
                if not separator or not attribute:
                    raise WorkbenchError(f"expected attr=value, got {assignment!r}")
                values[attribute] = value if value != "" else None
            delta = {"op": op, "side": side, "id": record_id}
            if op != "delete":
                delta["values"] = values
            result = client.ingest(name, [delta])["batch"]
            return (
                f"ingested: affected={result['affected']} "
                f"+{len(result['gained'])}/-{len(result['lost'])} pairs, "
                f"matches={result['match_count']}"
            )
        if action in ("tighten", "relax"):
            if len(rest) != 4:
                raise WorkbenchError(
                    f"usage: remote {action} <name> <rule> <slot> <threshold>"
                )
            name, rule, slot, threshold = rest
            try:
                threshold_value = float(threshold)
            except ValueError:
                raise WorkbenchError(f"bad threshold {threshold!r}") from None
            result = client.edit_rule(
                name,
                {"kind": action, "rule": rule, "slot": slot,
                 "threshold": threshold_value},
            )
            return (
                f"{result['change']}: affected={result['affected_pairs']} "
                f"+{result['newly_matched']}/-{result['newly_unmatched']} matches"
            )
        if action == "refine":
            if not rest:
                raise WorkbenchError(
                    "usage: remote refine <name> [--budget N] [--beam W] "
                    "[--depth D] [--seed K] [--apply best|<index>]"
                )
            name, *flags = rest
            options = {}
            flag_names = {
                "--budget": "budget",
                "--beam": "beam_width",
                "--depth": "max_depth",
                "--seed": "seed",
            }
            iterator = iter(flags)
            for flag in iterator:
                try:
                    if flag == "--apply":
                        value = next(iterator)
                        options["apply"] = (
                            "best" if value == "best" else int(value)
                        )
                    elif flag in flag_names:
                        options[flag_names[flag]] = int(next(iterator))
                    else:
                        raise WorkbenchError(f"unknown flag {flag!r}")
                except (StopIteration, ValueError):
                    raise WorkbenchError(f"{flag} needs a value") from None
            result = client.refine(name, **options)
            report = result["report"]
            lines = [
                f"baseline: P={report['baseline']['precision']:.3f} "
                f"R={report['baseline']['recall']:.3f} "
                f"F1={report['baseline']['f1']:.3f}",
                f"scored {report['candidates_scored']} candidate(s), "
                f"frontier of {len(report['frontier'])}:",
            ]
            for index, point in enumerate(report["frontier"]):
                marker = "*" if index == report["best_index"] else " "
                lines.append(
                    f"{index + 1}.{marker} P={point['precision']:.3f} "
                    f"R={point['recall']:.3f} F1={point['f1']:.3f} "
                    f"cost={point['expected_cost'] * 1e6:.2f}us/pair "
                    f"[{'; '.join(point['edits']) or 'no edits'}]"
                )
            if result.get("applied"):
                lines.append(
                    f"applied: {'; '.join(result['applied']['edits'])}"
                )
            return "\n".join(lines)
        if action == "metrics":
            if len(rest) != 1:
                raise WorkbenchError("usage: remote metrics <name>")
            snapshot = client.metrics(rest[0])["snapshot"]
            lines = [f"{len(snapshot)} metric(s):"]
            for metric_name in sorted(snapshot):
                data = snapshot[metric_name]
                value = data.get("value", data.get("count", data))
                lines.append(f"  {metric_name} = {value}")
            return "\n".join(lines)
        if action == "trace":
            if len(rest) != 1:
                raise WorkbenchError("usage: remote trace <name>")
            trace = client.trace(rest[0])
            lines = [f"{trace['span_count']} span(s):"]
            for span in trace["spans"][-20:]:
                lines.append(
                    f"  {span['name']}: {span['duration'] * 1000:.2f}ms"
                )
            return "\n".join(lines)
        raise WorkbenchError(f"unknown remote action {action!r}; try 'help'")

    def cmd_top(self, arguments: List[str]) -> str:
        """Live service dashboard: polls ``GET /metrics`` (+ health SLO).

        ``top`` renders one frame; ``top --watch N [--interval S]`` polls
        N times, S seconds apart, returning every frame — the REPL's
        stand-in for a terminal dashboard (and directly testable, since
        each frame is plain text built from one scrape).
        """
        from .observability.export import histogram_quantile, parse_prometheus

        client = self._require_remote()
        frames_wanted, interval = 1, 2.0
        iterator = iter(arguments)
        for flag in iterator:
            try:
                if flag == "--watch":
                    frames_wanted = int(next(iterator))
                elif flag == "--interval":
                    interval = float(next(iterator))
                else:
                    raise WorkbenchError(f"unknown flag {flag!r}")
            except (StopIteration, ValueError):
                raise WorkbenchError(f"{flag} needs a value") from None
        if frames_wanted < 1:
            raise WorkbenchError("--watch needs a positive count")

        frames = []
        for frame_index in range(frames_wanted):
            if frame_index:
                time.sleep(interval)
            frames.append(
                self._render_top_frame(client, parse_prometheus, histogram_quantile)
            )
        return "\n\n".join(frames)

    @staticmethod
    def _render_top_frame(client, parse_prometheus, histogram_quantile) -> str:
        health = client.health()
        parsed = parse_prometheus(client.scrape_metrics())
        samples = parsed["samples"]

        def sample(name, **labels):
            return samples.get((name, tuple(sorted(labels.items()))))

        lines = [
            f"service: {health['status']}  sessions={health['sessions']}  "
            f"durable={'yes' if health['durable'] else 'no'}  "
            f"restore_failures={len(health['restore_failures'])}"
        ]
        window = sample("repro_http_window_seconds")
        endpoints = sorted(
            {
                dict(labels).get("endpoint")
                for (name, labels) in samples
                if name == "repro_http_requests" and labels
            }
            - {None}
        )
        if window is not None:
            lines.append(
                f"requests (last {window:g}s):  "
                f"{sample('repro_http_requests') or 0:g} total, "
                f"{(sample('repro_http_request_rate') or 0.0):.2f}/s, "
                f"{(sample('repro_http_error_rate') or 0.0):.1%} errors"
            )
            for endpoint in endpoints:
                p50 = histogram_quantile(
                    samples, "repro_http_request_seconds", 0.5,
                    labels={"endpoint": endpoint},
                )
                p95 = histogram_quantile(
                    samples, "repro_http_request_seconds", 0.95,
                    labels={"endpoint": endpoint},
                )
                lines.append(
                    f"  {endpoint}: "
                    f"n={sample('repro_http_requests', endpoint=endpoint) or 0:g} "
                    f"err={(sample('repro_http_error_rate', endpoint=endpoint) or 0.0):.1%} "
                    f"p50={(p50 or 0.0) * 1000:.1f}ms "
                    f"p95={(p95 or 0.0) * 1000:.1f}ms"
                )
        for state in health.get("sessions_state", []):
            lines.append(
                f"  session {state['name']}: seq={state['seq']} "
                f"pending={state['pending']}"
                f"{' [dirty]' if state['dirty'] else ''}"
            )
        slo = health.get("slo")
        if slo:
            for objective in slo["objectives"]:
                if objective["ok"] is None:
                    verdict = "no data"
                elif objective["ok"]:
                    verdict = "OK"
                else:
                    verdict = "BREACH"
                observed = objective["observed"]
                observed_text = (
                    f" observed={observed:.4g}" if observed is not None else ""
                )
                lines.append(
                    f"  slo {objective['name']}: {verdict} "
                    f"({objective['objective']}{observed_text})"
                )
            if slo["alerts"]:
                latest = slo["alerts"][-1]
                lines.append(
                    f"  alerts: {slo['alerts_total']} total, "
                    f"latest: {latest['message']}"
                )
        return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """REPL entry point for ``python -m repro.workbench``."""
    bench = Workbench()
    print("repro workbench — 'help' for commands, 'quit' to exit")
    while True:
        try:
            line = input("repro> ")
        except EOFError:
            print()
            return 0
        if line.strip() in ("quit", "exit"):
            return 0
        try:
            output = bench.execute(line)
        except ReproError as error:
            output = f"error: {error}"
        except Exception as error:  # surface, don't crash the loop
            output = f"internal error: {error!r}"
        if output:
            print(output)


if __name__ == "__main__":
    sys.exit(main())
