"""TF-IDF cosine and Soft TF-IDF similarity.

These are the most expensive measures in the paper's Table 3 (12-66 µs) and
the ones its sample rules lean on for title comparisons.  Both require a
:class:`~repro.similarity.corpus.Corpus`; a measure used before
:meth:`bind_corpus` falls back to a degenerate uniform-IDF corpus so that
exploratory use (and unit tests) need no setup, while dataset pipelines bind
real statistics via :meth:`repro.learning.feature_space.FeatureSpace.bind_corpora`.
"""

from __future__ import annotations

from abc import abstractmethod
from typing import Dict, Tuple

from .base import SimilarityFunction
from .corpus import Corpus
from .jaro import JaroWinkler
from .tokenizers import Tokenizer, WhitespaceTokenizer


class CorpusVectorSimilarity(SimilarityFunction):
    """Measures defined on the weighted TF-IDF vectors of both inputs.

    Splitting :meth:`compare` into :meth:`weight_vector` (tokenize + weight
    one value against the bound corpus — cacheable per record) and
    :meth:`score_vectors` (combine two precomputed vectors) lets the kernel
    layer cache each record's vector once and reach *identical* scoring
    code for every candidate pair.  Subclasses implement
    :meth:`from_vectors` and must not override :meth:`compare` or
    :meth:`score_vectors` — that would fork the empty-value conventions
    and the cache contract.

    Cached vectors are only valid against the corpus they were weighted
    by, so cache consumers must key on (or invalidate with) the bound
    :attr:`corpus` identity — :meth:`bind_corpus` swaps it wholesale.
    """

    needs_corpus = True

    def __init__(self, tokenizer: Tokenizer | None = None, corpus: Corpus | None = None):
        self.tokenizer = tokenizer or WhitespaceTokenizer()
        self.corpus = corpus or Corpus(self.tokenizer)

    def bind_corpus(self, corpus: Corpus) -> None:
        self.corpus = corpus

    def weight_vector(self, value: str) -> Tuple[bool, Dict[str, float]]:
        """``(tokenized_to_nothing, L2-normalized TF-IDF vector)`` for one
        non-``None`` value under the currently bound corpus."""
        tokens = self.tokenizer.tokenize(value)
        return (not tokens, self.corpus.tfidf_vector(tokens))

    def score_vectors(
        self,
        empty_x: bool,
        vector_x: Dict[str, float],
        empty_y: bool,
        vector_y: Dict[str, float],
    ) -> float:
        """Score two pre-weighted vectors under the package conventions:
        both values empty -> 1.0, either vector degenerate -> 0.0."""
        if empty_x and empty_y:
            return 1.0
        if not vector_x or not vector_y:
            return 0.0
        return self.from_vectors(vector_x, vector_y)

    def compare(self, x: str, y: str) -> float:
        empty_x, vector_x = self.weight_vector(x)
        empty_y, vector_y = self.weight_vector(y)
        return self.score_vectors(empty_x, vector_x, empty_y, vector_y)

    @abstractmethod
    def from_vectors(
        self, vector_x: Dict[str, float], vector_y: Dict[str, float]
    ) -> float:
        """Combine two non-degenerate weighted vectors."""


class TfIdf(CorpusVectorSimilarity):
    """Cosine similarity between L2-normalized TF-IDF vectors."""

    cost_tier = 8

    def __init__(self, tokenizer: Tokenizer | None = None, corpus: Corpus | None = None):
        super().__init__(tokenizer, corpus)
        self.name = f"tfidf_{self.tokenizer.name}"

    def from_vectors(
        self, vector_x: Dict[str, float], vector_y: Dict[str, float]
    ) -> float:
        if len(vector_y) < len(vector_x):
            vector_x, vector_y = vector_y, vector_x
        dot = sum(
            weight * vector_y[token]
            for token, weight in vector_x.items()
            if token in vector_y
        )
        # Guard against floating-point drift just above 1.0 on identical
        # vectors (Σ w² can round to 1 + ε).
        return min(1.0, dot)


class SoftTfIdf(CorpusVectorSimilarity):
    """Soft TF-IDF (Cohen, Ravikumar & Fienberg 2003).

    Like TF-IDF cosine, but a token of one value may match a *similar*
    (not necessarily equal) token of the other: tokens whose secondary
    similarity (Jaro-Winkler by default) reaches ``threshold`` contribute
    ``w_x(t) * w_y(closest) * sim(t, closest)``.

    The textbook formulation is directional; we average both directions to
    honour the package-wide symmetry contract (the difference is small and
    vanishes when the close-token relation is one-to-one).

    This is the most expensive feature in the paper's Table 3 (66 µs on
    title/title) because every token pair pays a Jaro-Winkler comparison —
    reproducing that cost profile matters for the ordering experiments.
    """

    cost_tier = 9

    def __init__(
        self,
        tokenizer: Tokenizer | None = None,
        corpus: Corpus | None = None,
        secondary: SimilarityFunction | None = None,
        threshold: float = 0.9,
    ):
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        super().__init__(tokenizer, corpus)
        self.secondary = secondary or JaroWinkler()
        self.threshold = threshold
        self.name = f"soft_tfidf_{self.tokenizer.name}"

    def _directed(self, vector_x: dict, vector_y: dict) -> float:
        total = 0.0
        for token_x, weight_x in vector_x.items():
            best_score = 0.0
            best_weight = 0.0
            exact = vector_y.get(token_x)
            if exact is not None:
                best_score, best_weight = 1.0, exact
            else:
                for token_y, weight_y in vector_y.items():
                    score = self.secondary.compare(token_x, token_y)
                    if score >= self.threshold and score > best_score:
                        best_score, best_weight = score, weight_y
            if best_score > 0.0:
                total += weight_x * best_weight * best_score
        return total

    def from_vectors(
        self, vector_x: Dict[str, float], vector_y: Dict[str, float]
    ) -> float:
        forward = self._directed(vector_x, vector_y)
        backward = self._directed(vector_y, vector_x)
        # Directed scores are already normalized by the L2 vectors; clip to
        # guard against floating-point drift just above 1.0.
        return min(1.0, (forward + backward) / 2.0)
