"""Additional measures rounding out the feature-space superset.

These are not in the paper's Table 3 but are standard members of the
Magellan/py_stringmatching catalog the paper's "total features" column
draws from — the features a full-precomputation baseline pays for even
when no rule uses them.

* :class:`Hamming` — positional character agreement (same-length codes).
* :class:`Tversky` — asymmetric-set-overlap family generalizing Jaccard
  and Dice (symmetrized here with α = β to keep the package contract).
* :class:`BagJaccard` / :class:`BagCosine` — multiset (bag) variants that
  count token multiplicities, distinguishing ``"2 x 2"`` from ``"2"``.
"""

from __future__ import annotations

import math
from collections import Counter

from .base import SimilarityFunction
from .token_based import TokenSetSimilarity
from .tokenizers import Tokenizer, WhitespaceTokenizer


class Hamming(SimilarityFunction):
    """``1 - hamming_distance / max_len``; shorter string padded virtually.

    Cheap and surprisingly effective on fixed-format identifiers (zip
    codes, ISBN tails) where edits are substitutions, not indels.
    """

    name = "hamming"
    cost_tier = 1

    def compare(self, x: str, y: str) -> float:
        x, y = x.lower(), y.lower()
        longest = max(len(x), len(y))
        if longest == 0:
            return 1.0
        agreements = sum(1 for cx, cy in zip(x, y) if cx == cy)
        return agreements / longest


class Tversky(TokenSetSimilarity):
    """Symmetric Tversky index over token sets.

    ``|X∩Y| / (|X∩Y| + α·|X\\Y| + α·|Y\\X|)`` — α = 0.5 reproduces Dice,
    α = 1 reproduces Jaccard; intermediate values soften the penalty for
    unmatched tokens (useful when one source pads titles with noise).

    A :class:`~repro.similarity.token_based.TokenSetSimilarity` subclass,
    so the empty-set convention and the tokenization site live in the base
    class rather than being duplicated here, and the token-cache/kernel
    layer applies automatically.
    """

    cost_tier = 6

    def __init__(self, alpha: float = 0.75, tokenizer: Tokenizer | None = None):
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        self.alpha = alpha
        super().__init__(tokenizer, base_name=f"tversky{alpha:g}")

    def from_sets(self, set_x: frozenset, set_y: frozenset) -> float:
        common = len(set_x & set_y)
        only_x = len(set_x - set_y)
        only_y = len(set_y - set_x)
        denominator = common + self.alpha * (only_x + only_y)
        return common / denominator if denominator else 0.0

    def from_counts(self, intersection, size_x, size_y):
        # Non-empty sets make the denominator strictly positive, so the
        # scalar path's division-by-zero guard has no vectorized analogue.
        denominator = intersection + self.alpha * (
            (size_x - intersection) + (size_y - intersection)
        )
        return intersection / denominator

    def upper_bound(self, size_x: int, size_y: int) -> float:
        common = min(size_x, size_y)
        denominator = common + self.alpha * (
            (size_x - common) + (size_y - common)
        )
        return common / denominator if denominator else 0.0


class BagJaccard(SimilarityFunction):
    """Jaccard over token *multisets*: min-counts over max-counts."""

    cost_tier = 6

    def __init__(self, tokenizer: Tokenizer | None = None):
        self.tokenizer = tokenizer or WhitespaceTokenizer()
        self.name = f"bag_jaccard_{self.tokenizer.name}"

    def compare(self, x: str, y: str) -> float:
        bag_x = Counter(self.tokenizer.tokenize(x))
        bag_y = Counter(self.tokenizer.tokenize(y))
        if not bag_x and not bag_y:
            return 1.0
        if not bag_x or not bag_y:
            return 0.0
        tokens = set(bag_x) | set(bag_y)
        intersection = sum(min(bag_x[t], bag_y[t]) for t in tokens)
        union = sum(max(bag_x[t], bag_y[t]) for t in tokens)
        return intersection / union if union else 0.0


class BagCosine(SimilarityFunction):
    """Cosine between raw token-count vectors (no IDF weighting)."""

    cost_tier = 6

    def __init__(self, tokenizer: Tokenizer | None = None):
        self.tokenizer = tokenizer or WhitespaceTokenizer()
        self.name = f"bag_cosine_{self.tokenizer.name}"

    def compare(self, x: str, y: str) -> float:
        bag_x = Counter(self.tokenizer.tokenize(x))
        bag_y = Counter(self.tokenizer.tokenize(y))
        if not bag_x and not bag_y:
            return 1.0
        if not bag_x or not bag_y:
            return 0.0
        if len(bag_y) < len(bag_x):
            bag_x, bag_y = bag_y, bag_x
        dot = sum(count * bag_y.get(token, 0) for token, count in bag_x.items())
        norm_x = math.sqrt(sum(count * count for count in bag_x.values()))
        norm_y = math.sqrt(sum(count * count for count in bag_y.values()))
        return min(1.0, dot / (norm_x * norm_y))
