"""Additional phonetic encodings: NYSIIS.

Soundex (``repro.similarity.soundex``) is the paper's Table 3 entry; NYSIIS
(New York State Identification and Intelligence System, 1970) is its more
accurate successor and a standard member of the feature superset for
person/venue names.  Like :class:`~repro.similarity.soundex.Soundex`, the
similarity is Jaccard overlap of per-token codes.
"""

from __future__ import annotations

from .base import SimilarityFunction
from .tokenizers import WhitespaceTokenizer

_VOWELS = set("aeiou")


def nysiis_code(word: str, max_length: int = 8) -> str:
    """NYSIIS phonetic code of a single word (classic 1970 rule set).

    Empty/non-alphabetic words encode to the empty string.  ``max_length``
    truncates the result (the original system used 6; 8 keeps more signal
    for long product-era names).
    """
    letters = [ch for ch in word.lower() if ch.isalpha()]
    if not letters:
        return ""
    word = "".join(letters)

    # 1. Prefix transformations.
    for prefix, replacement in (
        ("mac", "mcc"), ("kn", "nn"), ("k", "c"), ("ph", "ff"),
        ("pf", "ff"), ("sch", "sss"),
    ):
        if word.startswith(prefix):
            word = replacement + word[len(prefix):]
            break

    # 2. Suffix transformations.
    for suffix, replacement in (
        ("ee", "y"), ("ie", "y"), ("dt", "d"), ("rt", "d"), ("rd", "d"),
        ("nt", "d"), ("nd", "d"),
    ):
        if word.endswith(suffix):
            word = word[: -len(suffix)] + replacement
            break

    first = word[0]
    code = [first]
    previous = first
    position = 1
    while position < len(word):
        ch = word[position]
        replacement = ch
        if word[position : position + 2] == "ev":
            replacement = "af"
            position += 1
        elif ch in _VOWELS:
            replacement = "a"
        elif ch == "q":
            replacement = "g"
        elif ch == "z":
            replacement = "s"
        elif ch == "m":
            replacement = "n"
        elif ch == "k":
            replacement = "n" if position + 1 < len(word) and word[position + 1] == "n" else "c"
        elif word[position : position + 3] == "sch":
            replacement = "sss"
            position += 2
        elif word[position : position + 2] == "ph":
            replacement = "ff"
            position += 1
        elif (
            ch == "h"
            and (
                word[position - 1] not in _VOWELS
                or (position + 1 < len(word) and word[position + 1] not in _VOWELS)
            )
        ):
            replacement = previous
        elif ch == "w" and word[position - 1] in _VOWELS:
            replacement = previous
        for out in replacement:
            if out != code[-1]:
                code.append(out)
        previous = replacement[-1] if replacement else previous
        position += 1

    # 3. Terminal cleanup.
    result = "".join(code)
    if result.endswith("s") and len(result) > 1:
        result = result[:-1]
    if result.endswith("ay"):
        result = result[:-2] + "y"
    if result.endswith("a") and len(result) > 1:
        result = result[:-1]
    return result[:max_length]


class Nysiis(SimilarityFunction):
    """Jaccard overlap of per-token NYSIIS codes."""

    name = "nysiis"
    cost_tier = 5

    def __init__(self):
        self._tokenizer = WhitespaceTokenizer()

    def compare(self, x: str, y: str) -> float:
        codes_x = {nysiis_code(t) for t in self._tokenizer.tokenize(x)} - {""}
        codes_y = {nysiis_code(t) for t in self._tokenizer.tokenize(y)} - {""}
        if not codes_x and not codes_y:
            return 1.0
        if not codes_x or not codes_y:
            return 0.0
        return len(codes_x & codes_y) / len(codes_x | codes_y)
